//! Evaluates the Theorem 1–4 regret bounds over sweeps of n, K and graph density.
//!
//! Usage: `cargo run --release -p netband-experiments --bin bounds`

use netband_experiments::bounds_exp::{report, run, BoundsConfig};

fn main() {
    let config = BoundsConfig::default();
    let rows = run(&config);
    println!("{}", report(&rows));
}
