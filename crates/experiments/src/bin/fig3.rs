//! Reproduces Fig. 3: MOSS vs DFL-SSO (expected and accumulated regret).
//!
//! Usage: `cargo run --release -p netband-experiments --bin fig3 [-- --quick]`

use netband_experiments::fig3::{run, Fig3Config};
use netband_experiments::Scale;
use netband_sim::export::write_csv;
use std::path::Path;

fn main() {
    let config = Fig3Config {
        scale: Scale::from_env(),
        ..Fig3Config::default()
    };
    eprintln!("running Fig. 3 with {config:?}");
    let result = run(&config);
    println!("{}", result.report());
    println!(
        "DFL-SSO beats MOSS on accumulated regret: {}",
        result.dfl_beats_moss()
    );
    let path = Path::new("target/experiments/fig3.csv");
    let t: Vec<f64> = (1..=result.dfl_sso.horizon).map(|x| x as f64).collect();
    if let Err(err) = write_csv(
        path,
        &[
            ("t", &t),
            ("dfl_sso_expected", &result.dfl_sso.expected_regret),
            ("moss_expected", &result.moss.expected_regret),
            ("dfl_sso_accumulated", &result.dfl_sso.accumulated_regret),
            ("moss_accumulated", &result.moss.accumulated_regret),
        ],
    ) {
        eprintln!("failed to write {}: {err}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
