//! Reproduces Fig. 4: DFL-CSO under sparse (p=0.3) and dense (p=0.6) graphs.
//!
//! Usage: `cargo run --release -p netband-experiments --bin fig4 [-- --quick]`

use netband_experiments::fig4::{run, Fig4Config};
use netband_experiments::Scale;
use netband_sim::export::write_csv;
use std::path::Path;

fn main() {
    let config = Fig4Config {
        scale: Scale::from_env(),
        ..Fig4Config::default()
    };
    eprintln!("running Fig. 4 with {config:?}");
    let result = run(&config);
    println!("{}", result.report());
    println!("dense beats sparse: {}", result.dense_beats_sparse());
    let path = Path::new("target/experiments/fig4.csv");
    let t: Vec<f64> = (1..=result.sparse.horizon).map(|x| x as f64).collect();
    if let Err(err) = write_csv(
        path,
        &[
            ("t", &t),
            ("sparse_expected", &result.sparse.expected_regret),
            ("dense_expected", &result.dense.expected_regret),
        ],
    ) {
        eprintln!("failed to write {}: {err}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
