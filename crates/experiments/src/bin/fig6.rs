//! Reproduces Fig. 6: expected regret of DFL-CSR.
//!
//! Usage: `cargo run --release -p netband-experiments --bin fig6 [-- --quick]`

use netband_experiments::fig6::{run, Fig6Config};
use netband_experiments::Scale;
use netband_sim::export::write_csv;
use std::path::Path;

fn main() {
    let config = Fig6Config {
        scale: Scale::from_env(),
        ..Fig6Config::default()
    };
    eprintln!("running Fig. 6 with {config:?}");
    let result = run(&config);
    println!("{}", result.report());
    println!(
        "expected regret trends to zero: {}",
        result.regret_trends_to_zero()
    );
    let path = Path::new("target/experiments/fig6.csv");
    let t: Vec<f64> = (1..=result.dfl_csr.horizon).map(|x| x as f64).collect();
    if let Err(err) = write_csv(
        path,
        &[
            ("t", &t),
            ("dfl_csr_expected", &result.dfl_csr.expected_regret),
            ("dfl_csr_accumulated", &result.dfl_csr.accumulated_regret),
        ],
    ) {
        eprintln!("failed to write {}: {err}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
