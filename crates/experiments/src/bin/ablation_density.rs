//! Ablation A: regret of DFL-SSO (vs MOSS) as a function of relation-graph density.
//!
//! Usage: `cargo run --release -p netband-experiments --bin ablation_density [-- --quick]`

use netband_experiments::ablation_density::{report, run, DensityConfig};
use netband_experiments::Scale;

fn main() {
    let mut config = DensityConfig::default();
    let scale = Scale::from_env();
    if scale.horizon < config.scale.horizon {
        config.scale = scale;
    }
    eprintln!("running density ablation with {config:?}");
    let rows = run(&config);
    println!("{}", report(&rows));
}
