//! Drift experiment: stationary vs forgetting policies across a change point.
//!
//! Usage: `cargo run --release -p netband-experiments --bin drift [-- --quick]`

use netband_experiments::drift_exp::{report, run, DriftConfig};
use netband_experiments::Scale;

fn main() {
    let mut config = DriftConfig::default();
    let scale = Scale::from_env();
    if scale.horizon < config.scale.horizon {
        config.scale = Scale {
            horizon: 2_000,
            replications: 2,
        };
    }
    eprintln!("running drift experiment with {config:?}");
    let rows = run(&config);
    println!("{}", report(&rows));
}
