//! Reproduces Fig. 5: expected regret of DFL-SSR.
//!
//! Usage: `cargo run --release -p netband-experiments --bin fig5 [-- --quick]`

use netband_experiments::fig5::{run, Fig5Config};
use netband_experiments::Scale;
use netband_sim::export::write_csv;
use std::path::Path;

fn main() {
    let config = Fig5Config {
        scale: Scale::from_env(),
        ..Fig5Config::default()
    };
    eprintln!("running Fig. 5 with {config:?}");
    let result = run(&config);
    println!("{}", result.report());
    println!(
        "expected regret trends to zero: {}",
        result.regret_trends_to_zero()
    );
    let path = Path::new("target/experiments/fig5.csv");
    let t: Vec<f64> = (1..=result.dfl_ssr.horizon).map(|x| x as f64).collect();
    if let Err(err) = write_csv(
        path,
        &[
            ("t", &t),
            ("dfl_ssr_expected", &result.dfl_ssr.expected_regret),
            ("dfl_ssr_accumulated", &result.dfl_ssr.accumulated_regret),
        ],
    ) {
        eprintln!("failed to write {}: {err}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
