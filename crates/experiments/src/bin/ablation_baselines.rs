//! Ablation B: DFL-SSO against the wider single-play baseline zoo.
//!
//! Usage: `cargo run --release -p netband-experiments --bin ablation_baselines [-- --quick]`

use netband_experiments::ablation_baselines::{report, run, BaselinesConfig};
use netband_experiments::Scale;

fn main() {
    let mut config = BaselinesConfig::default();
    let scale = Scale::from_env();
    if scale.horizon < config.scale.horizon {
        config.scale = scale;
        config.arm_counts = vec![20, 50];
    }
    eprintln!("running baseline ablation with {config:?}");
    let rows = run(&config);
    println!("{}", report(&rows));
}
