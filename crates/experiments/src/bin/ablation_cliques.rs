//! Ablation C: clique-cover structure vs measured DFL-SSO regret and the Theorem 1 bound.
//!
//! Usage: `cargo run --release -p netband-experiments --bin ablation_cliques [-- --quick]`

use netband_experiments::ablation_cliques::{report, run, CliquesConfig};
use netband_experiments::Scale;

fn main() {
    let mut config = CliquesConfig::default();
    let scale = Scale::from_env();
    if scale.horizon < config.scale.horizon {
        config.scale = scale;
    }
    eprintln!("running clique ablation with {config:?}");
    let rows = run(&config);
    println!("{}", report(&rows));
}
