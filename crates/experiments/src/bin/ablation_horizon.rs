//! Ablation E: cumulative regret vs horizon — the zero-regret (sublinear growth) check.
//!
//! Usage: `cargo run --release -p netband-experiments --bin ablation_horizon [-- --quick]`

use netband_experiments::ablation_horizon::{report, run, HorizonConfig};
use netband_experiments::Scale;

fn main() {
    let mut config = HorizonConfig::default();
    let scale = Scale::from_env();
    if scale.horizon < 10_000 && std::env::args().any(|a| a == "--quick" || a == "-q") {
        config.horizons = vec![200, 400, 800, 1_600];
        config.replications = scale.replications;
    }
    eprintln!("running horizon ablation with {config:?}");
    let result = run(&config);
    println!("{}", report(&result));
}
