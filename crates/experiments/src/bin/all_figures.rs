//! Runs every figure and ablation in sequence and prints the combined report —
//! the one-command reproduction of the paper's evaluation section.
//!
//! Usage: `cargo run --release -p netband-experiments --bin all_figures [-- --quick]`

use netband_experiments::{
    ablation_baselines, ablation_cliques, ablation_density, ablation_heuristic, ablation_horizon,
    bounds_exp, drift_exp, fig3, fig4, fig5, fig6, Scale,
};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running all figures at scale {scale:?}");

    let f3 = fig3::run(&fig3::Fig3Config {
        scale,
        ..Default::default()
    });
    println!("{}\n", f3.report());

    let f4 = fig4::run(&fig4::Fig4Config {
        scale,
        ..Default::default()
    });
    println!("{}\n", f4.report());

    let f5 = fig5::run(&fig5::Fig5Config {
        scale,
        ..Default::default()
    });
    println!("{}\n", f5.report());

    let f6 = fig6::run(&fig6::Fig6Config {
        scale,
        ..Default::default()
    });
    println!("{}\n", f6.report());

    println!(
        "{}\n",
        bounds_exp::report(&bounds_exp::run(&Default::default()))
    );

    let mut density_cfg = ablation_density::DensityConfig::default();
    if scale.horizon < density_cfg.scale.horizon {
        density_cfg.scale = scale;
    }
    println!(
        "{}\n",
        ablation_density::report(&ablation_density::run(&density_cfg))
    );

    let mut baselines_cfg = ablation_baselines::BaselinesConfig::default();
    if scale.horizon < baselines_cfg.scale.horizon {
        baselines_cfg.scale = scale;
        baselines_cfg.arm_counts = vec![20];
    }
    println!(
        "{}\n",
        ablation_baselines::report(&ablation_baselines::run(&baselines_cfg))
    );

    let mut cliques_cfg = ablation_cliques::CliquesConfig::default();
    if scale.horizon < cliques_cfg.scale.horizon {
        cliques_cfg.scale = scale;
    }
    println!(
        "{}\n",
        ablation_cliques::report(&ablation_cliques::run(&cliques_cfg))
    );

    let mut heuristic_cfg = ablation_heuristic::HeuristicConfig::default();
    if scale.horizon < heuristic_cfg.scale.horizon {
        heuristic_cfg.scale = scale;
    }
    println!(
        "{}\n",
        ablation_heuristic::report(&ablation_heuristic::run(&heuristic_cfg))
    );

    let mut horizon_cfg = ablation_horizon::HorizonConfig::default();
    if scale.horizon < 10_000 {
        horizon_cfg.horizons = vec![200, 400, 800, 1_600];
        horizon_cfg.replications = scale.replications;
    }
    println!(
        "{}\n",
        ablation_horizon::report(&ablation_horizon::run(&horizon_cfg))
    );

    let mut drift_cfg = drift_exp::DriftConfig::default();
    if scale.horizon < drift_cfg.scale.horizon {
        drift_cfg.scale = Scale {
            horizon: 2_000,
            replications: scale.replications.min(2),
        };
    }
    println!("{}\n", drift_exp::report(&drift_exp::run(&drift_cfg)));

    println!("summary:");
    println!(
        "  Fig.3  DFL-SSO beats MOSS:          {}",
        f3.dfl_beats_moss()
    );
    println!(
        "  Fig.4  dense beats sparse:          {}",
        f4.dense_beats_sparse()
    );
    println!(
        "  Fig.5  DFL-SSR regret trends to 0:  {}",
        f5.regret_trends_to_zero()
    );
    println!(
        "  Fig.6  DFL-CSR regret trends to 0:  {}",
        f6.regret_trends_to_zero()
    );
}
