//! Ablation D: the Section IX greedy-neighbour redirection vs the base DFL policies.
//!
//! Usage: `cargo run --release -p netband-experiments --bin ablation_heuristic [-- --quick]`

use netband_experiments::ablation_heuristic::{report, run, HeuristicConfig};
use netband_experiments::Scale;

fn main() {
    let mut config = HeuristicConfig::default();
    let scale = Scale::from_env();
    if scale.horizon < config.scale.horizon {
        config.scale = scale;
    }
    eprintln!("running heuristic ablation with {config:?}");
    let rows = run(&config);
    println!("{}", report(&rows));
}
