//! Drift experiment — stationary policies vs forgetting policies across an
//! abrupt change point.
//!
//! The paper's evaluation (Section VII) is entirely stationary; this extension
//! asks what happens to its combinatorial policies when the world moves. A
//! [`netband_spec::DriftSpec`] rotates the mean vector halfway through the
//! horizon, so the identity of the best strategy changes abruptly, and every
//! policy is scored against the *dynamic* oracle (the per-round optimum under
//! that round's means). Side observations — the paper's central mechanism —
//! cut both ways here: on a dense relation graph they accelerate learning
//! before the change point, but pile up stale evidence that a stationary
//! estimator never escapes afterwards. The discounted and sliding-window
//! Thompson variants (CTS-D / CTS-SW) forget, which is exactly what the
//! post-change tail isolates.
//!
//! Everything runs through declarative [`ScenarioSpec`] documents — the same
//! grid cells could be replayed on the serving engine or exported as JSON.

use serde::{Deserialize, Serialize};

use netband_sim::export::format_table;
use netband_sim::run_spec;
use netband_spec::{
    ArmsSpec, ChangePointSpec, DriftSpec, EstimatorSpec, FamilySpec, FeedbackSpec, GraphSpec,
    PolicySpec, ScenarioSpec, SideBonus, WorkloadSpec, SPEC_VERSION,
};

use crate::common::Scale;

/// Configuration of the drift comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Number of arms `K`.
    pub num_arms: usize,
    /// Edge probability of the relation graph. Dense graphs make the
    /// comparison sharpest: side observations spread stale evidence onto
    /// every arm.
    pub edge_prob: f64,
    /// Strategy size cap `m` of the `at-most-m` family.
    pub max_strategy_size: usize,
    /// Horizon and replication count. The change point sits at `horizon / 2`.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            num_arms: 12,
            edge_prob: 0.9,
            max_strategy_size: 2,
            scale: Scale {
                horizon: 6_000,
                replications: 10,
            },
            base_seed: 9_101,
        }
    }
}

/// The policy panel of the comparison, as `(label, spec)` pairs — two
/// stationary combinatorial policies and the three Thompson estimator
/// variants.
pub fn policy_panel(seed: u64) -> Vec<(&'static str, PolicySpec)> {
    vec![
        ("dfl-cso", PolicySpec::DflCso),
        ("cucb", PolicySpec::Cucb),
        (
            "cts",
            PolicySpec::Cts {
                seed,
                estimator: None,
            },
        ),
        (
            "cts-d",
            PolicySpec::Cts {
                seed,
                estimator: Some(EstimatorSpec::Discounted { gamma: 0.995 }),
            },
        ),
        (
            "cts-sw",
            PolicySpec::Cts {
                seed,
                estimator: Some(EstimatorSpec::SlidingWindow { window: 400 }),
            },
        ),
    ]
}

/// The scenario document of one grid cell: a dense Erdős–Rényi workload whose
/// mean vector rotates by `K/2` positions at `horizon / 2`.
pub fn cell_spec(config: &DriftConfig, policy: PolicySpec, seed: u64) -> ScenarioSpec {
    let change_round = (config.scale.horizon / 2) as u64;
    ScenarioSpec {
        version: SPEC_VERSION,
        name: format!("drift/{}", policy.display_name()),
        workload: WorkloadSpec {
            graph: GraphSpec::ErdosRenyi {
                num_arms: config.num_arms,
                edge_prob: config.edge_prob,
            },
            arms: ArmsSpec::UniformMeanBernoulli {
                num_arms: config.num_arms,
            },
            family: Some(FamilySpec::AtMostM {
                m: config.max_strategy_size,
            }),
            drift: Some(DriftSpec {
                change_points: vec![ChangePointSpec {
                    round: change_round,
                    rotation: config.num_arms / 2,
                }],
                ..DriftSpec::default()
            }),
            seed,
        },
        policy,
        side_bonus: SideBonus::Observation,
        horizon: config.scale.horizon,
        replications: 1,
        seed: seed.wrapping_mul(0x9E37_79B9),
        feedback: FeedbackSpec::Immediate,
    }
}

/// Mean regret of one policy, split at the change point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftRow {
    /// Panel label of the policy.
    pub label: String,
    /// Report name of the policy.
    pub policy: String,
    /// Mean cumulative pseudo-regret over the whole horizon.
    pub total_regret: f64,
    /// Mean cumulative pseudo-regret over rounds strictly after the change
    /// point — the recovery cost the forgetting estimators are built to cut.
    pub post_change_regret: f64,
}

/// Runs the comparison: every panel policy over every replication, scored
/// against the dynamic oracle, averaged per policy.
pub fn run(config: &DriftConfig) -> Vec<DriftRow> {
    let change = config.scale.horizon / 2;
    let panel = policy_panel(0);
    let mut rows: Vec<DriftRow> = panel
        .iter()
        .map(|(label, policy)| DriftRow {
            label: (*label).to_owned(),
            policy: policy.display_name().to_owned(),
            total_regret: 0.0,
            post_change_regret: 0.0,
        })
        .collect();
    for rep in 0..config.scale.replications {
        let seed = config.base_seed + rep as u64;
        for (idx, (_, policy)) in policy_panel(seed).into_iter().enumerate() {
            let spec = cell_spec(config, policy, seed);
            let result = run_spec(&spec)
                .unwrap_or_else(|e| panic!("drift cell {:?} failed: {e}", spec.name));
            let pseudo = result.trace.pseudo();
            rows[idx].total_regret += pseudo.iter().sum::<f64>();
            rows[idx].post_change_regret += pseudo[change..].iter().sum::<f64>();
        }
    }
    let n = config.scale.replications.max(1) as f64;
    for row in &mut rows {
        row.total_regret /= n;
        row.post_change_regret /= n;
    }
    rows
}

/// The row of a labelled policy, if present.
pub fn row_of<'a>(rows: &'a [DriftRow], label: &str) -> Option<&'a DriftRow> {
    rows.iter().find(|r| r.label == label)
}

/// Formats the comparison as a table.
pub fn report(rows: &[DriftRow]) -> String {
    if rows.is_empty() {
        return "Drift experiment — no rows".to_owned();
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.policy.clone(),
                format!("{:.1}", row.total_regret),
                format!("{:.1}", row.post_change_regret),
            ]
        })
        .collect();
    format!(
        "Drift experiment — mean dynamic pseudo-regret across an abrupt change point\n{}",
        format_table(&["policy", "R_n (total)", "R_n (post-change)"], &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DriftConfig {
        DriftConfig {
            num_arms: 8,
            edge_prob: 0.9,
            max_strategy_size: 1,
            scale: Scale {
                horizon: 3_000,
                replications: 3,
            },
            base_seed: 91,
        }
    }

    #[test]
    fn forgetting_estimators_recover_faster_than_stationary_dfl() {
        let rows = run(&quick());
        let dfl = row_of(&rows, "dfl-cso").unwrap().post_change_regret;
        let cts_d = row_of(&rows, "cts-d").unwrap().post_change_regret;
        let cts_sw = row_of(&rows, "cts-sw").unwrap().post_change_regret;
        assert!(
            cts_d < dfl,
            "CTS-D post-change regret ({cts_d:.1}) should beat stationary DFL-CSO ({dfl:.1})"
        );
        assert!(
            cts_sw < dfl,
            "CTS-SW post-change regret ({cts_sw:.1}) should beat stationary DFL-CSO ({dfl:.1})"
        );
    }

    #[test]
    fn discounting_beats_stationary_thompson_after_the_change_point() {
        let rows = run(&quick());
        let cts = row_of(&rows, "cts").unwrap().post_change_regret;
        let cts_d = row_of(&rows, "cts-d").unwrap().post_change_regret;
        assert!(
            cts_d < cts,
            "CTS-D post-change regret ({cts_d:.1}) should beat stationary CTS ({cts:.1})"
        );
    }

    #[test]
    fn report_lists_every_panel_policy() {
        let config = DriftConfig {
            scale: Scale {
                horizon: 200,
                replications: 1,
            },
            ..quick()
        };
        let rows = run(&config);
        let text = report(&rows);
        for name in ["DFL-CSO", "CUCB", "CTS", "CTS-D", "CTS-SW"] {
            assert!(text.contains(name), "missing {name} in report:\n{text}");
        }
        assert!(report(&[]).contains("no rows"));
    }
}
