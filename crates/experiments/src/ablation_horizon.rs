//! Ablation E — regret growth with the horizon (the "zero regret" property).
//!
//! The paper's central claim is that all four policies have *zero regret*:
//! `R_n / n → 0`. Theorems 1–3 actually promise `O(√n)` growth of the
//! cumulative regret (Theorem 4 promises `O(n^{5/6})`). This ablation measures
//! `R_n` of DFL-SSO and DFL-SSR at geometrically spaced horizons and fits the
//! growth exponent `α` in `R_n ≈ c·n^α`, checking that it is clearly sublinear
//! and close to the theoretical exponent.

use serde::{Deserialize, Serialize};

use netband_sim::export::format_table;
use netband_sim::replicate::aggregate;
use netband_sim::run_spec;
use netband_sim::RunResult;
use netband_spec::{PolicySpec, ScenarioSpec, SideBonus};

use crate::common::{grid_cell, paper_workload_spec};

/// Configuration of the horizon-scaling ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizonConfig {
    /// Number of arms `K`.
    pub num_arms: usize,
    /// Edge probability of the relation graph.
    pub edge_prob: f64,
    /// Horizons to evaluate (should span at least one order of magnitude).
    pub horizons: Vec<usize>,
    /// Replications per horizon.
    pub replications: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for HorizonConfig {
    fn default() -> Self {
        HorizonConfig {
            num_arms: 50,
            edge_prob: 0.3,
            horizons: vec![500, 1_000, 2_000, 4_000, 8_000, 16_000],
            replications: 10,
            base_seed: 11_001,
        }
    }
}

/// Cumulative regret at one horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizonRow {
    /// The horizon `n`.
    pub horizon: usize,
    /// Mean cumulative regret of DFL-SSO (side-observation objective).
    pub sso_regret: f64,
    /// Mean cumulative regret of DFL-SSR (side-reward objective).
    pub ssr_regret: f64,
}

/// The full result: per-horizon regrets plus fitted growth exponents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizonResult {
    /// One row per horizon.
    pub rows: Vec<HorizonRow>,
    /// Least-squares slope of `log R_n` against `log n` for DFL-SSO.
    pub sso_exponent: f64,
    /// Least-squares slope of `log R_n` against `log n` for DFL-SSR.
    pub ssr_exponent: f64,
}

/// Ordinary least-squares slope of `y` against `x`.
fn slope(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    if x.len() < 2 || x.len() != y.len() {
        return 0.0;
    }
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let cov: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - mean_x) * (b - mean_y))
        .sum();
    let var: f64 = x.iter().map(|a| (a - mean_x) * (a - mean_x)).sum();
    if var <= 0.0 {
        0.0
    } else {
        cov / var
    }
}

impl HorizonConfig {
    /// The declarative grid cells of one `(horizon, replication)` pair:
    /// DFL-SSO (side observation) and DFL-SSR (side reward). The workload
    /// seed depends on the replication only, so the same instances recur
    /// across horizons and the growth curve is not confounded by instance
    /// variation.
    pub fn grid_cells(&self, h_idx: usize, horizon: usize, rep: usize) -> [ScenarioSpec; 2] {
        let seed = self.base_seed + rep as u64;
        let workload = paper_workload_spec(self.num_arms, self.edge_prob, seed);
        let run_seed = seed.wrapping_mul(0xD6E8_FEB8) + h_idx as u64;
        [
            grid_cell(
                format!("horizon/dfl-sso/n{horizon}/rep{rep}"),
                workload.clone(),
                PolicySpec::DflSso,
                SideBonus::Observation,
                horizon,
                run_seed,
            ),
            grid_cell(
                format!("horizon/dfl-ssr/n{horizon}/rep{rep}"),
                workload,
                PolicySpec::DflSsr,
                SideBonus::Reward,
                horizon,
                run_seed,
            ),
        ]
    }
}

/// Runs the ablation: every grid cell is a [`ScenarioSpec`] driven through
/// [`run_spec`].
pub fn run(config: &HorizonConfig) -> HorizonResult {
    let mut rows = Vec::with_capacity(config.horizons.len());
    for (h_idx, &horizon) in config.horizons.iter().enumerate() {
        let mut sso_runs: Vec<RunResult> = Vec::new();
        let mut ssr_runs: Vec<RunResult> = Vec::new();
        for rep in 0..config.replications {
            let [sso_spec, ssr_spec] = config.grid_cells(h_idx, horizon, rep);
            sso_runs.push(run_spec(&sso_spec).expect("horizon scenario spec is consistent"));
            ssr_runs.push(run_spec(&ssr_spec).expect("horizon scenario spec is consistent"));
        }
        rows.push(HorizonRow {
            horizon,
            sso_regret: aggregate(&sso_runs).final_regret_mean().max(1e-6),
            ssr_regret: aggregate(&ssr_runs).final_regret_mean().max(1e-6),
        });
    }
    let log_n: Vec<f64> = rows.iter().map(|r| (r.horizon as f64).ln()).collect();
    let log_sso: Vec<f64> = rows.iter().map(|r| r.sso_regret.ln()).collect();
    let log_ssr: Vec<f64> = rows.iter().map(|r| r.ssr_regret.ln()).collect();
    HorizonResult {
        sso_exponent: slope(&log_n, &log_sso),
        ssr_exponent: slope(&log_n, &log_ssr),
        rows,
    }
}

/// Formats the ablation as a table plus the fitted exponents.
pub fn report(result: &HorizonResult) -> String {
    let table_rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.horizon.to_string(),
                format!("{:.1}", r.sso_regret),
                format!("{:.1}", r.ssr_regret),
            ]
        })
        .collect();
    format!(
        "Ablation E — cumulative regret vs horizon (zero-regret check)\n{}\nfitted growth exponents of R_n ≈ c·n^α: DFL-SSO α ≈ {:.2}, DFL-SSR α ≈ {:.2}\n(Theorems 1 and 3 guarantee α ≤ 0.5 asymptotically; any α < 1 already certifies the\nzero-regret property R_n/n → 0. Finite-horizon fits can exceed 0.5 while the regret\nis still far below the theorem's constant.)\n",
        format_table(&["n", "DFL-SSO R_n", "DFL-SSR R_n"], &table_rows),
        result.sso_exponent,
        result.ssr_exponent
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HorizonConfig {
        HorizonConfig {
            num_arms: 15,
            edge_prob: 0.4,
            horizons: vec![200, 800, 3_200],
            replications: 3,
            base_seed: 110,
        }
    }

    #[test]
    fn regret_growth_is_sublinear() {
        let result = run(&quick());
        assert_eq!(result.rows.len(), 3);
        assert!(
            result.sso_exponent < 0.95,
            "DFL-SSO growth exponent {} should be sublinear",
            result.sso_exponent
        );
        assert!(
            result.ssr_exponent < 0.95,
            "DFL-SSR growth exponent {} should be sublinear",
            result.ssr_exponent
        );
    }

    #[test]
    fn regret_is_nondecreasing_in_the_horizon_up_to_noise() {
        let result = run(&quick());
        // Allow small non-monotonicity from noise, but the largest horizon should
        // not have less regret than half the smallest one.
        let first = result.rows.first().unwrap();
        let last = result.rows.last().unwrap();
        assert!(last.sso_regret > 0.5 * first.sso_regret);
    }

    #[test]
    fn slope_of_known_data() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 4.0, 6.0, 8.0];
        assert!((slope(&x, &y) - 2.0).abs() < 1e-12);
        assert_eq!(slope(&[1.0], &[1.0]), 0.0);
        assert_eq!(slope(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn report_mentions_the_exponents() {
        let result = run(&quick());
        let text = report(&result);
        assert!(text.contains("growth exponents"));
        assert!(text.contains("3200"));
    }
}
