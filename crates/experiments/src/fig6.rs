//! Figure 6 — expected regret of DFL-CSR (combinatorial-play with side reward).
//!
//! Paper setting: combinatorial play where the collected reward is the sum over
//! the strategy's whole observation set `Y_x` and regret is measured against
//! `σ_1` (Equation 4); the expected regret converges to 0. The paper does not
//! state `K` or the constraint for this figure; we use an at-most-`M` family —
//! the "place up to m advertisements" constraint from the paper's introduction —
//! over a 20-arm random graph, which keeps the exact oracle cheap.

use serde::{Deserialize, Serialize};

use netband_sim::export::columns_to_csv;
use netband_sim::replicate::aggregate;
use netband_sim::run_spec;
use netband_sim::{AveragedRun, RunResult};
use netband_spec::{FamilySpec, PolicySpec, ScenarioSpec, SideBonus, WorkloadSpec};

use crate::common::{grid_cell, paper_workload_spec, Scale};
use crate::report::{expected_regret_table, summary_line};

/// Configuration of the Fig. 6 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig6Config {
    /// Number of arms `K`.
    pub num_arms: usize,
    /// Edge probability of the Erdős–Rényi relation graph.
    pub edge_prob: f64,
    /// Cardinality cap `M` of the at-most-`M` feasible family.
    pub max_strategy_size: usize,
    /// Horizon and replication count.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Also run CUCB (which optimises the direct reward and ignores coverage)
    /// under the same CSR regret, as an extension for context.
    pub include_baselines: bool,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            num_arms: 20,
            edge_prob: 0.3,
            max_strategy_size: 3,
            scale: Scale::full(),
            base_seed: 6_001,
            include_baselines: true,
        }
    }
}

/// The averaged curves of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// DFL-CSR (Algorithm 4).
    pub dfl_csr: AveragedRun,
    /// Optional baselines under the same CSR regret.
    pub baselines: Vec<AveragedRun>,
}

impl Fig6Result {
    /// `true` when the time-averaged regret decreases from early to late in the
    /// run — the paper's "converges to 0" claim.
    pub fn regret_trends_to_zero(&self) -> bool {
        crate::common::trends_to_zero(&self.dfl_csr.expected_regret)
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        let mut runs: Vec<&AveragedRun> = vec![&self.dfl_csr];
        runs.extend(self.baselines.iter());
        let mut out = String::from("Figure 6 — DFL-CSR expected regret\n");
        for run in &runs {
            out.push_str(&summary_line(run));
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&expected_regret_table(&runs, 20));
        out
    }

    /// CSV of the expected-regret curves.
    pub fn csv(&self) -> String {
        let t: Vec<f64> = (1..=self.dfl_csr.horizon).map(|x| x as f64).collect();
        let mut columns: Vec<(&str, &[f64])> = vec![
            ("t", &t),
            ("dfl_csr_expected", &self.dfl_csr.expected_regret),
            ("dfl_csr_accumulated", &self.dfl_csr.accumulated_regret),
        ];
        for baseline in &self.baselines {
            columns.push((baseline.policy.as_str(), &baseline.expected_regret));
        }
        columns_to_csv(&columns)
    }
}

impl Fig6Config {
    /// The declarative grid of one replication: DFL-CSR first, then (when
    /// baselines are enabled) CUCB, both over the same at-most-`M` workload
    /// document under the CSR regret.
    pub fn replication_specs(&self, rep: usize) -> Vec<ScenarioSpec> {
        let seed = self.base_seed + rep as u64;
        let workload = WorkloadSpec {
            family: Some(FamilySpec::AtMostM {
                m: self.max_strategy_size,
            }),
            ..paper_workload_spec(self.num_arms, self.edge_prob, seed)
        };
        let run_seed = seed.wrapping_mul(0xC2B2_AE35);
        let mut policies = vec![("dfl-csr", PolicySpec::DflCsr)];
        if self.include_baselines {
            policies.push(("cucb", PolicySpec::Cucb));
        }
        policies
            .into_iter()
            .map(|(name, policy)| {
                grid_cell(
                    format!("fig6/{name}/rep{rep}"),
                    workload.clone(),
                    policy,
                    SideBonus::Reward,
                    self.scale.horizon,
                    run_seed,
                )
            })
            .collect()
    }
}

/// Runs the Fig. 6 experiment: every grid cell is a [`ScenarioSpec`] driven
/// through [`run_spec`].
pub fn run(config: &Fig6Config) -> Fig6Result {
    let mut per_policy: Vec<Vec<RunResult>> = Vec::new();
    for rep in 0..config.scale.replications {
        let specs = config.replication_specs(rep);
        if per_policy.is_empty() {
            per_policy = specs.iter().map(|_| Vec::new()).collect();
        }
        for (idx, spec) in specs.iter().enumerate() {
            per_policy[idx]
                .push(run_spec(spec).expect("fig6 policies only propose feasible strategies"));
        }
    }
    let mut aggregates = per_policy.iter().map(|runs| aggregate(runs));
    let dfl_csr = aggregates.next().expect("DFL-CSR is always in the grid");
    Fig6Result {
        dfl_csr,
        baselines: aggregates.collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Fig6Config {
        Fig6Config {
            num_arms: 10,
            edge_prob: 0.3,
            max_strategy_size: 2,
            scale: Scale {
                horizon: 2_000,
                replications: 3,
            },
            base_seed: 41,
            include_baselines: true,
        }
    }

    #[test]
    fn fig6_regret_trends_to_zero() {
        let result = run(&quick_config());
        assert!(result.regret_trends_to_zero());
    }

    #[test]
    fn fig6_dfl_csr_beats_coverage_blind_cucb() {
        let result = run(&quick_config());
        let cucb = result
            .baselines
            .iter()
            .find(|b| b.policy == "CUCB")
            .expect("baselines requested");
        assert!(
            result.dfl_csr.final_regret_mean() <= cucb.final_regret_mean(),
            "DFL-CSR {} vs CUCB {}",
            result.dfl_csr.final_regret_mean(),
            cucb.final_regret_mean()
        );
    }

    #[test]
    fn fig6_report_and_csv_render() {
        let result = run(&Fig6Config {
            num_arms: 8,
            include_baselines: false,
            scale: Scale {
                horizon: 120,
                replications: 2,
            },
            ..quick_config()
        });
        assert!(result.report().contains("Figure 6"));
        assert!(result.csv().starts_with("t,dfl_csr_expected"));
        assert!(result.baselines.is_empty());
    }

    #[test]
    fn fig6_is_deterministic() {
        let cfg = Fig6Config {
            num_arms: 8,
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            ..quick_config()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn default_matches_design_doc() {
        let cfg = Fig6Config::default();
        assert_eq!(cfg.num_arms, 20);
        assert_eq!(cfg.max_strategy_size, 3);
        assert_eq!(cfg.scale.horizon, 10_000);
    }
}
