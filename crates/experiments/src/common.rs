//! Shared workload builders and scale settings for the experiment harness.
//!
//! Since the spec redesign, every figure and ablation declares its grid as
//! `netband-spec` [`ScenarioSpec`] documents: the helpers here construct the
//! shared "one cell of a grid" spec and build coupled policy panels from
//! [`PolicySpec`] lists, so an experiment's configuration is serializable data
//! end to end.

use serde::{Deserialize, Serialize};

use netband_env::NetworkedBandit;
use netband_spec::{
    AnyPolicy, ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus,
    WorkloadSpec, SPEC_VERSION,
};

/// How large to run an experiment.
///
/// `full()` matches the paper's setting (horizon 10 000); `quick()` is a
/// smoke-test scale used by unit tests, CI, and `--quick` runs of the binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Number of time slots `n`.
    pub horizon: usize,
    /// Number of independent replications averaged per curve.
    pub replications: usize,
}

impl Scale {
    /// The paper-scale setting: `n = 10 000`, 20 replications.
    pub fn full() -> Self {
        Scale {
            horizon: 10_000,
            replications: 20,
        }
    }

    /// A small setting for smoke tests and benches: `n = 400`, 3 replications.
    pub fn quick() -> Self {
        Scale {
            horizon: 400,
            replications: 3,
        }
    }

    /// Chooses the scale from the process environment/arguments: `--quick` as a
    /// CLI argument or `NETBAND_QUICK=1` selects [`Scale::quick`].
    pub fn from_env() -> Self {
        let quick_flag = std::env::args().any(|a| a == "--quick" || a == "-q");
        let quick_env = std::env::var("NETBAND_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        if quick_flag || quick_env {
            Scale::quick()
        } else {
            Scale::full()
        }
    }
}

/// Returns `true` when a (time-averaged regret) curve is trending towards zero:
/// the mean of its last quarter is below the mean of its first quarter (after a
/// 5% burn-in that skips the forced exploration of the very first pulls).
///
/// Comparing window means rather than single points makes the check robust to
/// per-round noise in short smoke-test runs.
pub fn trends_to_zero(curve: &[f64]) -> bool {
    if curve.len() < 20 {
        return false;
    }
    let burn = curve.len() / 20;
    let quarter = curve.len() / 4;
    let early = &curve[burn..burn + quarter];
    let late = &curve[curve.len() - quarter..];
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    mean(late) < mean(early)
}

/// The paper's Section VII workload as a declarative spec: an Erdős–Rényi
/// relation graph with connection probability `edge_prob` over `num_arms`
/// Bernoulli arms whose means are drawn uniformly from `[0, 1]`.
pub fn paper_workload_spec(num_arms: usize, edge_prob: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        graph: GraphSpec::ErdosRenyi {
            num_arms,
            edge_prob,
        },
        arms: ArmsSpec::UniformMeanBernoulli { num_arms },
        family: None,
        drift: None,
        seed,
    }
}

/// Builds the paper's simulation workload (via [`paper_workload_spec`]).
///
/// The graph and the arm means are regenerated per replication (seeded), which
/// matches the paper's "randomly generate a relation graph with 100 arms" setup
/// and averages out the dependence on any single random instance.
pub fn paper_workload(num_arms: usize, edge_prob: f64, seed: u64) -> NetworkedBandit {
    paper_workload_spec(num_arms, edge_prob, seed)
        .build()
        .expect("the paper workload spec is internally consistent")
        .bandit
}

/// One cell of an experiment grid: a [`ScenarioSpec`] over the given workload
/// with a single replication (the experiment modules iterate replications
/// themselves so each can keep its historical seed derivation).
pub fn grid_cell(
    name: impl Into<String>,
    workload: WorkloadSpec,
    policy: PolicySpec,
    side_bonus: SideBonus,
    horizon: usize,
    run_seed: u64,
) -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name: name.into(),
        workload,
        policy,
        side_bonus,
        horizon,
        replications: 1,
        seed: run_seed,
        feedback: FeedbackSpec::Immediate,
    }
}

/// Builds a panel of single-play policies (for the coupled sample-path
/// drivers) from declarative policy specs.
///
/// # Panics
///
/// Panics if a spec is combinatorial or fails to build — experiment grids are
/// static, so a failure is a programming error, not an input error.
pub fn build_single_panel(policies: &[PolicySpec], bandit: &NetworkedBandit) -> Vec<AnyPolicy> {
    policies
        .iter()
        .map(|spec| {
            let policy = spec
                .build(bandit, None)
                .unwrap_or_else(|e| panic!("policy {spec:?} failed to build: {e}"));
            assert!(
                policy.is_single(),
                "coupled panels are single-play, got {spec:?}"
            );
            policy
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_expected_sizes() {
        let full = Scale::full();
        assert_eq!(full.horizon, 10_000);
        assert_eq!(full.replications, 20);
        let quick = Scale::quick();
        assert!(quick.horizon < full.horizon);
        assert!(quick.replications < full.replications);
    }

    #[test]
    fn paper_workload_is_seeded_and_sized() {
        let a = paper_workload(30, 0.3, 7);
        let b = paper_workload(30, 0.3, 7);
        let c = paper_workload(30, 0.3, 8);
        assert_eq!(a.num_arms(), 30);
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.means(), b.means());
        assert_ne!(a.means(), c.means());
    }

    #[test]
    fn trends_to_zero_detects_decay_and_rejects_growth() {
        let decaying: Vec<f64> = (1..=200).map(|t| 1.0 / t as f64).collect();
        assert!(trends_to_zero(&decaying));
        let growing: Vec<f64> = (1..=200).map(|t| t as f64 / 200.0).collect();
        assert!(!trends_to_zero(&growing));
        assert!(!trends_to_zero(&[1.0, 0.5]));
    }

    #[test]
    fn paper_workload_density_tracks_edge_probability() {
        let sparse = paper_workload(80, 0.1, 1);
        let dense = paper_workload(80, 0.7, 1);
        assert!(sparse.graph().density() < dense.graph().density());
    }
}
