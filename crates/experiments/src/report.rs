//! Reporting helpers: compact textual rendering of regret curves.

use netband_sim::export::format_table;
use netband_sim::stats::downsample;
use netband_sim::AveragedRun;

/// Renders several averaged runs as a downsampled table of their expected
/// (time-averaged) regret, one column per policy — the textual analogue of the
/// paper's figures.
pub fn expected_regret_table(runs: &[&AveragedRun], points: usize) -> String {
    curve_table(
        runs,
        points,
        |run| run.expected_regret.clone(),
        "expected regret R_t / t",
    )
}

/// Renders several averaged runs as a downsampled table of their accumulated
/// regret.
pub fn accumulated_regret_table(runs: &[&AveragedRun], points: usize) -> String {
    curve_table(
        runs,
        points,
        |run| run.accumulated_regret.clone(),
        "accumulated regret R_t",
    )
}

fn curve_table(
    runs: &[&AveragedRun],
    points: usize,
    curve: impl Fn(&AveragedRun) -> Vec<f64>,
    title: &str,
) -> String {
    if runs.is_empty() {
        return format!("({title}: no runs)\n");
    }
    let curves: Vec<Vec<f64>> = runs.iter().map(|r| curve(r)).collect();
    let sampled: Vec<Vec<(usize, f64)>> = curves.iter().map(|c| downsample(c, points)).collect();
    let anchor = sampled
        .iter()
        .max_by_key(|s| s.len())
        .cloned()
        .unwrap_or_default();
    let mut headers: Vec<String> = vec!["t".to_owned()];
    headers.extend(runs.iter().map(|r| r.policy.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (row_idx, &(t_idx, _)) in anchor.iter().enumerate() {
        let mut row = vec![format!("{}", t_idx + 1)];
        for s in &sampled {
            let value = s
                .get(row_idx)
                .map(|&(_, v)| v)
                .or_else(|| s.last().map(|&(_, v)| v))
                .unwrap_or(0.0);
            row.push(format!("{value:.4}"));
        }
        rows.push(row);
    }
    format!("{title}\n{}", format_table(&header_refs, &rows))
}

/// One-line summary of an averaged run: final accumulated and expected regret
/// with the spread over replications.
pub fn summary_line(run: &AveragedRun) -> String {
    format!(
        "{:<20} R_n = {:>10.2} ± {:>8.2}   R_n/n = {:>8.4}   ({} reps, n = {})",
        run.policy,
        run.final_regret_mean(),
        run.final_regret_std(),
        run.final_expected_regret(),
        run.replications,
        run.horizon
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_run(name: &str, horizon: usize) -> AveragedRun {
        AveragedRun {
            policy: name.to_owned(),
            replications: 2,
            horizon,
            expected_regret: (0..horizon).map(|t| 1.0 / (t + 1) as f64).collect(),
            accumulated_regret: (0..horizon).map(|t| (t + 1) as f64).collect(),
            accumulated_std: vec![0.0; horizon],
            expected_pseudo_regret: vec![0.0; horizon],
            final_regrets: vec![horizon as f64, horizon as f64],
            mean_total_reward: 10.0,
        }
    }

    #[test]
    fn expected_regret_table_has_one_column_per_policy() {
        let a = fake_run("DFL-SSO", 100);
        let b = fake_run("MOSS", 100);
        let table = expected_regret_table(&[&a, &b], 5);
        assert!(table.contains("DFL-SSO"));
        assert!(table.contains("MOSS"));
        assert!(table.lines().count() >= 7, "{table}");
    }

    #[test]
    fn accumulated_regret_table_renders() {
        let a = fake_run("DFL-CSO", 50);
        let table = accumulated_regret_table(&[&a], 4);
        assert!(table.contains("accumulated"));
        assert!(table.contains("50"));
    }

    #[test]
    fn empty_run_list_is_handled() {
        let table = expected_regret_table(&[], 5);
        assert!(table.contains("no runs"));
    }

    #[test]
    fn summary_line_contains_key_numbers() {
        let run = fake_run("DFL-SSR", 10);
        let line = summary_line(&run);
        assert!(line.contains("DFL-SSR"));
        assert!(line.contains("n = 10"));
    }
}
