//! Ablation A — side-observation benefit as a function of graph density.
//!
//! Extends the sparse/dense comparison of Fig. 4 to a full density sweep for the
//! single-play case: DFL-SSO is run on Erdős–Rényi graphs of increasing edge
//! probability, with MOSS as the density-independent control. The expectation,
//! per Theorem 1, is that the regret of DFL-SSO falls as the graph gets denser
//! (more side observation, smaller clique cover) while MOSS is flat up to noise.

use serde::{Deserialize, Serialize};

use netband_graph::greedy_clique_cover;
use netband_sim::export::format_table;
use netband_sim::replicate::aggregate;
use netband_sim::runner::{run_single_coupled, SingleScenario};
use netband_sim::RunResult;
use netband_spec::PolicySpec;

use crate::common::{build_single_panel, paper_workload, Scale};

/// Configuration of the density sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityConfig {
    /// Number of arms `K`.
    pub num_arms: usize,
    /// Edge probabilities to sweep.
    pub densities: Vec<f64>,
    /// Horizon and replication count per density.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for DensityConfig {
    fn default() -> Self {
        DensityConfig {
            num_arms: 50,
            densities: vec![0.0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9],
            scale: Scale {
                horizon: 5_000,
                replications: 10,
            },
            base_seed: 7_001,
        }
    }
}

/// One row of the sweep: regrets at a single density.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityRow {
    /// Edge probability of the relation graph.
    pub density: f64,
    /// Mean greedy clique-cover size across replications.
    pub mean_clique_cover: f64,
    /// Final mean cumulative regret of DFL-SSO.
    pub dfl_sso_regret: f64,
    /// Final mean cumulative regret of MOSS.
    pub moss_regret: f64,
}

/// Runs the density sweep.
pub fn run(config: &DensityConfig) -> Vec<DensityRow> {
    let mut rows = Vec::with_capacity(config.densities.len());
    for (d_idx, &density) in config.densities.iter().enumerate() {
        let mut dfl_runs: Vec<RunResult> = Vec::with_capacity(config.scale.replications);
        let mut moss_runs: Vec<RunResult> = Vec::with_capacity(config.scale.replications);
        let mut cover_sum = 0usize;
        for rep in 0..config.scale.replications {
            let seed = config.base_seed + (d_idx * 1_000 + rep) as u64;
            let bandit = paper_workload(config.num_arms, density, seed);
            cover_sum += greedy_clique_cover(bandit.graph()).len();
            // The declarative pair: the density-sensitive policy and its
            // density-independent control.
            let mut panel = build_single_panel(
                &[PolicySpec::DflSso, PolicySpec::Moss { horizon: None }],
                &bandit,
            );
            let mut refs: Vec<&mut dyn netband_core::SinglePlayPolicy> = panel
                .iter_mut()
                .map(|p| p.as_single_mut().expect("single panel"))
                .collect();
            let mut results = run_single_coupled(
                &bandit,
                &mut refs,
                SingleScenario::SideObservation,
                config.scale.horizon,
                seed.wrapping_mul(0x27D4_EB2F),
            );
            moss_runs.push(results.pop().expect("two results"));
            dfl_runs.push(results.pop().expect("two results"));
        }
        let dfl = aggregate(&dfl_runs);
        let moss = aggregate(&moss_runs);
        rows.push(DensityRow {
            density,
            mean_clique_cover: cover_sum as f64 / config.scale.replications.max(1) as f64,
            dfl_sso_regret: dfl.final_regret_mean(),
            moss_regret: moss.final_regret_mean(),
        });
    }
    rows
}

/// Formats the sweep as a table.
pub fn report(rows: &[DensityRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.density),
                format!("{:.1}", r.mean_clique_cover),
                format!("{:.1}", r.dfl_sso_regret),
                format!("{:.1}", r.moss_regret),
            ]
        })
        .collect();
    format!(
        "Ablation A — regret vs relation-graph density (n = horizon, means over replications)\n{}",
        format_table(
            &["edge prob", "clique cover C", "DFL-SSO R_n", "MOSS R_n"],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DensityConfig {
        DensityConfig {
            num_arms: 20,
            densities: vec![0.0, 0.5, 0.9],
            scale: Scale {
                horizon: 400,
                replications: 2,
            },
            base_seed: 70,
        }
    }

    #[test]
    fn denser_graphs_reduce_dfl_sso_regret() {
        let rows = run(&quick());
        assert_eq!(rows.len(), 3);
        let edgeless = &rows[0];
        let dense = &rows[2];
        assert!(
            dense.dfl_sso_regret < edgeless.dfl_sso_regret,
            "dense {} vs edgeless {}",
            dense.dfl_sso_regret,
            edgeless.dfl_sso_regret
        );
    }

    #[test]
    fn clique_cover_shrinks_with_density() {
        let rows = run(&quick());
        assert!(rows[2].mean_clique_cover < rows[0].mean_clique_cover);
        // On an edgeless graph the cover is exactly K.
        assert!((rows[0].mean_clique_cover - 20.0).abs() < 1e-9);
    }

    #[test]
    fn on_edgeless_graphs_dfl_sso_and_moss_are_comparable() {
        // With no edges DFL-SSO *is* MOSS (same index, same observations), so on
        // a coupled sample path the two regrets coincide.
        let rows = run(&quick());
        let edgeless = &rows[0];
        assert!(
            (edgeless.dfl_sso_regret - edgeless.moss_regret).abs() < 1e-9,
            "{} vs {}",
            edgeless.dfl_sso_regret,
            edgeless.moss_regret
        );
    }

    #[test]
    fn report_renders() {
        let rows = run(&DensityConfig {
            densities: vec![0.3],
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            num_arms: 10,
            base_seed: 71,
        });
        let text = report(&rows);
        assert!(text.contains("Ablation A"));
        assert!(text.contains("0.30"));
    }
}
