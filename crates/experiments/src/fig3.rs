//! Figure 3 — MOSS vs DFL-SSO (expected and accumulated regret).
//!
//! Paper setting (Section VII): a randomly generated relation graph with 100
//! arms, each an i.i.d. process with mean drawn from `[0, 1]`, horizon
//! `n = 10 000`. Fig. 3(a) plots the time-averaged ("expected") regret of both
//! policies, Fig. 3(b) their accumulated regret. The expected qualitative
//! result: both time-averaged curves head towards 0, but DFL-SSO's accumulated
//! regret flattens out while MOSS's keeps growing — side observation wins.

use serde::{Deserialize, Serialize};

use netband_sim::export::columns_to_csv;
use netband_sim::replicate::aggregate;
use netband_sim::runner::{run_single_coupled, SingleScenario};
use netband_sim::{AveragedRun, RunResult};
use netband_spec::{PolicySpec, ScenarioSpec, SideBonus};

use crate::common::{build_single_panel, grid_cell, paper_workload_spec, Scale};
use crate::report::{accumulated_regret_table, expected_regret_table, summary_line};

/// Configuration of the Fig. 3 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Config {
    /// Number of arms `K` (paper: 100).
    pub num_arms: usize,
    /// Edge probability of the Erdős–Rényi relation graph.
    pub edge_prob: f64,
    /// Horizon and replication count.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            num_arms: 100,
            edge_prob: 0.3,
            scale: Scale::full(),
            base_seed: 3_001,
        }
    }
}

/// The two averaged curves of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// DFL-SSO (Algorithm 1), with side observation.
    pub dfl_sso: AveragedRun,
    /// MOSS, without side observation.
    pub moss: AveragedRun,
}

impl Fig3Result {
    /// `true` when DFL-SSO's mean accumulated regret is below MOSS's — the
    /// paper's headline comparison.
    pub fn dfl_beats_moss(&self) -> bool {
        self.dfl_sso.final_regret_mean() < self.moss.final_regret_mean()
    }

    /// Human-readable report: summary lines plus the Fig. 3(a) and Fig. 3(b)
    /// tables.
    pub fn report(&self) -> String {
        format!(
            "Figure 3 — MOSS vs DFL-SSO\n{}\n{}\n\nFig. 3(a) {}\nFig. 3(b) {}",
            summary_line(&self.dfl_sso),
            summary_line(&self.moss),
            expected_regret_table(&[&self.dfl_sso, &self.moss], 20),
            accumulated_regret_table(&[&self.dfl_sso, &self.moss], 20),
        )
    }

    /// CSV with one row per time slot: expected and accumulated regret of both
    /// policies.
    pub fn csv(&self) -> String {
        let t: Vec<f64> = (1..=self.dfl_sso.horizon).map(|x| x as f64).collect();
        columns_to_csv(&[
            ("t", &t),
            ("dfl_sso_expected", &self.dfl_sso.expected_regret),
            ("moss_expected", &self.moss.expected_regret),
            ("dfl_sso_accumulated", &self.dfl_sso.accumulated_regret),
            ("moss_accumulated", &self.moss.accumulated_regret),
        ])
    }
}

impl Fig3Config {
    /// The declarative grid of one replication: DFL-SSO and MOSS as
    /// [`ScenarioSpec`]s over the *same* workload document (both are run on
    /// one coupled sample path, so they share workload and run seeds).
    pub fn replication_specs(&self, rep: usize) -> [ScenarioSpec; 2] {
        let seed = self.base_seed + rep as u64;
        let workload = paper_workload_spec(self.num_arms, self.edge_prob, seed);
        let run_seed = seed.wrapping_mul(0x9E37_79B9);
        [
            grid_cell(
                format!("fig3/dfl-sso/rep{rep}"),
                workload.clone(),
                PolicySpec::DflSso,
                SideBonus::Observation,
                self.scale.horizon,
                run_seed,
            ),
            grid_cell(
                format!("fig3/moss/rep{rep}"),
                workload,
                PolicySpec::Moss { horizon: None },
                SideBonus::Observation,
                self.scale.horizon,
                run_seed,
            ),
        ]
    }
}

/// Runs the Fig. 3 experiment.
///
/// Each replication's grid is declared as [`ScenarioSpec`]s (see
/// [`Fig3Config::replication_specs`]); the workload and both policies are
/// built from the specs, then driven against the *same* sample path via the
/// coupled driver, exactly as one would compare two policies on one simulated
/// system.
pub fn run(config: &Fig3Config) -> Fig3Result {
    let mut dfl_runs: Vec<RunResult> = Vec::with_capacity(config.scale.replications);
    let mut moss_runs: Vec<RunResult> = Vec::with_capacity(config.scale.replications);
    for rep in 0..config.scale.replications {
        let [dfl_spec, moss_spec] = config.replication_specs(rep);
        let bandit = dfl_spec
            .workload
            .build()
            .expect("fig3 workload spec is consistent")
            .bandit;
        let mut panel = build_single_panel(&[dfl_spec.policy, moss_spec.policy], &bandit);
        let mut refs: Vec<&mut dyn netband_core::SinglePlayPolicy> = panel
            .iter_mut()
            .map(|p| p.as_single_mut().expect("single panel"))
            .collect();
        let mut results = run_single_coupled(
            &bandit,
            &mut refs,
            SingleScenario::SideObservation,
            dfl_spec.horizon,
            dfl_spec.seed,
        );
        moss_runs.push(results.pop().expect("two coupled results"));
        dfl_runs.push(results.pop().expect("two coupled results"));
    }
    Fig3Result {
        dfl_sso: aggregate(&dfl_runs),
        moss: aggregate(&moss_runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Fig3Config {
        Fig3Config {
            num_arms: 25,
            edge_prob: 0.3,
            scale: Scale {
                horizon: 600,
                replications: 3,
            },
            base_seed: 11,
        }
    }

    #[test]
    fn fig3_dfl_sso_beats_moss_even_at_small_scale() {
        let result = run(&quick_config());
        assert!(
            result.dfl_beats_moss(),
            "DFL-SSO {} vs MOSS {}",
            result.dfl_sso.final_regret_mean(),
            result.moss.final_regret_mean()
        );
    }

    #[test]
    fn fig3_expected_regret_decreases_over_time_for_dfl_sso() {
        let result = run(&quick_config());
        let curve = &result.dfl_sso.expected_regret;
        let early = curve[curve.len() / 10];
        let late = *curve.last().unwrap();
        assert!(
            late < early,
            "expected regret should decrease: early {early}, late {late}"
        );
    }

    #[test]
    fn fig3_report_and_csv_are_complete() {
        let result = run(&Fig3Config {
            num_arms: 10,
            edge_prob: 0.4,
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            base_seed: 5,
        });
        let report = result.report();
        assert!(report.contains("Figure 3"));
        assert!(report.contains("DFL-SSO"));
        assert!(report.contains("MOSS"));
        let csv = result.csv();
        assert_eq!(csv.lines().count(), 101); // header + one row per slot
        assert!(csv.starts_with("t,dfl_sso_expected"));
    }

    #[test]
    fn fig3_is_deterministic() {
        let cfg = Fig3Config {
            num_arms: 8,
            edge_prob: 0.5,
            scale: Scale {
                horizon: 80,
                replications: 2,
            },
            base_seed: 77,
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn default_config_matches_the_paper() {
        let cfg = Fig3Config::default();
        assert_eq!(cfg.num_arms, 100);
        assert_eq!(cfg.scale.horizon, 10_000);
    }
}
