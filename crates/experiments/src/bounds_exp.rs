//! Analytical experiment: evaluate the Theorem 1–4 regret bounds over sweeps of
//! the problem parameters, and compare the Theorem 1 bound with the clique-cover
//! sizes of actual random graphs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use netband_core::bounds;
use netband_graph::{generators, greedy_clique_cover};
use netband_sim::export::format_table;

/// One row of the bound sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundRow {
    /// Horizon `n`.
    pub horizon: usize,
    /// Number of arms `K`.
    pub num_arms: usize,
    /// Edge probability used for the clique-cover measurement.
    pub edge_prob: f64,
    /// Greedy clique-cover size `C` of a sampled graph.
    pub clique_cover: usize,
    /// Theorem 1 bound for DFL-SSO.
    pub theorem1: f64,
    /// MOSS's distribution-free bound `49 sqrt(nK)`.
    pub moss: f64,
    /// Theorem 3 bound for DFL-SSR.
    pub theorem3: f64,
    /// Theorem 4 bound for DFL-CSR with `N` = max closed neighbourhood.
    pub theorem4: f64,
}

/// Configuration of the bound sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundsConfig {
    /// Horizons to evaluate.
    pub horizons: Vec<usize>,
    /// Arm counts to evaluate.
    pub arm_counts: Vec<usize>,
    /// Edge probabilities to evaluate.
    pub edge_probs: Vec<f64>,
    /// RNG seed for the sampled graphs.
    pub seed: u64,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig {
            horizons: vec![1_000, 10_000, 100_000],
            arm_counts: vec![20, 100],
            edge_probs: vec![0.1, 0.3, 0.6],
            seed: 900,
        }
    }
}

/// Runs the sweep: one row per (horizon, arm count, edge probability).
pub fn run(config: &BoundsConfig) -> Vec<BoundRow> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::new();
    for &num_arms in &config.arm_counts {
        for &edge_prob in &config.edge_probs {
            let graph = generators::erdos_renyi(num_arms, edge_prob, &mut rng);
            let cover = greedy_clique_cover(&graph).len();
            let max_neighborhood = graph.max_closed_neighborhood();
            for &horizon in &config.horizons {
                rows.push(BoundRow {
                    horizon,
                    num_arms,
                    edge_prob,
                    clique_cover: cover,
                    theorem1: bounds::theorem1_dfl_sso(horizon, num_arms, cover),
                    moss: bounds::moss_bound(horizon, num_arms),
                    theorem3: bounds::theorem3_dfl_ssr(horizon, num_arms),
                    theorem4: bounds::theorem4_dfl_csr(horizon, num_arms, max_neighborhood),
                });
            }
        }
    }
    rows
}

/// Formats the sweep as a fixed-width table.
pub fn report(rows: &[BoundRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.horizon.to_string(),
                r.num_arms.to_string(),
                format!("{:.1}", r.edge_prob),
                r.clique_cover.to_string(),
                format!("{:.0}", r.theorem1),
                format!("{:.0}", r.moss),
                format!("{:.0}", r.theorem3),
                format!("{:.2e}", r.theorem4),
            ]
        })
        .collect();
    format!(
        "Theorem 1–4 regret bounds (C from greedy clique covers of sampled G(K, p))\n{}",
        format_table(
            &[
                "n",
                "K",
                "p",
                "C",
                "Thm1 (DFL-SSO)",
                "49·sqrt(nK) (MOSS)",
                "Thm3 (DFL-SSR)",
                "Thm4 (DFL-CSR)"
            ],
            &table_rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_one_row_per_combination() {
        let cfg = BoundsConfig {
            horizons: vec![100, 1_000],
            arm_counts: vec![10, 20],
            edge_probs: vec![0.2, 0.5],
            seed: 1,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2 * 2 * 2);
    }

    #[test]
    fn denser_graphs_have_smaller_covers_and_theorem1() {
        let cfg = BoundsConfig {
            horizons: vec![10_000],
            arm_counts: vec![60],
            edge_probs: vec![0.1, 0.8],
            seed: 2,
        };
        let rows = run(&cfg);
        let sparse = &rows[0];
        let dense = &rows[1];
        assert!(dense.clique_cover < sparse.clique_cover);
        assert!(dense.theorem1 < sparse.theorem1);
    }

    #[test]
    fn theorem1_is_below_moss_bound() {
        for row in run(&BoundsConfig::default()) {
            assert!(
                row.theorem1 < row.moss,
                "Theorem 1 {} should undercut MOSS {} (n={}, K={})",
                row.theorem1,
                row.moss,
                row.horizon,
                row.num_arms
            );
        }
    }

    #[test]
    fn report_renders_all_rows() {
        let rows = run(&BoundsConfig {
            horizons: vec![100],
            arm_counts: vec![10],
            edge_probs: vec![0.3],
            seed: 3,
        });
        let report = report(&rows);
        assert!(report.contains("Thm1"));
        assert!(report.contains("100"));
    }
}
