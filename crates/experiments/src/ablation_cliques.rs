//! Ablation C — clique-cover structure versus the Theorem 1 constant.
//!
//! Theorem 1's second term is `0.74 · C · sqrt(n/K)`, where `C` is the clique
//! cover of the high-gap subgraph. This ablation runs DFL-SSO on structured
//! graphs whose clique covers are known exactly — disjoint cliques (cover
//! `K / clique size`), stars (cover `K − 1`), paths (cover `≈ K/2`), the
//! complete graph (cover 1) and the edgeless graph (cover `K`) — and reports the
//! measured regret next to the bound, showing that graphs with smaller covers
//! indeed learn faster.

use serde::{Deserialize, Serialize};

use netband_core::bounds;
use netband_graph::{generators, greedy_clique_cover, RelationGraph};
use netband_sim::export::format_table;
use netband_sim::replicate::aggregate;
use netband_sim::run_spec;
use netband_sim::RunResult;
use netband_spec::{ArmsSpec, GraphSpec, PolicySpec, SideBonus, WorkloadSpec};

use crate::common::{grid_cell, Scale};

/// Configuration of the structured-graph ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CliquesConfig {
    /// Number of arms `K` (should be divisible by 4 so the disjoint-clique
    /// family tiles evenly).
    pub num_arms: usize,
    /// Horizon and replication count per graph family.
    pub scale: Scale,
    /// Base RNG seed (controls the arm means and the reward streams).
    pub base_seed: u64,
}

impl Default for CliquesConfig {
    fn default() -> Self {
        CliquesConfig {
            num_arms: 48,
            scale: Scale {
                horizon: 5_000,
                replications: 10,
            },
            base_seed: 9_001,
        }
    }
}

/// Result row for one graph family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CliquesRow {
    /// Name of the graph family.
    pub family: String,
    /// Greedy clique-cover size of the full graph.
    pub clique_cover: usize,
    /// Measured final mean cumulative regret of DFL-SSO.
    pub measured_regret: f64,
    /// Theorem 1 bound evaluated with this cover.
    pub theorem1_bound: f64,
}

fn structured_graphs(num_arms: usize) -> Vec<(String, RelationGraph)> {
    vec![
        ("complete".to_owned(), generators::complete(num_arms)),
        (
            "disjoint 4-cliques".to_owned(),
            generators::disjoint_cliques(num_arms / 4, 4),
        ),
        ("path".to_owned(), generators::path(num_arms)),
        ("star".to_owned(), generators::star(num_arms)),
        ("edgeless".to_owned(), generators::edgeless(num_arms)),
    ]
}

/// Runs the ablation. Each structured graph is declared as a
/// [`GraphSpec::Explicit`] edge list inside a scenario spec: the explicit
/// graph consumes no randomness, so the arm bank draws exactly the stream the
/// hand-wired construction drew.
pub fn run(config: &CliquesConfig) -> Vec<CliquesRow> {
    let mut rows = Vec::new();
    for (g_idx, (family, graph)) in structured_graphs(config.num_arms).into_iter().enumerate() {
        let cover = greedy_clique_cover(&graph).len();
        let edges: Vec<(usize, usize)> = graph.edges().collect();
        let mut runs: Vec<RunResult> = Vec::with_capacity(config.scale.replications);
        for rep in 0..config.scale.replications {
            let seed = config.base_seed + (g_idx * 1_000 + rep) as u64;
            let spec = grid_cell(
                format!("cliques/{family}/rep{rep}"),
                WorkloadSpec {
                    graph: GraphSpec::Explicit {
                        num_arms: config.num_arms,
                        edges: edges.clone(),
                    },
                    arms: ArmsSpec::UniformMeanBernoulli {
                        num_arms: config.num_arms,
                    },
                    family: None,
                    drift: None,
                    seed,
                },
                PolicySpec::DflSso,
                SideBonus::Observation,
                config.scale.horizon,
                seed.wrapping_mul(0x85EB_CA6B),
            );
            runs.push(run_spec(&spec).expect("cliques scenario spec is consistent"));
        }
        let avg = aggregate(&runs);
        rows.push(CliquesRow {
            family,
            clique_cover: cover,
            measured_regret: avg.final_regret_mean(),
            theorem1_bound: bounds::theorem1_dfl_sso(config.scale.horizon, config.num_arms, cover),
        });
    }
    rows
}

/// Formats the ablation as a table.
pub fn report(rows: &[CliquesRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.clique_cover.to_string(),
                format!("{:.1}", r.measured_regret),
                format!("{:.0}", r.theorem1_bound),
            ]
        })
        .collect();
    format!(
        "Ablation C — clique-cover structure vs measured DFL-SSO regret\n{}",
        format_table(
            &[
                "graph family",
                "clique cover C",
                "measured R_n",
                "Theorem 1 bound"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CliquesConfig {
        CliquesConfig {
            num_arms: 16,
            scale: Scale {
                horizon: 400,
                replications: 2,
            },
            base_seed: 90,
        }
    }

    #[test]
    fn covers_match_the_known_structure() {
        let rows = run(&quick());
        let by_name = |n: &str| rows.iter().find(|r| r.family == n).unwrap();
        assert_eq!(by_name("complete").clique_cover, 1);
        assert_eq!(by_name("disjoint 4-cliques").clique_cover, 4);
        assert_eq!(by_name("edgeless").clique_cover, 16);
        assert_eq!(by_name("star").clique_cover, 15);
    }

    #[test]
    fn measured_regret_stays_below_theorem1() {
        for row in run(&quick()) {
            assert!(
                row.measured_regret < row.theorem1_bound,
                "{}: measured {} vs bound {}",
                row.family,
                row.measured_regret,
                row.theorem1_bound
            );
        }
    }

    #[test]
    fn complete_graph_learns_faster_than_edgeless() {
        let rows = run(&quick());
        let complete = rows.iter().find(|r| r.family == "complete").unwrap();
        let edgeless = rows.iter().find(|r| r.family == "edgeless").unwrap();
        assert!(
            complete.measured_regret < edgeless.measured_regret,
            "complete {} vs edgeless {}",
            complete.measured_regret,
            edgeless.measured_regret
        );
    }

    #[test]
    fn report_lists_every_family() {
        let text = report(&run(&quick()));
        for family in ["complete", "disjoint 4-cliques", "path", "star", "edgeless"] {
            assert!(text.contains(family));
        }
    }
}
