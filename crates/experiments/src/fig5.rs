//! Figure 5 — expected regret of DFL-SSR (single-play with side reward).
//!
//! Paper setting: same 100-arm random workload as Fig. 3, but the decision maker
//! collects the entire neighbourhood's reward and regret is measured against
//! `u_1 = max_i Σ_{j ∈ N_i} μ_j` (Equation 3). The expected regret converges to
//! 0 "dramatically" (the side reward of every arm is learned from overlapping
//! neighbourhood observations).

use serde::{Deserialize, Serialize};

use netband_baselines::{Moss, RandomSingle};
use netband_core::DflSsr;
use netband_sim::export::columns_to_csv;
use netband_sim::replicate::aggregate;
use netband_sim::runner::{run_single, SingleScenario};
use netband_sim::{AveragedRun, RunResult};

use crate::common::{paper_workload, Scale};
use crate::report::{expected_regret_table, summary_line};

/// Configuration of the Fig. 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Number of arms `K` (paper: 100).
    pub num_arms: usize,
    /// Edge probability of the Erdős–Rényi relation graph.
    pub edge_prob: f64,
    /// Horizon and replication count.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Also run the no-side-information baselines (MOSS on direct rewards and
    /// uniform random play) under the SSR regret for context. The paper plots
    /// only DFL-SSR; the baselines are an extension controlled by this flag.
    pub include_baselines: bool,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            num_arms: 100,
            edge_prob: 0.3,
            scale: Scale::full(),
            base_seed: 5_001,
            include_baselines: true,
        }
    }
}

/// The averaged curves of Fig. 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// DFL-SSR (Algorithm 3).
    pub dfl_ssr: AveragedRun,
    /// Optional baselines evaluated under the same side-reward regret.
    pub baselines: Vec<AveragedRun>,
}

impl Fig5Result {
    /// `true` when the time-averaged regret decreases from early to late in the
    /// run — the "converges towards 0" check.
    pub fn regret_trends_to_zero(&self) -> bool {
        crate::common::trends_to_zero(&self.dfl_ssr.expected_regret)
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        let mut runs: Vec<&AveragedRun> = vec![&self.dfl_ssr];
        runs.extend(self.baselines.iter());
        let mut out = String::from("Figure 5 — DFL-SSR expected regret\n");
        for run in &runs {
            out.push_str(&summary_line(run));
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&expected_regret_table(&runs, 20));
        out
    }

    /// CSV of the expected-regret curves.
    pub fn csv(&self) -> String {
        let t: Vec<f64> = (1..=self.dfl_ssr.horizon).map(|x| x as f64).collect();
        let mut columns: Vec<(&str, &[f64])> = vec![
            ("t", &t),
            ("dfl_ssr_expected", &self.dfl_ssr.expected_regret),
            ("dfl_ssr_accumulated", &self.dfl_ssr.accumulated_regret),
        ];
        for baseline in &self.baselines {
            columns.push((baseline.policy.as_str(), &baseline.expected_regret));
        }
        // Column names borrow from `self`, so build the CSV before returning.
        columns_to_csv(&columns)
    }
}

/// Runs the Fig. 5 experiment.
pub fn run(config: &Fig5Config) -> Fig5Result {
    let mut dfl_runs: Vec<RunResult> = Vec::with_capacity(config.scale.replications);
    let mut moss_runs: Vec<RunResult> = Vec::new();
    let mut random_runs: Vec<RunResult> = Vec::new();
    for rep in 0..config.scale.replications {
        let seed = config.base_seed + rep as u64;
        let bandit = paper_workload(config.num_arms, config.edge_prob, seed);
        let run_seed = seed.wrapping_mul(0xA24B_AED4);
        let mut dfl = DflSsr::new(bandit.graph().clone());
        dfl_runs.push(run_single(
            &bandit,
            &mut dfl,
            SingleScenario::SideReward,
            config.scale.horizon,
            run_seed,
        ));
        if config.include_baselines {
            let mut moss = Moss::new(config.num_arms);
            moss_runs.push(run_single(
                &bandit,
                &mut moss,
                SingleScenario::SideReward,
                config.scale.horizon,
                run_seed,
            ));
            let mut random = RandomSingle::new(config.num_arms, seed);
            random_runs.push(run_single(
                &bandit,
                &mut random,
                SingleScenario::SideReward,
                config.scale.horizon,
                run_seed,
            ));
        }
    }
    let mut baselines = Vec::new();
    if config.include_baselines {
        baselines.push(aggregate(&moss_runs));
        baselines.push(aggregate(&random_runs));
    }
    Fig5Result {
        dfl_ssr: aggregate(&dfl_runs),
        baselines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Fig5Config {
        Fig5Config {
            num_arms: 20,
            edge_prob: 0.3,
            scale: Scale {
                horizon: 600,
                replications: 2,
            },
            base_seed: 31,
            include_baselines: true,
        }
    }

    #[test]
    fn fig5_regret_trends_to_zero() {
        let result = run(&quick_config());
        assert!(result.regret_trends_to_zero());
    }

    #[test]
    fn fig5_dfl_ssr_beats_a_policy_that_ignores_the_side_reward_objective() {
        let result = run(&quick_config());
        // MOSS optimises the direct reward, so under the SSR regret it should do
        // worse than DFL-SSR (which learns the neighbourhood sums).
        let moss = result
            .baselines
            .iter()
            .find(|b| b.policy == "MOSS")
            .expect("baselines requested");
        assert!(
            result.dfl_ssr.final_regret_mean() < moss.final_regret_mean(),
            "DFL-SSR {} vs MOSS {}",
            result.dfl_ssr.final_regret_mean(),
            moss.final_regret_mean()
        );
    }

    #[test]
    fn fig5_without_baselines_is_lighter() {
        let result = run(&Fig5Config {
            include_baselines: false,
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            num_arms: 10,
            ..quick_config()
        });
        assert!(result.baselines.is_empty());
        assert!(result.report().contains("Figure 5"));
        assert!(result.csv().starts_with("t,dfl_ssr_expected"));
    }

    #[test]
    fn fig5_is_deterministic() {
        let cfg = Fig5Config {
            num_arms: 10,
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            ..quick_config()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn default_matches_paper_scale() {
        let cfg = Fig5Config::default();
        assert_eq!(cfg.num_arms, 100);
        assert_eq!(cfg.scale.horizon, 10_000);
    }
}
