//! Figure 5 — expected regret of DFL-SSR (single-play with side reward).
//!
//! Paper setting: same 100-arm random workload as Fig. 3, but the decision maker
//! collects the entire neighbourhood's reward and regret is measured against
//! `u_1 = max_i Σ_{j ∈ N_i} μ_j` (Equation 3). The expected regret converges to
//! 0 "dramatically" (the side reward of every arm is learned from overlapping
//! neighbourhood observations).

use serde::{Deserialize, Serialize};

use netband_sim::export::columns_to_csv;
use netband_sim::replicate::aggregate;
use netband_sim::run_spec;
use netband_sim::{AveragedRun, RunResult};
use netband_spec::{PolicySpec, ScenarioSpec, SideBonus};

use crate::common::{grid_cell, paper_workload_spec, Scale};
use crate::report::{expected_regret_table, summary_line};

/// Configuration of the Fig. 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Number of arms `K` (paper: 100).
    pub num_arms: usize,
    /// Edge probability of the Erdős–Rényi relation graph.
    pub edge_prob: f64,
    /// Horizon and replication count.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Also run the no-side-information baselines (MOSS on direct rewards and
    /// uniform random play) under the SSR regret for context. The paper plots
    /// only DFL-SSR; the baselines are an extension controlled by this flag.
    pub include_baselines: bool,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            num_arms: 100,
            edge_prob: 0.3,
            scale: Scale::full(),
            base_seed: 5_001,
            include_baselines: true,
        }
    }
}

/// The averaged curves of Fig. 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// DFL-SSR (Algorithm 3).
    pub dfl_ssr: AveragedRun,
    /// Optional baselines evaluated under the same side-reward regret.
    pub baselines: Vec<AveragedRun>,
}

impl Fig5Result {
    /// `true` when the time-averaged regret decreases from early to late in the
    /// run — the "converges towards 0" check.
    pub fn regret_trends_to_zero(&self) -> bool {
        crate::common::trends_to_zero(&self.dfl_ssr.expected_regret)
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        let mut runs: Vec<&AveragedRun> = vec![&self.dfl_ssr];
        runs.extend(self.baselines.iter());
        let mut out = String::from("Figure 5 — DFL-SSR expected regret\n");
        for run in &runs {
            out.push_str(&summary_line(run));
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&expected_regret_table(&runs, 20));
        out
    }

    /// CSV of the expected-regret curves.
    pub fn csv(&self) -> String {
        let t: Vec<f64> = (1..=self.dfl_ssr.horizon).map(|x| x as f64).collect();
        let mut columns: Vec<(&str, &[f64])> = vec![
            ("t", &t),
            ("dfl_ssr_expected", &self.dfl_ssr.expected_regret),
            ("dfl_ssr_accumulated", &self.dfl_ssr.accumulated_regret),
        ];
        for baseline in &self.baselines {
            columns.push((baseline.policy.as_str(), &baseline.expected_regret));
        }
        // Column names borrow from `self`, so build the CSV before returning.
        columns_to_csv(&columns)
    }
}

impl Fig5Config {
    /// The declarative grid of one replication: DFL-SSR first, then (when
    /// baselines are enabled) MOSS and uniform random play, all under the SSR
    /// regret on the same workload document and run seed.
    pub fn replication_specs(&self, rep: usize) -> Vec<ScenarioSpec> {
        let seed = self.base_seed + rep as u64;
        let workload = paper_workload_spec(self.num_arms, self.edge_prob, seed);
        let run_seed = seed.wrapping_mul(0xA24B_AED4);
        let mut policies = vec![("dfl-ssr", PolicySpec::DflSsr)];
        if self.include_baselines {
            policies.push(("moss", PolicySpec::Moss { horizon: None }));
            policies.push(("random", PolicySpec::RandomSingle { seed }));
        }
        policies
            .into_iter()
            .map(|(name, policy)| {
                grid_cell(
                    format!("fig5/{name}/rep{rep}"),
                    workload.clone(),
                    policy,
                    SideBonus::Reward,
                    self.scale.horizon,
                    run_seed,
                )
            })
            .collect()
    }
}

/// Runs the Fig. 5 experiment: every grid cell is a [`ScenarioSpec`] driven
/// through [`run_spec`].
pub fn run(config: &Fig5Config) -> Fig5Result {
    let mut per_policy: Vec<Vec<RunResult>> = Vec::new();
    for rep in 0..config.scale.replications {
        let specs = config.replication_specs(rep);
        if per_policy.is_empty() {
            per_policy = specs.iter().map(|_| Vec::new()).collect();
        }
        for (idx, spec) in specs.iter().enumerate() {
            per_policy[idx].push(run_spec(spec).expect("fig5 scenario spec is consistent"));
        }
    }
    let mut aggregates = per_policy.iter().map(|runs| aggregate(runs));
    let dfl_ssr = aggregates.next().expect("DFL-SSR is always in the grid");
    Fig5Result {
        dfl_ssr,
        baselines: aggregates.collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Fig5Config {
        Fig5Config {
            num_arms: 20,
            edge_prob: 0.3,
            scale: Scale {
                horizon: 600,
                replications: 2,
            },
            base_seed: 31,
            include_baselines: true,
        }
    }

    #[test]
    fn fig5_regret_trends_to_zero() {
        let result = run(&quick_config());
        assert!(result.regret_trends_to_zero());
    }

    #[test]
    fn fig5_dfl_ssr_beats_a_policy_that_ignores_the_side_reward_objective() {
        let result = run(&quick_config());
        // MOSS optimises the direct reward, so under the SSR regret it should do
        // worse than DFL-SSR (which learns the neighbourhood sums).
        let moss = result
            .baselines
            .iter()
            .find(|b| b.policy == "MOSS")
            .expect("baselines requested");
        assert!(
            result.dfl_ssr.final_regret_mean() < moss.final_regret_mean(),
            "DFL-SSR {} vs MOSS {}",
            result.dfl_ssr.final_regret_mean(),
            moss.final_regret_mean()
        );
    }

    #[test]
    fn fig5_without_baselines_is_lighter() {
        let result = run(&Fig5Config {
            include_baselines: false,
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            num_arms: 10,
            ..quick_config()
        });
        assert!(result.baselines.is_empty());
        assert!(result.report().contains("Figure 5"));
        assert!(result.csv().starts_with("t,dfl_ssr_expected"));
    }

    #[test]
    fn fig5_is_deterministic() {
        let cfg = Fig5Config {
            num_arms: 10,
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            ..quick_config()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn default_matches_paper_scale() {
        let cfg = Fig5Config::default();
        assert_eq!(cfg.num_arms, 100);
        assert_eq!(cfg.scale.horizon, 10_000);
    }
}
