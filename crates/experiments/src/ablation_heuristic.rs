//! Ablation D — the paper's Section IX future-work heuristic.
//!
//! The conclusion of the paper proposes playing, instead of the arm with the
//! maximum index, the arm with the maximum empirical mean among the selected
//! arm's neighbours. [`netband_core::heuristics`] implements that redirection
//! (guarded so it never cancels forced exploration); this ablation measures how
//! much it changes the regret of DFL-SSO and DFL-SSR on the paper's random
//! workload, across graph densities.

use serde::{Deserialize, Serialize};

use netband_sim::export::format_table;
use netband_sim::replicate::aggregate;
use netband_sim::run_spec;
use netband_sim::runner::{run_single_coupled, SingleScenario};
use netband_sim::RunResult;
use netband_spec::{PolicySpec, SideBonus};

use crate::common::{build_single_panel, grid_cell, paper_workload, paper_workload_spec, Scale};

/// Configuration of the heuristic ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicConfig {
    /// Number of arms `K`.
    pub num_arms: usize,
    /// Edge probabilities to evaluate.
    pub densities: Vec<f64>,
    /// Horizon and replication count per density.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            num_arms: 50,
            densities: vec![0.1, 0.3, 0.6],
            scale: Scale {
                horizon: 5_000,
                replications: 10,
            },
            base_seed: 10_001,
        }
    }
}

/// Result row: base vs heuristic regret for both single-play scenarios at one
/// density.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicRow {
    /// Edge probability of the relation graph.
    pub density: f64,
    /// Final mean cumulative regret of plain DFL-SSO.
    pub sso_base: f64,
    /// Final mean cumulative regret of DFL-SSO with the greedy-neighbour
    /// redirection.
    pub sso_heuristic: f64,
    /// Final mean cumulative regret of plain DFL-SSR.
    pub ssr_base: f64,
    /// Final mean cumulative regret of DFL-SSR with the redirection.
    pub ssr_heuristic: f64,
}

impl HeuristicRow {
    /// Relative change of the SSO regret (`< 0` means the heuristic helped).
    pub fn sso_relative_change(&self) -> f64 {
        if self.sso_base.abs() < 1e-12 {
            0.0
        } else {
            (self.sso_heuristic - self.sso_base) / self.sso_base
        }
    }
}

/// Runs the ablation.
pub fn run(config: &HeuristicConfig) -> Vec<HeuristicRow> {
    let mut rows = Vec::with_capacity(config.densities.len());
    for (d_idx, &density) in config.densities.iter().enumerate() {
        let mut sso_base: Vec<RunResult> = Vec::new();
        let mut sso_heur: Vec<RunResult> = Vec::new();
        let mut ssr_base: Vec<RunResult> = Vec::new();
        let mut ssr_heur: Vec<RunResult> = Vec::new();
        for rep in 0..config.scale.replications {
            let seed = config.base_seed + (d_idx * 1_000 + rep) as u64;
            let bandit = paper_workload(config.num_arms, density, seed);
            let run_seed = seed.wrapping_mul(0x9E37_79B9);
            // SSO pair on a coupled sample path, declared as PolicySpecs.
            let mut panel = build_single_panel(
                &[PolicySpec::DflSso, PolicySpec::DflSsoGreedyNeighbor],
                &bandit,
            );
            let mut refs: Vec<&mut dyn netband_core::SinglePlayPolicy> = panel
                .iter_mut()
                .map(|p| p.as_single_mut().expect("single panel"))
                .collect();
            let mut results = run_single_coupled(
                &bandit,
                &mut refs,
                SingleScenario::SideObservation,
                config.scale.horizon,
                run_seed,
            );
            sso_heur.push(results.pop().expect("two results"));
            sso_base.push(results.pop().expect("two results"));
            // SSR pair (independent spec-driven runs; coupling is less
            // meaningful because the two policies visit different
            // neighbourhoods).
            let workload = paper_workload_spec(config.num_arms, density, seed);
            for (policy, runs) in [
                (PolicySpec::DflSsr, &mut ssr_base),
                (PolicySpec::DflSsrGreedyNeighbor, &mut ssr_heur),
            ] {
                let spec = grid_cell(
                    format!("heuristic/{policy:?}/p{density}/rep{rep}"),
                    workload.clone(),
                    policy,
                    SideBonus::Reward,
                    config.scale.horizon,
                    run_seed,
                );
                runs.push(run_spec(&spec).expect("heuristic scenario spec is consistent"));
            }
        }
        rows.push(HeuristicRow {
            density,
            sso_base: aggregate(&sso_base).final_regret_mean(),
            sso_heuristic: aggregate(&sso_heur).final_regret_mean(),
            ssr_base: aggregate(&ssr_base).final_regret_mean(),
            ssr_heuristic: aggregate(&ssr_heur).final_regret_mean(),
        });
    }
    rows
}

/// Formats the ablation as a table.
pub fn report(rows: &[HeuristicRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.density),
                format!("{:.1}", r.sso_base),
                format!("{:.1}", r.sso_heuristic),
                format!("{:+.1}%", 100.0 * r.sso_relative_change()),
                format!("{:.1}", r.ssr_base),
                format!("{:.1}", r.ssr_heuristic),
            ]
        })
        .collect();
    format!(
        "Ablation D — Section IX greedy-neighbour redirection (final R_n, means over replications)\n{}",
        format_table(
            &[
                "edge prob",
                "DFL-SSO",
                "DFL-SSO+GN",
                "SSO change",
                "DFL-SSR",
                "DFL-SSR+GN"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HeuristicConfig {
        HeuristicConfig {
            num_arms: 15,
            densities: vec![0.4],
            scale: Scale {
                horizon: 800,
                replications: 2,
            },
            base_seed: 100,
        }
    }

    #[test]
    fn heuristic_stays_in_the_same_ballpark_as_the_base_policy() {
        // The paper conjectures the redirection helps; at minimum it must not
        // blow the regret up by an order of magnitude on either scenario.
        let rows = run(&quick());
        let row = &rows[0];
        assert!(
            row.sso_heuristic < 5.0 * row.sso_base + 10.0,
            "SSO heuristic {} vs base {}",
            row.sso_heuristic,
            row.sso_base
        );
        assert!(
            row.ssr_heuristic < 5.0 * row.ssr_base + 10.0,
            "SSR heuristic {} vs base {}",
            row.ssr_heuristic,
            row.ssr_base
        );
        assert!(row.sso_base > 0.0 && row.ssr_base > 0.0);
    }

    #[test]
    fn report_renders_all_columns() {
        let rows = run(&quick());
        let text = report(&rows);
        assert!(text.contains("DFL-SSO+GN"));
        assert!(text.contains("DFL-SSR+GN"));
        assert!(text.contains("0.40"));
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = quick();
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn relative_change_handles_zero_base() {
        let row = HeuristicRow {
            density: 0.5,
            sso_base: 0.0,
            sso_heuristic: 1.0,
            ssr_base: 1.0,
            ssr_heuristic: 1.0,
        };
        assert_eq!(row.sso_relative_change(), 0.0);
    }
}
