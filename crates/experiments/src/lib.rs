//! Experiment harness reproducing the evaluation section of *Networked
//! Stochastic Multi-Armed Bandits with Combinatorial Strategies* (Tang & Zhou,
//! ICDCS 2017).
//!
//! The paper's evaluation (Section VII) consists of four figures; there are no
//! numeric result tables (Table I is a notation glossary). Each figure has a
//! module, a binary, and a Criterion bench:
//!
//! | Experiment | Module | Binary | What it shows |
//! |---|---|---|---|
//! | Fig. 3(a)/(b) | [`fig3`] | `fig3` | MOSS vs DFL-SSO, expected and accumulated regret |
//! | Fig. 4(a)/(b) | [`fig4`] | `fig4` | DFL-CSO on sparse (p=0.3) vs dense (p=0.6) relation graphs |
//! | Fig. 5 | [`fig5`] | `fig5` | DFL-SSR expected regret → 0 |
//! | Fig. 6 | [`fig6`] | `fig6` | DFL-CSR expected regret → 0 |
//! | Theorems 1–4 | [`bounds_exp`] | `bounds` | closed-form bounds vs graph structure |
//! | Ablation A | [`ablation_density`] | `ablation_density` | regret vs relation-graph density |
//! | Ablation B | [`ablation_baselines`] | `ablation_baselines` | DFL-SSO vs the baseline zoo |
//! | Ablation C | [`ablation_cliques`] | `ablation_cliques` | clique-cover structure vs measured regret |
//! | Drift | [`drift_exp`] | `drift` | stationary vs forgetting policies across a change point |
//!
//! Every binary accepts `--quick` (or `NETBAND_QUICK=1`) to run at smoke-test
//! scale; the default matches the paper's horizon of 10 000 slots. Results are
//! printed as fixed-width tables and, where applicable, written as CSV under
//! `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation_baselines;
pub mod ablation_cliques;
pub mod ablation_density;
pub mod ablation_heuristic;
pub mod ablation_horizon;
pub mod bounds_exp;
pub mod common;
pub mod drift_exp;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod report;

pub use common::Scale;
