//! Figure 4 — DFL-CSO under sparse and dense relation graphs.
//!
//! Paper setting (Section VII): combinatorial play with side observation, arms
//! "uniformly and randomly connected" with probability 0.3 (Fig. 4(a), sparse)
//! and 0.6 (Fig. 4(b), dense). The qualitative claim: with a denser relation
//! graph the decision maker observes more com-arms per pull, so the expected
//! regret approaches 0 faster / sits lower than in the sparse case.
//!
//! The paper does not state the number of arms used for this figure; the
//! feasible set must stay enumerable for Algorithm 2 (one estimator per
//! com-arm), so we default to 14 arms with independent sets of size ≤ 2 as the
//! feasible family — the same constraint structure as the paper's Fig. 2
//! example.

use serde::{Deserialize, Serialize};

use netband_env::feasible::FeasibleSet;
use netband_sim::export::columns_to_csv;
use netband_sim::replicate::aggregate;
use netband_sim::run_built;
use netband_sim::{AveragedRun, RunResult};
use netband_spec::{FamilySpec, PolicySpec, ScenarioSpec, SideBonus, WorkloadSpec};

use crate::common::{grid_cell, paper_workload_spec, Scale};
use crate::report::{expected_regret_table, summary_line};

/// Configuration of the Fig. 4 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Number of arms `K`.
    pub num_arms: usize,
    /// Edge probability of the sparse graph (Fig. 4(a), paper: 0.3).
    pub sparse_prob: f64,
    /// Edge probability of the dense graph (Fig. 4(b), paper: 0.6).
    pub dense_prob: f64,
    /// Maximum strategy size `M` of the independent-set feasible family.
    pub max_strategy_size: usize,
    /// Horizon and replication count.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            num_arms: 14,
            sparse_prob: 0.3,
            dense_prob: 0.6,
            max_strategy_size: 2,
            scale: Scale::full(),
            base_seed: 4_001,
        }
    }
}

/// The two averaged curves of Fig. 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// DFL-CSO on the sparse graph (Fig. 4(a)).
    pub sparse: AveragedRun,
    /// DFL-CSO on the dense graph (Fig. 4(b)).
    pub dense: AveragedRun,
    /// Average number of com-arms `|F|` per replication (sparse, dense).
    pub avg_num_strategies: (f64, f64),
}

impl Fig4Result {
    /// `true` when the dense graph yields lower final expected regret than the
    /// sparse graph — the paper's qualitative claim.
    pub fn dense_beats_sparse(&self) -> bool {
        self.dense.final_expected_regret() <= self.sparse.final_expected_regret()
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        format!(
            "Figure 4 — DFL-CSO, sparse vs dense relation graphs\n{}\n{}\n|F| ≈ {:.1} (sparse), {:.1} (dense)\n\n{}",
            summary_line(&self.sparse),
            summary_line(&self.dense),
            self.avg_num_strategies.0,
            self.avg_num_strategies.1,
            expected_regret_table(&[&self.sparse, &self.dense], 20),
        )
    }

    /// CSV of both expected-regret curves.
    pub fn csv(&self) -> String {
        let t: Vec<f64> = (1..=self.sparse.horizon).map(|x| x as f64).collect();
        columns_to_csv(&[
            ("t", &t),
            ("sparse_expected", &self.sparse.expected_regret),
            ("dense_expected", &self.dense.expected_regret),
            ("sparse_accumulated", &self.sparse.accumulated_regret),
            ("dense_accumulated", &self.dense.accumulated_regret),
        ])
    }
}

impl Fig4Config {
    /// The declarative grid cell of one `(density, replication)` pair:
    /// DFL-CSO over the paper workload with a bounded independent-set family.
    pub fn replication_spec(&self, edge_prob: f64, seed_offset: u64, rep: usize) -> ScenarioSpec {
        let seed = self.base_seed + seed_offset + rep as u64;
        let workload = WorkloadSpec {
            family: Some(FamilySpec::IndependentSets {
                max_size: self.max_strategy_size,
            }),
            ..paper_workload_spec(self.num_arms, edge_prob, seed)
        };
        grid_cell(
            format!("fig4/dfl-cso/p{edge_prob}/rep{rep}"),
            workload,
            PolicySpec::DflCso,
            SideBonus::Observation,
            self.scale.horizon,
            seed.wrapping_mul(0x517C_C1B7),
        )
    }
}

fn run_density(config: &Fig4Config, edge_prob: f64, seed_offset: u64) -> (AveragedRun, f64) {
    let mut runs: Vec<RunResult> = Vec::with_capacity(config.scale.replications);
    let mut strategy_counts = 0usize;
    for rep in 0..config.scale.replications {
        let spec = config.replication_spec(edge_prob, seed_offset, rep);
        let mut built = spec.build().expect("fig4 scenario spec is consistent");
        // Regret is charged against the same feasible set the policy uses; the
        // |F| statistic comes from the spec-built family.
        strategy_counts += built
            .family
            .as_ref()
            .expect("fig4 scenarios are combinatorial")
            .enumerate(built.bandit.graph())
            .expect("independent sets of bounded size are enumerable at this scale")
            .len();
        runs.push(run_built(&mut built).expect("DFL-CSO only proposes feasible strategies"));
    }
    (
        aggregate(&runs),
        strategy_counts as f64 / config.scale.replications.max(1) as f64,
    )
}

/// Runs the Fig. 4 experiment (both densities).
pub fn run(config: &Fig4Config) -> Fig4Result {
    let (sparse, sparse_f) = run_density(config, config.sparse_prob, 0);
    let (dense, dense_f) = run_density(config, config.dense_prob, 10_000);
    Fig4Result {
        sparse,
        dense,
        avg_num_strategies: (sparse_f, dense_f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Fig4Config {
        Fig4Config {
            num_arms: 10,
            sparse_prob: 0.3,
            dense_prob: 0.6,
            max_strategy_size: 2,
            scale: Scale {
                horizon: 500,
                replications: 2,
            },
            base_seed: 21,
        }
    }

    #[test]
    fn fig4_runs_and_regret_trends_to_zero() {
        let result = run(&quick_config());
        // Expected regret decreases over time for both densities.
        for curve in [
            &result.sparse.expected_regret,
            &result.dense.expected_regret,
        ] {
            let early = curve[curve.len() / 10];
            let late = *curve.last().unwrap();
            assert!(late < early, "early {early} late {late}");
        }
    }

    #[test]
    fn fig4_dense_graph_has_fewer_feasible_strategies() {
        // Denser relation graphs admit fewer independent sets.
        let result = run(&quick_config());
        assert!(
            result.avg_num_strategies.1 <= result.avg_num_strategies.0,
            "dense |F| {} should not exceed sparse |F| {}",
            result.avg_num_strategies.1,
            result.avg_num_strategies.0
        );
    }

    #[test]
    fn fig4_report_and_csv_render() {
        let result = run(&Fig4Config {
            num_arms: 8,
            scale: Scale {
                horizon: 120,
                replications: 2,
            },
            ..quick_config()
        });
        assert!(result.report().contains("Figure 4"));
        let csv = result.csv();
        assert!(csv.starts_with("t,sparse_expected"));
        assert_eq!(csv.lines().count(), 121);
    }

    #[test]
    fn fig4_is_deterministic() {
        let cfg = Fig4Config {
            num_arms: 8,
            scale: Scale {
                horizon: 100,
                replications: 2,
            },
            ..quick_config()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn default_config_matches_the_paper_densities() {
        let cfg = Fig4Config::default();
        assert_eq!(cfg.sparse_prob, 0.3);
        assert_eq!(cfg.dense_prob, 0.6);
    }
}
