//! Ablation B — DFL-SSO against the wider single-play baseline zoo.
//!
//! The paper only compares against MOSS; this extension pits DFL-SSO against
//! UCB1, UCB-Tuned, Thompson sampling, ε-greedy, EXP3 and uniform random play on
//! the same coupled sample paths, across several arm counts. It quantifies how
//! much of DFL-SSO's advantage comes from side observation rather than from the
//! MOSS-style index itself.

use serde::{Deserialize, Serialize};

use netband_core::SinglePlayPolicy;
use netband_sim::export::format_table;
use netband_sim::replicate::aggregate;
use netband_sim::runner::{run_single_coupled, SingleScenario};
use netband_sim::RunResult;
use netband_spec::PolicySpec;

use crate::common::{build_single_panel, paper_workload, Scale};

/// Configuration of the baseline comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselinesConfig {
    /// Arm counts to evaluate.
    pub arm_counts: Vec<usize>,
    /// Edge probability of the relation graph.
    pub edge_prob: f64,
    /// Horizon and replication count per arm count.
    pub scale: Scale,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for BaselinesConfig {
    fn default() -> Self {
        BaselinesConfig {
            arm_counts: vec![20, 50, 100],
            edge_prob: 0.3,
            scale: Scale {
                horizon: 5_000,
                replications: 10,
            },
            base_seed: 8_001,
        }
    }
}

/// Final mean cumulative regret of every policy at one arm count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselinesRow {
    /// Number of arms `K`.
    pub num_arms: usize,
    /// `(policy name, final mean cumulative regret)`, in run order.
    pub regrets: Vec<(String, f64)>,
}

impl BaselinesRow {
    /// The policy with the lowest final regret in this row.
    pub fn winner(&self) -> &str {
        self.regrets
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(name, _)| name.as_str())
            .unwrap_or("")
    }

    /// The regret of a named policy, if present.
    pub fn regret_of(&self, name: &str) -> Option<f64> {
        self.regrets
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
    }
}

/// The declarative policy zoo of one replication: DFL-SSO plus every
/// single-play baseline, as [`PolicySpec`]s (this is the grid the comparison
/// runs, in run order).
pub fn policy_zoo(seed: u64) -> Vec<PolicySpec> {
    vec![
        PolicySpec::DflSso,
        PolicySpec::Moss { horizon: None },
        PolicySpec::Ucb1,
        PolicySpec::UcbTuned,
        PolicySpec::ThompsonBernoulli { seed },
        PolicySpec::DecayingEpsilonGreedy { c: 5.0, seed },
        PolicySpec::Exp3 { gamma: 0.05, seed },
        PolicySpec::RandomSingle { seed },
    ]
}

/// Runs the comparison.
pub fn run(config: &BaselinesConfig) -> Vec<BaselinesRow> {
    let mut rows = Vec::with_capacity(config.arm_counts.len());
    for (k_idx, &num_arms) in config.arm_counts.iter().enumerate() {
        // One Vec<RunResult> per policy, indexed in construction order.
        let mut per_policy: Vec<Vec<RunResult>> = Vec::new();
        for rep in 0..config.scale.replications {
            let seed = config.base_seed + (k_idx * 1_000 + rep) as u64;
            let bandit = paper_workload(num_arms, config.edge_prob, seed);
            let mut panel = build_single_panel(&policy_zoo(seed), &bandit);
            let mut policies: Vec<&mut dyn SinglePlayPolicy> = panel
                .iter_mut()
                .map(|p| p.as_single_mut().expect("the zoo is single-play"))
                .collect();
            let results = run_single_coupled(
                &bandit,
                &mut policies,
                SingleScenario::SideObservation,
                config.scale.horizon,
                seed.wrapping_mul(0x1656_67B1),
            );
            if per_policy.is_empty() {
                per_policy = results.iter().map(|_| Vec::new()).collect();
            }
            for (idx, result) in results.into_iter().enumerate() {
                per_policy[idx].push(result);
            }
        }
        let regrets = per_policy
            .iter()
            .map(|runs| {
                let avg = aggregate(runs);
                (avg.policy.clone(), avg.final_regret_mean())
            })
            .collect();
        rows.push(BaselinesRow { num_arms, regrets });
    }
    rows
}

/// Formats the comparison as a table (one row per arm count, one column per
/// policy).
pub fn report(rows: &[BaselinesRow]) -> String {
    if rows.is_empty() {
        return "Ablation B — no rows".to_owned();
    }
    let mut headers: Vec<String> = vec!["K".to_owned()];
    headers.extend(rows[0].regrets.iter().map(|(name, _)| name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let mut cells = vec![row.num_arms.to_string()];
            cells.extend(row.regrets.iter().map(|(_, r)| format!("{r:.1}")));
            cells
        })
        .collect();
    format!(
        "Ablation B — final cumulative regret R_n by policy (side-observation scenario)\n{}",
        format_table(&header_refs, &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BaselinesConfig {
        BaselinesConfig {
            arm_counts: vec![15],
            edge_prob: 0.4,
            scale: Scale {
                horizon: 500,
                replications: 2,
            },
            base_seed: 80,
        }
    }

    #[test]
    fn dfl_sso_beats_every_side_information_blind_baseline() {
        // At smoke-test scale (500 slots, 2 replications) a lucky randomized
        // baseline can land within noise of DFL-SSO, so the comparison allows a
        // 15% margin; the index-based baselines must still be strictly beaten.
        let rows = run(&quick());
        let row = &rows[0];
        let dfl = row.regret_of("DFL-SSO").unwrap();
        for name in ["MOSS", "UCB1", "UCB-Tuned", "EXP3", "Random"] {
            let regret = row.regret_of(name).unwrap();
            assert!(
                dfl < regret,
                "DFL-SSO ({dfl}) should beat {name} ({regret})"
            );
        }
        for (name, regret) in &row.regrets {
            if name != "DFL-SSO" {
                assert!(
                    dfl <= regret * 1.15 + 1e-9,
                    "DFL-SSO ({dfl}) should be within 15% of {name} ({regret})"
                );
            }
        }
    }

    #[test]
    fn every_learning_policy_beats_random() {
        let rows = run(&quick());
        let row = &rows[0];
        let random = row.regret_of("Random").unwrap();
        for name in ["DFL-SSO", "MOSS", "UCB1", "Thompson"] {
            let r = row.regret_of(name).unwrap();
            assert!(r < random, "{name} ({r}) should beat Random ({random})");
        }
    }

    #[test]
    fn report_contains_all_policies() {
        let rows = run(&quick());
        let text = report(&rows);
        for name in [
            "DFL-SSO",
            "MOSS",
            "UCB1",
            "UCB-Tuned",
            "Thompson",
            "EpsilonGreedy",
            "EXP3",
            "Random",
        ] {
            assert!(text.contains(name), "missing {name} in report:\n{text}");
        }
        assert!(report(&[]).contains("no rows"));
    }
}
