//! Durable-state round trips for every policy in `netband-core` and
//! `netband-baselines`.
//!
//! The contract under test is the one the serving layer's crash recovery
//! relies on: run a policy for a warmup, capture `save_state`, load it into a
//! freshly built twin of the same structure, and the twin must continue the
//! decision stream **bit-identically** — same selections, and (for randomised
//! policies) the same RNG draws. A re-save of the loaded state must also
//! reproduce the captured bag exactly, which is what makes snapshot
//! compaction idempotent on disk.

use netband_baselines::{
    CombEpsilonGreedy, Cucb, EpsilonGreedy, Exp3, KlUcb, Llr, Moss, NaiveComArmMoss,
    RandomCombinatorial, RandomSingle, Softmax, ThompsonBernoulli, Ucb1, UcbTuned, UcbV,
};
use netband_core::prelude::*;
use netband_env::feasible::FeasibleSet;
use netband_env::{ArmSet, NetworkedBandit, StrategyFamily};
use netband_graph::{generators, RelationGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WARMUP: usize = 60;
const CONTINUE: usize = 100;
const NUM_ARMS: usize = 8;

fn bandit() -> (RelationGraph, NetworkedBandit) {
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generators::erdos_renyi(NUM_ARMS, 0.35, &mut rng);
    let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(NUM_ARMS)).unwrap();
    (graph, bandit)
}

/// Warm up `policy`, capture its state into a fresh `twin`, and check the two
/// continue identically.
fn roundtrip_single<P: SinglePlayPolicy>(mut policy: P, mut twin: P) {
    let (_, bandit) = bandit();
    let mut rng = StdRng::seed_from_u64(1007);
    for t in 1..=WARMUP {
        let arm = policy.select_arm(t);
        let fb = bandit.pull_single(arm, &mut rng);
        policy.update(t, &fb);
    }
    let state = policy
        .save_state()
        .expect("every shipped policy supports durable state");
    twin.load_state(&state)
        .expect("state must fit a fresh twin");
    assert_eq!(
        twin.save_state().expect("twin supports durable state"),
        state,
        "{}: re-saving loaded state must be lossless",
        policy.name()
    );
    let mut twin_rng = rng.clone();
    for t in WARMUP + 1..=WARMUP + CONTINUE {
        let a = policy.select_arm(t);
        let b = twin.select_arm(t);
        assert_eq!(a, b, "{} diverged at t={t}", policy.name());
        let fb_a = bandit.pull_single(a, &mut rng);
        let fb_b = bandit.pull_single(b, &mut twin_rng);
        assert_eq!(fb_a.direct_reward.to_bits(), fb_b.direct_reward.to_bits());
        policy.update(t, &fb_a);
        twin.update(t, &fb_b);
    }
}

/// Combinatorial analogue of [`roundtrip_single`].
fn roundtrip_combinatorial<P: CombinatorialPolicy>(mut policy: P, mut twin: P) {
    let (_, bandit) = bandit();
    let mut rng = StdRng::seed_from_u64(1007);
    for t in 1..=WARMUP {
        let s = policy.select_strategy(t);
        let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
        policy.update(t, &fb);
    }
    let state = policy
        .save_state()
        .expect("every shipped policy supports durable state");
    twin.load_state(&state)
        .expect("state must fit a fresh twin");
    assert_eq!(
        twin.save_state().expect("twin supports durable state"),
        state,
        "{}: re-saving loaded state must be lossless",
        policy.name()
    );
    let mut twin_rng = rng.clone();
    for t in WARMUP + 1..=WARMUP + CONTINUE {
        let a = policy.select_strategy(t);
        let b = twin.select_strategy(t);
        assert_eq!(a, b, "{} diverged at t={t}", policy.name());
        let fb_a = bandit.pull_strategy(&a, &mut rng).unwrap();
        let fb_b = bandit.pull_strategy(&b, &mut twin_rng).unwrap();
        assert_eq!(fb_a.direct_reward.to_bits(), fb_b.direct_reward.to_bits());
        policy.update(t, &fb_a);
        twin.update(t, &fb_b);
    }
}

#[test]
fn dfl_sso_round_trips() {
    let (graph, _) = bandit();
    roundtrip_single(DflSso::new(graph.clone()), DflSso::new(graph));
}

#[test]
fn dfl_ssr_round_trips() {
    let (graph, _) = bandit();
    roundtrip_single(DflSsr::new(graph.clone()), DflSsr::new(graph));
}

#[test]
fn dfl_greedy_neighbor_heuristics_round_trip() {
    let (graph, _) = bandit();
    roundtrip_single(
        DflSsoGreedyNeighbor::new(graph.clone()),
        DflSsoGreedyNeighbor::new(graph.clone()),
    );
    roundtrip_single(
        DflSsrGreedyNeighbor::new(graph.clone()),
        DflSsrGreedyNeighbor::new(graph),
    );
}

#[test]
fn moss_variants_round_trip() {
    roundtrip_single(Moss::new(NUM_ARMS), Moss::new(NUM_ARMS));
    roundtrip_single(
        Moss::with_horizon(NUM_ARMS, 500),
        Moss::with_horizon(NUM_ARMS, 500),
    );
}

#[test]
fn klucb_round_trips() {
    roundtrip_single(KlUcb::new(NUM_ARMS), KlUcb::new(NUM_ARMS));
}

#[test]
fn ucb1_and_ucb_tuned_round_trip() {
    roundtrip_single(Ucb1::new(NUM_ARMS), Ucb1::new(NUM_ARMS));
    roundtrip_single(UcbTuned::new(NUM_ARMS), UcbTuned::new(NUM_ARMS));
}

#[test]
fn ucbv_round_trips() {
    roundtrip_single(UcbV::new(NUM_ARMS), UcbV::new(NUM_ARMS));
}

#[test]
fn epsilon_greedy_round_trips_mid_stream_rng() {
    roundtrip_single(
        EpsilonGreedy::new(NUM_ARMS, 0.2, 9),
        EpsilonGreedy::new(NUM_ARMS, 0.2, 9),
    );
    // The twin is built from a *different* seed: load_state must overwrite the
    // fresh generator with the captured stream position.
    roundtrip_single(
        EpsilonGreedy::decaying(NUM_ARMS, 6.0, 9),
        EpsilonGreedy::decaying(NUM_ARMS, 6.0, 12345),
    );
}

#[test]
fn softmax_round_trips() {
    roundtrip_single(
        Softmax::new(NUM_ARMS, 0.15, 3),
        Softmax::new(NUM_ARMS, 0.15, 999),
    );
    roundtrip_single(
        Softmax::annealed(NUM_ARMS, 0.4, 4),
        Softmax::annealed(NUM_ARMS, 0.4, 4),
    );
}

#[test]
fn exp3_round_trips_with_last_probs() {
    roundtrip_single(Exp3::new(NUM_ARMS, 0.2, 5), Exp3::new(NUM_ARMS, 0.2, 777));
}

#[test]
fn thompson_round_trips() {
    roundtrip_single(
        ThompsonBernoulli::new(NUM_ARMS, 6),
        ThompsonBernoulli::new(NUM_ARMS, 606),
    );
}

#[test]
fn random_single_round_trips() {
    roundtrip_single(
        RandomSingle::new(NUM_ARMS, 7),
        RandomSingle::new(NUM_ARMS, 707),
    );
}

#[test]
fn dfl_cso_round_trips() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    let strategies = family.enumerate(&graph).unwrap();
    roundtrip_combinatorial(
        DflCso::from_strategies(&graph, strategies.clone()),
        DflCso::from_strategies(&graph, strategies),
    );
}

#[test]
fn dfl_cso_pending_last_selected_survives_the_capture() {
    // Capture *between* decide and update — the window the serving layer can
    // snapshot in when feedback is still pending.
    let (graph, bandit) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    let strategies = family.enumerate(&graph).unwrap();
    let mut policy = DflCso::from_strategies(&graph, strategies.clone());
    let mut rng = StdRng::seed_from_u64(1007);
    for t in 1..=10 {
        let s = policy.select_strategy(t);
        let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
        policy.update(t, &fb);
    }
    let s = policy.select_strategy(11);
    let state = policy.save_state().unwrap();
    let mut twin = DflCso::from_strategies(&graph, strategies);
    twin.load_state(&state).unwrap();
    assert_eq!(twin.save_state().unwrap(), state);
    let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
    policy.update(11, &fb);
    twin.update(11, &fb);
    assert_eq!(policy.select_strategy(12), twin.select_strategy(12));
}

#[test]
fn dfl_csr_round_trips() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    roundtrip_combinatorial(
        DflCsr::new(graph.clone(), family.clone()),
        DflCsr::new(graph, family),
    );
}

#[test]
fn cts_round_trips_across_estimator_kinds() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    for kind in [
        EstimatorKind::Stationary,
        EstimatorKind::Discounted { gamma: 0.97 },
        EstimatorKind::SlidingWindow { window: 24 },
    ] {
        roundtrip_combinatorial(
            CombinatorialThompson::with_estimator(graph.clone(), family.clone(), kind, 11),
            CombinatorialThompson::with_estimator(graph.clone(), family.clone(), kind, 2222),
        );
    }
}

#[test]
fn llr_and_cucb_round_trip() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    roundtrip_combinatorial(
        Llr::new(graph.clone(), family.clone()),
        Llr::new(graph.clone(), family.clone()),
    );
    roundtrip_combinatorial(
        Cucb::new(graph.clone(), family.clone()),
        Cucb::new(graph, family),
    );
}

#[test]
fn naive_comarm_round_trips_with_last_selected() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    let strategies = family.enumerate(&graph).unwrap();
    roundtrip_combinatorial(
        NaiveComArmMoss::new(strategies.clone()),
        NaiveComArmMoss::new(strategies),
    );
}

#[test]
fn comb_epsilon_greedy_round_trips() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    roundtrip_combinatorial(
        CombEpsilonGreedy::new(graph.clone(), family.clone(), 6.0, 13),
        CombEpsilonGreedy::new(graph, family, 6.0, 31),
    );
}

#[test]
fn random_combinatorial_round_trips() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    let strategies = family.enumerate(&graph).unwrap();
    roundtrip_combinatorial(
        RandomCombinatorial::new(strategies.clone(), 17),
        RandomCombinatorial::new(strategies, 71),
    );
}

#[test]
fn cross_policy_states_are_rejected_loudly() {
    let (graph, _) = bandit();
    // DFL-SSO saves one shape (counts + means); EXP3 expects another
    // (weights + last_probs + rng). Loading across must fail, not corrupt.
    let mut sso = DflSso::new(graph.clone());
    let state = sso.save_state().unwrap();
    let mut exp3 = Exp3::new(NUM_ARMS, 0.2, 0);
    let err = exp3.load_state(&state).unwrap_err();
    assert!(matches!(err, PolicyStateError::Mismatch { .. }), "{err}");
    // Same shape family but wrong arm count is also rejected.
    let mut smaller = DflSso::new(generators::path(3));
    assert!(smaller.load_state(&state).is_err());
    let _ = sso.select_arm(1);
}

#[test]
fn sliding_window_overflow_is_rejected() {
    let (graph, _) = bandit();
    let family = StrategyFamily::exactly_m(NUM_ARMS, 2);
    let kind = EstimatorKind::SlidingWindow { window: 4 };
    let mut cts = CombinatorialThompson::with_estimator(graph.clone(), family.clone(), kind, 1);
    let mut state = cts.save_state().unwrap();
    // Corrupt one ring beyond its capacity: a loaded ring longer than the
    // window would change every later eviction.
    state.windows[0] = vec![0.5; 9];
    let err = cts.load_state(&state).unwrap_err();
    assert!(matches!(err, PolicyStateError::Mismatch { .. }), "{err}");
    drop(family);
}
