//! Combinatorial ε-greedy: with probability `ε_t` play a uniformly random
//! feasible strategy, otherwise let the oracle maximise the sum of empirical
//! means over the component arms.
//!
//! A simple randomized combinatorial comparator that, unlike CUCB/LLR, has no
//! optimism at all — useful as a floor between CUCB and pure random play in the
//! CSO/CSR experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netband_core::estimator::{load_running_means, save_running_means, RunningMean};
use netband_core::{CombinatorialPolicy, PolicyState, PolicyStateError, PolicyStateReader};
use netband_env::feasible::FeasibleSet;
use netband_env::{CombinatorialFeedback, StrategyBank, StrategyFamily};
use netband_graph::RelationGraph;

use crate::ArmId;

/// The combinatorial ε-greedy policy with a `min(1, c/t)` exploration schedule.
#[derive(Debug, Clone)]
pub struct CombEpsilonGreedy {
    graph: RelationGraph,
    family: StrategyFamily,
    estimates: Vec<RunningMean>,
    /// Enumerated feasible set (flat bank rows) used for uniform exploration
    /// (falls back to the oracle on random weights if the family is too large
    /// to enumerate).
    enumerated: Option<StrategyBank>,
    schedule_c: f64,
    rng: StdRng,
    seed: u64,
}

impl CombEpsilonGreedy {
    /// Creates the policy with exploration schedule `ε_t = min(1, c/t)`.
    pub fn new(graph: RelationGraph, family: StrategyFamily, c: f64, seed: u64) -> Self {
        let k = graph.num_vertices();
        let enumerated = family.enumerate(&graph);
        CombEpsilonGreedy {
            graph,
            family,
            estimates: vec![RunningMean::new(); k],
            enumerated,
            schedule_c: c.max(0.0),
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// The exploration probability at time `t`.
    pub fn epsilon(&self, t: usize) -> f64 {
        (self.schedule_c / t.max(1) as f64).min(1.0)
    }

    fn random_strategy(&mut self) -> Option<Vec<ArmId>> {
        if let Some(enumerated) = &self.enumerated {
            if enumerated.is_empty() {
                return None;
            }
            let idx = self.rng.gen_range(0..enumerated.len());
            return Some(enumerated.row(idx).to_vec());
        }
        // Un-enumerable family: perturb with random weights and ask the oracle,
        // which still yields a feasible (if not uniform) exploratory strategy.
        let weights: Vec<f64> = (0..self.num_arms())
            .map(|_| self.rng.gen::<f64>())
            .collect();
        self.family.argmax_by_arm_weights(&weights, &self.graph)
    }

    fn greedy_strategy(&self) -> Option<Vec<ArmId>> {
        let weights: Vec<f64> = self.estimates.iter().map(RunningMean::mean).collect();
        self.family.argmax_by_arm_weights(&weights, &self.graph)
    }
}

impl CombinatorialPolicy for CombEpsilonGreedy {
    fn name(&self) -> &'static str {
        "CombEpsilonGreedy"
    }

    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        let explore = self.rng.gen::<f64>() < self.epsilon(t);
        let choice = if explore {
            self.random_strategy()
        } else {
            self.greedy_strategy()
        };
        choice
            .or_else(|| self.greedy_strategy())
            .expect("CombEpsilonGreedy requires a non-empty feasible family")
    }

    fn update(&mut self, _t: usize, feedback: &CombinatorialFeedback) {
        for &arm in &feedback.strategy {
            if let Some(&(_, reward)) = feedback.observations.iter().find(|&&(a, _)| a == arm) {
                if arm < self.estimates.len() {
                    self.estimates[arm].update(reward);
                }
            }
        }
    }

    fn reset(&mut self) {
        for est in &mut self.estimates {
            est.reset();
        }
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        save_running_means(&self.estimates, &mut state);
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        load_running_means(&mut self.estimates, &mut reader)?;
        let rng = reader.rng()?;
        reader.finish()?;
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;

    #[test]
    fn epsilon_schedule_decays() {
        let graph = generators::edgeless(4);
        let policy = CombEpsilonGreedy::new(graph, StrategyFamily::at_most_m(4, 2), 10.0, 0);
        assert_eq!(policy.epsilon(1), 1.0);
        assert!(policy.epsilon(100) < 0.11);
    }

    #[test]
    fn selections_are_always_feasible() {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = generators::erdos_renyi(8, 0.4, &mut rng);
        let family = StrategyFamily::independent_sets(2);
        let bandit =
            NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(8, &mut rng)).unwrap();
        let mut policy = CombEpsilonGreedy::new(graph.clone(), family.clone(), 5.0, 2);
        for t in 1..=200 {
            let s = policy.select_strategy(t);
            assert!(family.contains(&s, &graph), "infeasible {s:?}");
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
        }
    }

    #[test]
    fn converges_to_a_good_pair() {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.85, 0.9]);
        let family = StrategyFamily::exactly_m(5, 2);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = CombEpsilonGreedy::new(graph, family, 10.0, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut best = 0;
        for t in 1..=4000 {
            let s = policy.select_strategy(t);
            if t > 3000 && s == [3, 4] {
                best += 1;
            }
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
        }
        assert!(best > 700, "best pair selected only {best}/1000");
    }

    #[test]
    fn reset_replays_the_same_stream() {
        let graph = generators::edgeless(4);
        let family = StrategyFamily::at_most_m(4, 2);
        let mut policy = CombEpsilonGreedy::new(graph, family, 5.0, 7);
        let a: Vec<Vec<ArmId>> = (1..=15).map(|t| policy.select_strategy(t)).collect();
        policy.reset();
        let b: Vec<Vec<ArmId>> = (1..=15).map(|t| policy.select_strategy(t)).collect();
        assert_eq!(a, b);
        assert_eq!(policy.name(), "CombEpsilonGreedy");
    }
}
