//! KL-UCB (Garivier & Cappé) for Bernoulli-like rewards in `[0, 1]`.
//!
//! A stronger distribution-dependent single-play baseline than UCB1: the upper
//! confidence bound is the largest mean `q` whose binary KL divergence from the
//! empirical mean stays within `(ln t + c·ln ln t) / T_i`. Like the other
//! baselines it ignores side observations.

use netband_core::estimator::{load_running_means, save_running_means, RunningMean};
use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// Binary Kullback–Leibler divergence `kl(p, q)` with the usual conventions at
/// the boundary.
pub fn bernoulli_kl(p: f64, q: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let q = q.clamp(1e-12, 1.0 - 1e-12);
    let term = |a: f64, b: f64| {
        if a <= 0.0 {
            0.0
        } else {
            a * (a / b).ln()
        }
    };
    term(p, q) + term(1.0 - p, 1.0 - q)
}

/// Largest `q ≥ p` such that `kl(p, q) ≤ bound`, found by bisection.
pub fn kl_upper_bound(p: f64, bound: f64) -> f64 {
    if bound <= 0.0 {
        return p.clamp(0.0, 1.0);
    }
    let mut lo = p.clamp(0.0, 1.0);
    let mut hi = 1.0;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if bernoulli_kl(p, mid) > bound {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// The KL-UCB policy.
#[derive(Debug, Clone)]
pub struct KlUcb {
    estimates: Vec<RunningMean>,
    /// The `c` constant of the exploration term `ln t + c·ln ln t` (0 in the
    /// simplified variant, 3 in the original analysis).
    c: f64,
}

impl KlUcb {
    /// KL-UCB over `num_arms` arms with the standard `c = 3` exploration term.
    pub fn new(num_arms: usize) -> Self {
        KlUcb {
            estimates: vec![RunningMean::new(); num_arms],
            c: 3.0,
        }
    }

    /// KL-UCB with a custom `c` constant.
    pub fn with_constant(num_arms: usize, c: f64) -> Self {
        KlUcb {
            estimates: vec![RunningMean::new(); num_arms],
            c: c.max(0.0),
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// Number of pulls of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn pull_count(&self, arm: ArmId) -> u64 {
        self.estimates[arm].count()
    }

    /// The KL-UCB index of an arm at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn index(&self, arm: ArmId, t: usize) -> f64 {
        let est = &self.estimates[arm];
        if est.count() == 0 {
            return f64::INFINITY;
        }
        let t = t.max(2) as f64;
        let exploration = (t.ln() + self.c * t.ln().ln().max(0.0)) / est.count() as f64;
        kl_upper_bound(est.mean(), exploration)
    }
}

impl SinglePlayPolicy for KlUcb {
    fn name(&self) -> &'static str {
        "KL-UCB"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        (0..self.num_arms())
            .max_by(|&a, &b| {
                self.index(a, t)
                    .partial_cmp(&self.index(b, t))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        if feedback.arm < self.estimates.len() {
            self.estimates[feedback.arm].update(feedback.direct_reward);
        }
    }

    fn reset(&mut self) {
        for est in &mut self.estimates {
            est.reset();
        }
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        save_running_means(&self.estimates, &mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        load_running_means(&mut self.estimates, &mut reader)?;
        reader.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kl_divergence_properties() {
        assert_eq!(bernoulli_kl(0.5, 0.5), 0.0);
        assert!(bernoulli_kl(0.2, 0.8) > 0.0);
        // Symmetric arguments are not symmetric in KL, but both positive.
        assert!(bernoulli_kl(0.8, 0.2) > 0.0);
        // Boundary p values are handled.
        assert!(bernoulli_kl(0.0, 0.5).is_finite());
        assert!(bernoulli_kl(1.0, 0.5).is_finite());
    }

    #[test]
    fn kl_upper_bound_brackets_the_mean() {
        let p = 0.3;
        let q = kl_upper_bound(p, 0.2);
        assert!(q >= p);
        assert!(q <= 1.0);
        assert!(bernoulli_kl(p, q) <= 0.2 + 1e-6);
        // Zero budget returns the mean itself.
        assert_eq!(kl_upper_bound(0.4, 0.0), 0.4);
        // Large budget saturates near 1.
        assert!(kl_upper_bound(0.4, 100.0) > 0.999);
    }

    #[test]
    fn index_is_infinite_before_first_pull_and_shrinks_with_pulls() {
        let mut policy = KlUcb::new(2);
        assert_eq!(policy.index(0, 10), f64::INFINITY);
        let fb = |reward| SinglePlayFeedback {
            arm: 0,
            direct_reward: reward,
            side_reward: reward,
            observations: vec![(0, reward)],
        };
        policy.update(1, &fb(0.5));
        let once = policy.index(0, 1000);
        for t in 2..=60 {
            policy.update(t, &fb(0.5));
        }
        assert!(policy.index(0, 1000) < once);
        assert!(policy.index(0, 1000) >= 0.5);
    }

    #[test]
    fn converges_to_the_best_arm() {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9]);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut policy = KlUcb::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut tail_best = 0;
        for t in 1..=3000 {
            let arm = policy.select_arm(t);
            if t > 2000 && arm == 4 {
                tail_best += 1;
            }
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
        }
        assert!(tail_best > 900, "best arm pulled only {tail_best}/1000");
    }

    #[test]
    fn reset_and_name() {
        let mut policy = KlUcb::with_constant(3, 0.0);
        policy.update(
            1,
            &SinglePlayFeedback {
                arm: 1,
                direct_reward: 1.0,
                side_reward: 1.0,
                observations: vec![(1, 1.0)],
            },
        );
        assert_eq!(policy.pull_count(1), 1);
        policy.reset();
        assert_eq!(policy.pull_count(1), 0);
        assert_eq!(policy.name(), "KL-UCB");
    }
}
