//! The "naive com-arm" baseline: treat every feasible strategy as an independent
//! arm and run MOSS over them, ignoring both the additive reward structure and
//! side observation.
//!
//! Section VII of the paper points out that this approach carries a regret bound
//! of `49·sqrt(n|F|)` (exponential in the number of variables when `|F|` is),
//! which is exactly what makes the structural exploitation of DFL-CSO/DFL-CSR
//! worthwhile. It is included so the experiments can show that gap empirically.

use netband_core::estimator::{load_running_means, moss_index, save_running_means, RunningMean};
use netband_core::state::{load_opt_index, save_opt_index};
use netband_core::{CombinatorialPolicy, PolicyState, PolicyStateError, PolicyStateReader};
use netband_env::CombinatorialFeedback;
use netband_graph::StrategyBank;

use crate::ArmId;

/// MOSS over an explicitly enumerated feasible set, one estimator per com-arm.
/// The feasible set is held as flat [`StrategyBank`] rows, so the per-round
/// index argmax walks contiguous memory.
#[derive(Debug, Clone)]
pub struct NaiveComArmMoss {
    strategies: StrategyBank,
    estimates: Vec<RunningMean>,
    /// Reward scale (the largest strategy size), used to keep estimates in
    /// `[0, 1]`.
    scale: f64,
    /// Which com-arm was selected last (rewards are only credited to it).
    last_selected: Option<usize>,
}

impl NaiveComArmMoss {
    /// Creates the policy over an explicit feasible set.
    ///
    /// # Panics
    ///
    /// Panics if `strategies` is empty.
    pub fn new(strategies: impl Into<StrategyBank>) -> Self {
        let raw: StrategyBank = strategies.into();
        assert!(
            !raw.is_empty(),
            "NaiveComArmMoss requires a non-empty feasible set"
        );
        // Empty rows are kept: the com-arm ids must stay aligned with the
        // caller's enumeration.
        let strategies = raw.into_normalized(false, |_| true);
        let scale = strategies.max_row_len().max(1) as f64;
        let num = strategies.len();
        NaiveComArmMoss {
            strategies,
            estimates: vec![RunningMean::new(); num],
            scale,
            last_selected: None,
        }
    }

    /// Number of com-arms `|F|`.
    pub fn num_strategies(&self) -> usize {
        self.strategies.len()
    }

    /// Number of times a com-arm has been played.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn play_count(&self, x: usize) -> u64 {
        self.estimates[x].count()
    }

    /// The MOSS index of com-arm `x` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn index(&self, x: usize, t: usize) -> f64 {
        let est = &self.estimates[x];
        moss_index(est.mean(), est.count(), t, self.num_strategies())
    }
}

impl CombinatorialPolicy for NaiveComArmMoss {
    fn name(&self) -> &'static str {
        "NaiveComArm-MOSS"
    }

    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        let x = (0..self.num_strategies())
            .max_by(|&a, &b| {
                self.index(a, t)
                    .partial_cmp(&self.index(b, t))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        self.last_selected = Some(x);
        self.strategies.row(x).to_vec()
    }

    fn update(&mut self, _t: usize, feedback: &CombinatorialFeedback) {
        // Credit the reward to the com-arm that was actually selected; if update
        // is called without a prior selection (e.g. replayed feedback), locate
        // the strategy by value.
        let x = self.last_selected.take().or_else(|| {
            self.strategies
                .iter()
                .position(|s| s == feedback.strategy.as_slice())
        });
        if let Some(x) = x {
            self.estimates[x].update(feedback.direct_reward / self.scale);
        }
    }

    fn reset(&mut self) {
        for est in &mut self.estimates {
            est.reset();
        }
        self.last_selected = None;
    }

    // `last_selected` is durable: a pending feedback captured between decide
    // and update must credit the com-arm chosen at that decide.
    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        save_running_means(&self.estimates, &mut state);
        save_opt_index(self.last_selected, &mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        load_running_means(&mut self.estimates, &mut reader)?;
        let last = load_opt_index(&mut reader)?;
        if let Some(x) = last {
            if x >= self.num_strategies() {
                return Err(reader.mismatch(format!(
                    "last_selected {x} out of range for {} strategies",
                    self.num_strategies()
                )));
            }
        }
        reader.finish()?;
        self.last_selected = last;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::feasible::FeasibleSet;
    use netband_env::{ArmSet, NetworkedBandit, StrategyFamily};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn explores_every_com_arm_before_repeating() {
        let graph = generators::edgeless(4);
        let family = StrategyFamily::exactly_m(4, 2);
        let strategies = family.enumerate(&graph).unwrap();
        let num = strategies.len();
        let bandit = NetworkedBandit::new(graph, ArmSet::linear_bernoulli(4)).unwrap();
        let mut policy = NaiveComArmMoss::new(strategies);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for t in 1..=num {
            let s = policy.select_strategy(t);
            seen.insert(s.clone());
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
        }
        assert_eq!(seen.len(), num);
    }

    #[test]
    fn converges_much_slower_than_structured_learning_would() {
        // Not a statement about another policy — just that the naive learner does
        // eventually find the best com-arm on a tiny instance.
        let graph = generators::edgeless(4);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.8, 0.9]);
        let family = StrategyFamily::exactly_m(4, 2);
        let strategies = family.enumerate(&graph).unwrap();
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut policy = NaiveComArmMoss::new(strategies);
        let mut rng = StdRng::seed_from_u64(2);
        let mut best = 0;
        for t in 1..=4000 {
            let s = policy.select_strategy(t);
            if t > 3000 && s == [2, 3] {
                best += 1;
            }
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
        }
        assert!(best > 600, "best com-arm selected only {best}/1000");
    }

    #[test]
    fn update_by_value_when_no_selection_recorded() {
        let mut policy = NaiveComArmMoss::new(vec![vec![0], vec![1]]);
        policy.update(
            1,
            &CombinatorialFeedback {
                strategy: vec![1],
                observation_set: vec![1],
                direct_reward: 1.0,
                side_reward: 1.0,
                observations: vec![(1, 1.0)],
            },
        );
        assert_eq!(policy.play_count(1), 1);
        assert_eq!(policy.play_count(0), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty feasible set")]
    fn rejects_empty_family() {
        let _ = NaiveComArmMoss::new(Vec::<Vec<ArmId>>::new());
    }

    #[test]
    fn reset_and_name() {
        let mut policy = NaiveComArmMoss::new(vec![vec![0], vec![1]]);
        policy.select_strategy(1);
        policy.reset();
        assert_eq!(policy.play_count(0), 0);
        assert_eq!(policy.name(), "NaiveComArm-MOSS");
    }
}
