//! LLR — Learning with Linear Rewards (Gai, Krishnamachari & Jain).
//!
//! The distribution-dependent combinatorial baseline the paper cites for
//! combinatorial play without side bonus: a per-arm index
//! `X̄_i + sqrt((M + 1) · ln t / T_i)` where `M` is the maximum strategy size,
//! combined with an exact oracle over the feasible family. Only the played
//! arms are updated.

use netband_core::estimator::ArmEstimators;
use netband_core::kernels;
use netband_core::{CombinatorialPolicy, PolicyState, PolicyStateError, PolicyStateReader};
use netband_env::feasible::FeasibleSet;
use netband_env::{CombinatorialFeedback, StrategyFamily};
use netband_graph::RelationGraph;

use crate::ArmId;

/// The LLR policy.
#[derive(Debug, Clone)]
pub struct Llr {
    graph: RelationGraph,
    family: StrategyFamily,
    /// Flat per-arm play counts and means, keyed by dense arm id (the same
    /// estimator arrays the DFL policies and CUCB use).
    estimates: ArmEstimators,
    /// Per-round index vector handed to the oracle, reused across rounds.
    weights_scratch: Vec<f64>,
}

impl Llr {
    /// Creates LLR for the given relation graph and feasible family.
    pub fn new(graph: RelationGraph, family: StrategyFamily) -> Self {
        let k = graph.num_vertices();
        Llr {
            graph,
            family,
            estimates: ArmEstimators::new(k),
            weights_scratch: vec![0.0; k],
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// Number of times an arm has been played.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn play_count(&self, arm: ArmId) -> u64 {
        self.estimates.count(arm)
    }

    /// The LLR per-arm index at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn arm_index(&self, arm: ArmId, t: usize) -> f64 {
        kernels::llr_index(
            self.estimates.mean(arm),
            self.estimates.count(arm),
            self.family.max_size(),
            t,
        )
    }
}

impl CombinatorialPolicy for Llr {
    fn name(&self) -> &'static str {
        "LLR"
    }

    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        // Per-arm score table in one chunked sweep (`(M + 1) ln t` and the
        // unplayed-arm sentinel hoisted), bit-identical to `arm_index`.
        kernels::llr_scores_into(
            self.estimates.means(),
            self.estimates.counts(),
            self.family.max_size(),
            t,
            &mut self.weights_scratch,
        );
        self.family
            .argmax_by_arm_weights(&self.weights_scratch, &self.graph)
            .expect("LLR requires a non-empty feasible family")
    }

    fn update(&mut self, _t: usize, feedback: &CombinatorialFeedback) {
        // The observation list is sorted by arm id and contains the played arms.
        for &arm in &feedback.strategy {
            if let Ok(pos) = feedback
                .observations
                .binary_search_by_key(&arm, |&(a, _)| a)
            {
                if arm < self.estimates.len() {
                    self.estimates.update(arm, feedback.observations[pos].1);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.estimates.reset();
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.estimates)
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.estimates.save_state(&mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.estimates.load_state(&mut reader)?;
        reader.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn index_scales_with_strategy_size() {
        let graph = generators::edgeless(4);
        let small = Llr::new(graph.clone(), StrategyFamily::at_most_m(4, 1));
        let large = Llr::new(graph, StrategyFamily::at_most_m(4, 4));
        // Same (empty) state, larger M → larger exploration bonus.
        assert!(large.arm_index(0, 100) > small.arm_index(0, 100));
    }

    #[test]
    fn converges_to_the_best_pair() {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.85, 0.9]);
        let family = StrategyFamily::exactly_m(5, 2);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = Llr::new(graph, family);
        let mut rng = StdRng::seed_from_u64(1);
        let mut best = 0;
        for t in 1..=5000 {
            let s = policy.select_strategy(t);
            if t > 4000 && s == [3, 4] {
                best += 1;
            }
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
        }
        assert!(best > 700, "best pair selected only {best}/1000");
    }

    #[test]
    fn only_played_arms_are_updated() {
        let graph = generators::star(4);
        let family = StrategyFamily::at_most_m(4, 2);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
        let mut policy = Llr::new(graph, family);
        let mut rng = StdRng::seed_from_u64(2);
        let fb = bandit.pull_strategy(&[1, 2], &mut rng).unwrap();
        policy.update(1, &fb);
        assert_eq!(policy.play_count(1), 1);
        assert_eq!(policy.play_count(2), 1);
        assert_eq!(policy.play_count(0), 0);
        assert_eq!(policy.play_count(3), 0);
    }

    #[test]
    fn reset_and_name() {
        let graph = generators::edgeless(2);
        let mut policy = Llr::new(graph, StrategyFamily::at_most_m(2, 1));
        policy.update(
            1,
            &CombinatorialFeedback {
                strategy: vec![0],
                observation_set: vec![0],
                direct_reward: 1.0,
                side_reward: 1.0,
                observations: vec![(0, 1.0)],
            },
        );
        assert_eq!(policy.play_count(0), 1);
        policy.reset();
        assert_eq!(policy.play_count(0), 0);
        assert_eq!(policy.name(), "LLR");
    }
}
