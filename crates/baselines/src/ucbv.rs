//! UCB-V (Audibert, Munos & Szepesvári): a variance-aware upper confidence
//! bound using an empirical-Bernstein exploration term.
//!
//! Included because the paper's arms are Bernoulli with means spread over
//! `[0, 1]`: low-variance arms (means near 0 or 1) get much tighter confidence
//! intervals under UCB-V than under UCB1, making it a stronger
//! distribution-dependent single-play comparator. Like every baseline it
//! ignores side observations.

use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// Per-arm sufficient statistics (count, mean, mean of squares).
#[derive(Debug, Clone, Copy, Default)]
struct ArmStats {
    count: u64,
    mean: f64,
    mean_sq: f64,
}

impl ArmStats {
    fn update(&mut self, x: f64) {
        self.count += 1;
        let n = self.count as f64;
        self.mean += (x - self.mean) / n;
        self.mean_sq += (x * x - self.mean_sq) / n;
    }

    fn variance(&self) -> f64 {
        (self.mean_sq - self.mean * self.mean).max(0.0)
    }

    fn reset(&mut self) {
        *self = ArmStats::default();
    }
}

/// The UCB-V policy with exploration function `E(t) = ζ·ln t`.
#[derive(Debug, Clone)]
pub struct UcbV {
    arms: Vec<ArmStats>,
    /// Exploration scale ζ (the analysis uses ζ ≥ 1; 1.2 is a common default).
    zeta: f64,
    /// The Bernstein constants `b` (reward range) and `c` of the original paper;
    /// rewards here live in `[0, 1]`, so `b = 1`.
    c: f64,
}

impl UcbV {
    /// UCB-V over `num_arms` arms with the standard constants (ζ = 1.2, c = 1).
    pub fn new(num_arms: usize) -> Self {
        UcbV {
            arms: vec![ArmStats::default(); num_arms],
            zeta: 1.2,
            c: 1.0,
        }
    }

    /// UCB-V with custom exploration constants.
    pub fn with_constants(num_arms: usize, zeta: f64, c: f64) -> Self {
        UcbV {
            arms: vec![ArmStats::default(); num_arms],
            zeta: zeta.max(0.0),
            c: c.max(0.0),
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// Number of pulls of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn pull_count(&self, arm: ArmId) -> u64 {
        self.arms[arm].count
    }

    /// Empirical variance estimate of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn variance_estimate(&self, arm: ArmId) -> f64 {
        self.arms[arm].variance()
    }

    /// The UCB-V index of an arm at time `t`:
    /// `X̄ + sqrt(2 V̄ E(t) / s) + 3 b c E(t) / s` with `E(t) = ζ ln t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn index(&self, arm: ArmId, t: usize) -> f64 {
        let a = &self.arms[arm];
        if a.count == 0 {
            return f64::INFINITY;
        }
        let s = a.count as f64;
        let exploration = self.zeta * (t.max(2) as f64).ln();
        a.mean + (2.0 * a.variance() * exploration / s).sqrt() + 3.0 * self.c * exploration / s
    }
}

impl SinglePlayPolicy for UcbV {
    fn name(&self) -> &'static str {
        "UCB-V"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        (0..self.num_arms())
            .max_by(|&a, &b| {
                self.index(a, t)
                    .partial_cmp(&self.index(b, t))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        if feedback.arm < self.arms.len() {
            self.arms[feedback.arm].update(feedback.direct_reward);
        }
    }

    fn reset(&mut self) {
        for a in &mut self.arms {
            a.reset();
        }
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        state
            .counts
            .push(self.arms.iter().map(|a| a.count).collect());
        state
            .floats
            .push(self.arms.iter().map(|a| a.mean).collect());
        state
            .floats
            .push(self.arms.iter().map(|a| a.mean_sq).collect());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        let counts = reader.counts(self.arms.len())?;
        let means = reader.floats(self.arms.len())?;
        let mean_sqs = reader.floats(self.arms.len())?;
        reader.finish()?;
        for (i, a) in self.arms.iter_mut().enumerate() {
            a.count = counts[i];
            a.mean = means[i];
            a.mean_sq = mean_sqs[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fb(arm: ArmId, reward: f64) -> SinglePlayFeedback {
        SinglePlayFeedback {
            arm,
            direct_reward: reward,
            side_reward: reward,
            observations: vec![(arm, reward)],
        }
    }

    #[test]
    fn statistics_track_mean_and_variance() {
        let mut policy = UcbV::new(1);
        for &x in &[0.0, 1.0, 0.0, 1.0] {
            policy.update(1, &fb(0, x));
        }
        assert_eq!(policy.pull_count(0), 4);
        assert!((policy.variance_estimate(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_arms_get_tighter_indices() {
        let mut noisy = UcbV::new(1);
        let mut constant = UcbV::new(1);
        for i in 0..40 {
            noisy.update(i + 1, &fb(0, if i % 2 == 0 { 0.0 } else { 1.0 }));
            constant.update(i + 1, &fb(0, 0.5));
        }
        // Same empirical mean (0.5), but the constant arm's bonus is smaller.
        assert!(constant.index(0, 1000) < noisy.index(0, 1000));
    }

    #[test]
    fn unpulled_arms_are_explored_first() {
        let policy = UcbV::new(3);
        assert_eq!(policy.index(2, 10), f64::INFINITY);
    }

    #[test]
    fn converges_to_the_best_arm() {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9]);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut policy = UcbV::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut tail_best = 0;
        for t in 1..=4000 {
            let arm = policy.select_arm(t);
            if t > 3000 && arm == 4 {
                tail_best += 1;
            }
            let feedback = bandit.pull_single(arm, &mut rng);
            policy.update(t, &feedback);
        }
        assert!(tail_best > 800, "best arm pulled only {tail_best}/1000");
    }

    #[test]
    fn reset_and_name_and_custom_constants() {
        let mut policy = UcbV::with_constants(2, 2.0, 0.5);
        policy.update(1, &fb(0, 1.0));
        assert_eq!(policy.pull_count(0), 1);
        policy.reset();
        assert_eq!(policy.pull_count(0), 0);
        assert_eq!(policy.name(), "UCB-V");
        assert_eq!(policy.index(0, 5), f64::INFINITY);
    }
}
