//! EXP3 — exponential weights for exploration and exploitation (Auer et al.).
//!
//! An adversarial-bandit baseline included to contrast stochastic-optimal index
//! policies with a worst-case-optimal one on the paper's stochastic workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// The EXP3 policy with exploration parameter `gamma`.
#[derive(Debug, Clone)]
pub struct Exp3 {
    weights: Vec<f64>,
    gamma: f64,
    rng: StdRng,
    seed: u64,
    /// Probabilities used at the last selection (needed for the importance-
    /// weighted update).
    last_probs: Vec<f64>,
}

impl Exp3 {
    /// Creates EXP3 over `num_arms` arms with exploration rate `gamma ∈ (0, 1]`.
    pub fn new(num_arms: usize, gamma: f64, seed: u64) -> Self {
        Exp3 {
            weights: vec![1.0; num_arms],
            gamma: gamma.clamp(1e-6, 1.0),
            rng: StdRng::seed_from_u64(seed),
            seed,
            last_probs: vec![1.0 / num_arms.max(1) as f64; num_arms],
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.weights.len()
    }

    /// The current sampling distribution over arms.
    pub fn probabilities(&self) -> Vec<f64> {
        let k = self.num_arms() as f64;
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|w| (1.0 - self.gamma) * w / total + self.gamma / k)
            .collect()
    }
}

impl SinglePlayPolicy for Exp3 {
    fn name(&self) -> &'static str {
        "EXP3"
    }

    fn select_arm(&mut self, _t: usize) -> ArmId {
        debug_assert!(self.num_arms() > 0);
        let probs = self.probabilities();
        self.last_probs = probs.clone();
        let mut ticket = self.rng.gen::<f64>();
        for (arm, p) in probs.iter().enumerate() {
            if ticket < *p {
                return arm;
            }
            ticket -= p;
        }
        self.num_arms() - 1
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        let arm = feedback.arm;
        if arm >= self.weights.len() {
            return;
        }
        let p = self.last_probs.get(arm).copied().unwrap_or(1.0).max(1e-12);
        let estimated = feedback.direct_reward / p;
        let k = self.num_arms() as f64;
        self.weights[arm] *= (self.gamma * estimated / k).exp();
        // Guard against weight overflow over very long runs by renormalising.
        let max_w = self.weights.iter().cloned().fold(0.0_f64, f64::max);
        if max_w > 1e100 {
            for w in &mut self.weights {
                *w /= max_w;
            }
        }
    }

    fn reset(&mut self) {
        for w in &mut self.weights {
            *w = 1.0;
        }
        let k = self.num_arms().max(1) as f64;
        self.last_probs = vec![1.0 / k; self.num_arms()];
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    // `last_probs` is part of the durable state: the importance-weighted
    // update of a pending feedback divides by the probabilities in effect at
    // the decide that produced it.
    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        state.floats.push(self.weights.clone());
        state.floats.push(self.last_probs.clone());
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        let weights = reader.floats(self.weights.len())?;
        let last_probs = reader.floats(self.last_probs.len())?;
        let rng = reader.rng()?;
        reader.finish()?;
        self.weights.copy_from_slice(weights);
        self.last_probs.copy_from_slice(last_probs);
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;

    #[test]
    fn probabilities_sum_to_one_and_include_exploration_floor() {
        let policy = Exp3::new(4, 0.2, 0);
        let probs = policy.probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for p in probs {
            assert!(p >= 0.2 / 4.0 - 1e-12);
        }
    }

    #[test]
    fn weights_grow_for_rewarding_arms() {
        let mut policy = Exp3::new(3, 0.3, 1);
        for t in 1..=100 {
            let arm = policy.select_arm(t);
            let reward = if arm == 2 { 1.0 } else { 0.0 };
            policy.update(
                t,
                &SinglePlayFeedback {
                    arm,
                    direct_reward: reward,
                    side_reward: reward,
                    observations: vec![(arm, reward)],
                },
            );
        }
        let probs = policy.probabilities();
        assert!(
            probs[2] > probs[0] && probs[2] > probs[1],
            "probs {probs:?}"
        );
    }

    #[test]
    fn plays_the_best_arm_most_often_on_easy_instances() {
        let graph = generators::edgeless(3);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.9]);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut policy = Exp3::new(3, 0.1, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for t in 1..=5000 {
            let arm = policy.select_arm(t);
            counts[arm] += 1;
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
        }
        assert!(counts[2] > counts[0] && counts[2] > counts[1], "{counts:?}");
    }

    #[test]
    fn reset_replays_the_same_stream() {
        let mut policy = Exp3::new(5, 0.2, 77);
        let first: Vec<ArmId> = (1..=15).map(|t| policy.select_arm(t)).collect();
        policy.reset();
        let second: Vec<ArmId> = (1..=15).map(|t| policy.select_arm(t)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn gamma_is_clamped_and_name_reported() {
        let policy = Exp3::new(2, 5.0, 0);
        assert!(policy.gamma <= 1.0);
        assert_eq!(policy.name(), "EXP3");
    }
}
