//! Baseline bandit policies used as comparators.
//!
//! The paper's evaluation (Section VII) compares DFL-SSO against **MOSS**
//! (Audibert & Bubeck's distribution-free policy), and its related-work section
//! positions the combinatorial algorithms against UCB-style single-play learners
//! and CUCB/LLR-style combinatorial learners. This crate implements those
//! comparators — none of them exploit side observations, which is exactly what
//! the comparison is meant to show.
//!
//! Single-play baselines (implement [`netband_core::SinglePlayPolicy`]):
//!
//! * [`moss::Moss`] — the anytime MOSS index used in Fig. 3.
//! * [`ucb::Ucb1`], [`ucb::UcbTuned`] — classic UCB variants.
//! * [`epsilon_greedy::EpsilonGreedy`] — fixed or decaying exploration rate.
//! * [`thompson::ThompsonBernoulli`] — Beta–Bernoulli Thompson sampling.
//! * [`exp3::Exp3`] — the adversarial-bandit exponential-weights baseline.
//! * [`random::RandomSingle`] — uniform random play (sanity floor).
//!
//! Combinatorial baselines (implement [`netband_core::CombinatorialPolicy`]):
//!
//! * [`cucb::Cucb`] — combinatorial UCB with a per-arm UCB1 index and an exact
//!   oracle (Chen et al. style).
//! * [`llr::Llr`] — Gai et al.'s Learning with Linear Rewards index.
//! * [`naive_comarm::NaiveComArmMoss`] — treats every feasible strategy as an
//!   independent arm and runs MOSS over them, ignoring all structure (the
//!   "exponential regret" strawman discussed in Section VII).
//! * [`random::RandomCombinatorial`] — uniform random feasible strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comb_epsilon;
pub mod cucb;
pub mod epsilon_greedy;
pub mod exp3;
pub mod klucb;
pub mod llr;
pub mod moss;
pub mod naive_comarm;
pub mod random;
pub mod softmax;
pub mod thompson;
pub mod ucb;
pub mod ucbv;

pub use comb_epsilon::CombEpsilonGreedy;
pub use cucb::Cucb;
pub use epsilon_greedy::EpsilonGreedy;
pub use exp3::Exp3;
pub use klucb::KlUcb;
pub use llr::Llr;
pub use moss::Moss;
pub use naive_comarm::NaiveComArmMoss;
pub use random::{RandomCombinatorial, RandomSingle};
pub use softmax::Softmax;
pub use thompson::ThompsonBernoulli;
pub use ucb::{Ucb1, UcbTuned};
pub use ucbv::UcbV;

/// Identifier of an arm; re-exported for convenience.
pub type ArmId = netband_graph::ArmId;
