//! Softmax (Boltzmann) exploration.
//!
//! Plays arm `i` with probability proportional to `exp(X̄_i / τ)`; the
//! temperature `τ` can be fixed or annealed as `τ_0 / ln(t + 1)`. A classic
//! randomized single-play baseline that, like the others, ignores side
//! observations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netband_core::estimator::{load_running_means, save_running_means, RunningMean};
use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// Temperature schedule for [`Softmax`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Temperature {
    /// Constant temperature.
    Fixed(f64),
    /// `τ_t = τ_0 / ln(t + 1)` — cools down over time so the policy becomes
    /// greedy in the limit.
    Annealed {
        /// Initial temperature `τ_0`.
        tau0: f64,
    },
}

/// The softmax / Boltzmann exploration policy.
#[derive(Debug, Clone)]
pub struct Softmax {
    estimates: Vec<RunningMean>,
    temperature: Temperature,
    rng: StdRng,
    seed: u64,
}

impl Softmax {
    /// Fixed-temperature softmax.
    pub fn new(num_arms: usize, tau: f64, seed: u64) -> Self {
        Softmax {
            estimates: vec![RunningMean::new(); num_arms],
            temperature: Temperature::Fixed(tau.max(1e-6)),
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Annealed softmax (`τ_t = τ_0 / ln(t + 1)`).
    pub fn annealed(num_arms: usize, tau0: f64, seed: u64) -> Self {
        Softmax {
            estimates: vec![RunningMean::new(); num_arms],
            temperature: Temperature::Annealed {
                tau0: tau0.max(1e-6),
            },
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// The temperature in effect at time `t`.
    pub fn temperature_at(&self, t: usize) -> f64 {
        match self.temperature {
            Temperature::Fixed(tau) => tau,
            Temperature::Annealed { tau0 } => {
                let denom = ((t + 1) as f64).ln().max(1e-6);
                (tau0 / denom).max(1e-6)
            }
        }
    }

    /// The Boltzmann distribution over arms at time `t`.
    pub fn probabilities(&self, t: usize) -> Vec<f64> {
        let tau = self.temperature_at(t);
        // Subtract the maximum for numerical stability.
        let max_mean = self
            .estimates
            .iter()
            .map(RunningMean::mean)
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = self
            .estimates
            .iter()
            .map(|e| ((e.mean() - max_mean) / tau).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            let k = self.num_arms().max(1) as f64;
            return vec![1.0 / k; self.num_arms()];
        }
        weights.into_iter().map(|w| w / total).collect()
    }
}

impl SinglePlayPolicy for Softmax {
    fn name(&self) -> &'static str {
        "Softmax"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        debug_assert!(self.num_arms() > 0);
        let probs = self.probabilities(t);
        let mut ticket = self.rng.gen::<f64>();
        for (arm, p) in probs.iter().enumerate() {
            if ticket < *p {
                return arm;
            }
            ticket -= p;
        }
        self.num_arms() - 1
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        if feedback.arm < self.estimates.len() {
            self.estimates[feedback.arm].update(feedback.direct_reward);
        }
    }

    fn reset(&mut self) {
        for est in &mut self.estimates {
            est.reset();
        }
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        save_running_means(&self.estimates, &mut state);
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        load_running_means(&mut self.estimates, &mut reader)?;
        let rng = reader.rng()?;
        reader.finish()?;
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;

    #[test]
    fn probabilities_are_a_distribution() {
        let policy = Softmax::new(5, 0.1, 0);
        let probs = policy.probabilities(1);
        assert_eq!(probs.len(), 5);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // With no observations all arms are equally likely.
        assert!(probs.iter().all(|&p| (p - 0.2).abs() < 1e-9));
    }

    #[test]
    fn lower_temperature_concentrates_on_the_best_empirical_arm() {
        let feedback = |arm, reward| SinglePlayFeedback {
            arm,
            direct_reward: reward,
            side_reward: reward,
            observations: vec![(arm, reward)],
        };
        let mut hot = Softmax::new(2, 1.0, 0);
        let mut cold = Softmax::new(2, 0.01, 0);
        for t in 1..=20 {
            for p in [&mut hot, &mut cold] {
                p.update(t, &feedback(0, 1.0));
                p.update(t, &feedback(1, 0.0));
            }
        }
        assert!(cold.probabilities(21)[0] > hot.probabilities(21)[0]);
        assert!(cold.probabilities(21)[0] > 0.99);
    }

    #[test]
    fn annealed_temperature_decreases() {
        let policy = Softmax::annealed(3, 1.0, 0);
        assert!(policy.temperature_at(10) > policy.temperature_at(10_000));
    }

    #[test]
    fn mostly_plays_the_best_arm_on_easy_instances() {
        let graph = generators::edgeless(3);
        let arms = ArmSet::bernoulli(&[0.1, 0.5, 0.9]);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut policy = Softmax::annealed(3, 0.3, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for t in 1..=4000 {
            let arm = policy.select_arm(t);
            counts[arm] += 1;
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
        }
        assert!(counts[2] > counts[0] + counts[1], "{counts:?}");
    }

    #[test]
    fn reset_replays_the_same_stream_and_name() {
        let mut policy = Softmax::new(4, 0.2, 9);
        let a: Vec<ArmId> = (1..=20).map(|t| policy.select_arm(t)).collect();
        policy.reset();
        let b: Vec<ArmId> = (1..=20).map(|t| policy.select_arm(t)).collect();
        assert_eq!(a, b);
        assert_eq!(policy.name(), "Softmax");
    }
}
