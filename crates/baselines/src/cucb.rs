//! CUCB — Combinatorial UCB (Chen, Wang & Yuan style).
//!
//! The standard combinatorial baseline: maintain a UCB1-style index per *arm*
//! and, at each time slot, ask the combinatorial oracle for the feasible
//! strategy maximising the sum of indices over its component arms. Only the
//! arms actually played are updated — no side observation is used, which is the
//! structural difference from DFL-CSO/DFL-CSR.

use netband_core::estimator::ArmEstimators;
use netband_core::kernels;
use netband_core::{CombinatorialPolicy, PolicyState, PolicyStateError, PolicyStateReader};
use netband_env::feasible::FeasibleSet;
use netband_env::{CombinatorialFeedback, StrategyFamily};
use netband_graph::RelationGraph;

use crate::ArmId;

/// The CUCB policy.
#[derive(Debug, Clone)]
pub struct Cucb {
    graph: RelationGraph,
    family: StrategyFamily,
    /// Flat per-arm play counts and means, keyed by dense arm id (the same
    /// estimator arrays the DFL policies and LLR use).
    estimates: ArmEstimators,
    total_pulls: u64,
    /// Per-round index vector handed to the oracle, reused across rounds.
    weights_scratch: Vec<f64>,
}

impl Cucb {
    /// Creates CUCB for the given relation graph (used only by the oracle for
    /// constraint checking) and feasible family.
    pub fn new(graph: RelationGraph, family: StrategyFamily) -> Self {
        let k = graph.num_vertices();
        Cucb {
            graph,
            family,
            estimates: ArmEstimators::new(k),
            total_pulls: 0,
            weights_scratch: vec![0.0; k],
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// Number of times an arm has been played (as part of any strategy).
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn play_count(&self, arm: ArmId) -> u64 {
        self.estimates.count(arm)
    }

    /// The per-arm UCB index at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn arm_index(&self, arm: ArmId, t: usize) -> f64 {
        kernels::cucb_index(self.estimates.mean(arm), self.estimates.count(arm), t)
    }
}

impl CombinatorialPolicy for Cucb {
    fn name(&self) -> &'static str {
        "CUCB"
    }

    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        // Per-arm score table in one chunked sweep (`ln t` and the
        // unplayed-arm sentinel hoisted), bit-identical to `arm_index`.
        kernels::cucb_scores_into(
            self.estimates.means(),
            self.estimates.counts(),
            t,
            &mut self.weights_scratch,
        );
        self.family
            .argmax_by_arm_weights(&self.weights_scratch, &self.graph)
            .expect("CUCB requires a non-empty feasible family")
    }

    fn update(&mut self, _t: usize, feedback: &CombinatorialFeedback) {
        self.total_pulls += 1;
        // Only the played arms are updated: their realised rewards are read off
        // the observation list, which is sorted by arm id and always contains
        // the played arms.
        for &arm in &feedback.strategy {
            if let Ok(pos) = feedback
                .observations
                .binary_search_by_key(&arm, |&(a, _)| a)
            {
                if arm < self.estimates.len() {
                    self.estimates.update(arm, feedback.observations[pos].1);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.estimates.reset();
        self.total_pulls = 0;
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.estimates)
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.estimates.save_state(&mut state);
        state.counts.push(vec![self.total_pulls]);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.estimates.load_state(&mut reader)?;
        let total = reader.counts(1)?[0];
        reader.finish()?;
        self.total_pulls = total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(policy: &mut Cucb, bandit: &NetworkedBandit, n: usize, seed: u64) -> Vec<Vec<ArmId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let s = policy.select_strategy(t);
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
            pulls.push(s);
        }
        pulls
    }

    #[test]
    fn only_played_arms_are_updated() {
        let graph = generators::complete(4);
        let family = StrategyFamily::exactly_m(4, 2);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
        let mut policy = Cucb::new(graph, family);
        let mut rng = StdRng::seed_from_u64(1);
        let fb = bandit.pull_strategy(&[0, 1], &mut rng).unwrap();
        policy.update(1, &fb);
        assert_eq!(policy.play_count(0), 1);
        assert_eq!(policy.play_count(1), 1);
        assert_eq!(policy.play_count(2), 0);
        assert_eq!(policy.play_count(3), 0);
    }

    #[test]
    fn converges_to_the_best_pair() {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.85, 0.9]);
        let family = StrategyFamily::exactly_m(5, 2);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = Cucb::new(graph, family);
        let pulls = run(&mut policy, &bandit, 4000, 2);
        let best = pulls[3000..]
            .iter()
            .filter(|s| s.as_slice() == [3, 4])
            .count();
        assert!(best > 800, "best pair selected only {best}/1000");
    }

    #[test]
    fn selections_respect_the_family() {
        let mut rng = StdRng::seed_from_u64(3);
        let graph = generators::erdos_renyi(8, 0.4, &mut rng);
        let family = StrategyFamily::independent_sets(2);
        let bandit =
            NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(8, &mut rng)).unwrap();
        let mut policy = Cucb::new(graph.clone(), family.clone());
        for s in run(&mut policy, &bandit, 150, 4) {
            assert!(family.contains(&s, &graph), "infeasible {s:?}");
        }
    }

    #[test]
    fn unplayed_arm_index_is_finite_and_dominant() {
        let graph = generators::edgeless(3);
        let policy = Cucb::new(graph, StrategyFamily::at_most_m(3, 1));
        let idx = policy.arm_index(0, 100);
        assert!(idx.is_finite());
        // It must dominate any realised mean (≤ 1) plus a typical bonus.
        assert!(idx > 2.0);
    }

    #[test]
    fn reset_and_name() {
        let graph = generators::edgeless(3);
        let family = StrategyFamily::at_most_m(3, 1);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(3)).unwrap();
        let mut policy = Cucb::new(graph, family);
        run(&mut policy, &bandit, 10, 5);
        policy.reset();
        assert!((0..3).all(|a| policy.play_count(a) == 0));
        assert_eq!(policy.name(), "CUCB");
    }
}
