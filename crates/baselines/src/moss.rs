//! MOSS — Minimax Optimal Strategy in the Stochastic case (Audibert & Bubeck).
//!
//! This is the baseline the paper compares DFL-SSO against in Fig. 3. Unlike
//! DFL-SSO it updates its estimate only from the pulled arm's *direct* reward:
//! side observations are ignored, which is exactly the handicap the comparison
//! is designed to expose.

use netband_core::estimator::{moss_index, ArmEstimators};
use netband_core::kernels;
use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// The MOSS policy over `K` independent arms.
///
/// Two variants are provided: the **anytime** variant uses the current time slot
/// `t` in the index (matching Equation (5) without side observation, and the
/// variant simulated by the paper), while the **horizon-aware** variant plugs in
/// a fixed horizon `n` as in the original MOSS paper.
#[derive(Debug, Clone)]
pub struct Moss {
    /// Flat per-arm pull counts and running means — the same struct-of-arrays
    /// storage the DFL policies use, so selection is one kernel sweep. The
    /// per-arm recurrence is [`RunningMean`](netband_core::estimator::RunningMean)'s,
    /// bit for bit.
    estimates: ArmEstimators,
    /// `Some(n)` for the horizon-aware variant, `None` for the anytime variant.
    horizon: Option<usize>,
}

impl Moss {
    /// Anytime MOSS over `num_arms` arms.
    pub fn new(num_arms: usize) -> Self {
        Moss {
            estimates: ArmEstimators::new(num_arms),
            horizon: None,
        }
    }

    /// Horizon-aware MOSS: the index uses the fixed horizon `n` instead of the
    /// current time slot.
    pub fn with_horizon(num_arms: usize, horizon: usize) -> Self {
        Moss {
            estimates: ArmEstimators::new(num_arms),
            horizon: Some(horizon.max(1)),
        }
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// Number of times an arm has been pulled.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn pull_count(&self, arm: ArmId) -> u64 {
        self.estimates.count(arm)
    }

    /// The MOSS index of an arm at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn index(&self, arm: ArmId, t: usize) -> f64 {
        let time = self.horizon.unwrap_or(t);
        moss_index(
            self.estimates.mean(arm),
            self.estimates.count(arm),
            time,
            self.num_arms(),
        )
    }
}

impl SinglePlayPolicy for Moss {
    fn name(&self) -> &'static str {
        "MOSS"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        debug_assert!(self.num_arms() > 0, "cannot select from zero arms");
        // Fused kernel sweep; `max_by` with partial_cmp-or-Equal is exactly
        // the kernel's last-max tie-breaking, so selections are unchanged.
        let time = self.horizon.unwrap_or(t);
        kernels::moss_argmax(
            self.estimates.means(),
            self.estimates.counts(),
            time,
            self.num_arms(),
        )
        .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        // MOSS ignores side observations: only the pulled arm's direct reward is
        // folded in.
        if feedback.arm < self.estimates.len() {
            self.estimates.update(feedback.arm, feedback.direct_reward);
        }
    }

    fn reset(&mut self) {
        self.estimates.reset();
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.estimates)
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.estimates.save_state(&mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.estimates.load_state(&mut reader)?;
        reader.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(policy: &mut Moss, bandit: &NetworkedBandit, n: usize, seed: u64) -> Vec<ArmId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            pulls.push(arm);
        }
        pulls
    }

    #[test]
    fn ignores_side_observations() {
        let graph = generators::complete(4);
        let bandit = NetworkedBandit::new(graph, ArmSet::linear_bernoulli(4)).unwrap();
        let mut policy = Moss::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let fb = bandit.pull_single(0, &mut rng);
        policy.update(1, &fb);
        assert_eq!(policy.pull_count(0), 1);
        for arm in 1..4 {
            assert_eq!(policy.pull_count(arm), 0, "arm {arm} should be untouched");
        }
    }

    #[test]
    fn explores_every_arm_once_first() {
        let graph = generators::edgeless(5);
        let bandit = NetworkedBandit::new(graph, ArmSet::linear_bernoulli(5)).unwrap();
        let mut policy = Moss::new(5);
        let pulls = run(&mut policy, &bandit, 5, 2);
        let mut sorted = pulls;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn converges_to_the_best_arm() {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9]);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut policy = Moss::new(5);
        let pulls = run(&mut policy, &bandit, 3000, 3);
        let tail_best = pulls[2000..].iter().filter(|&&a| a == 4).count();
        assert!(tail_best > 850, "best arm pulled only {tail_best}/1000");
    }

    #[test]
    fn horizon_variant_uses_fixed_horizon() {
        let mut anytime = Moss::new(3);
        let mut horizon = Moss::with_horizon(3, 10_000);
        let fb = SinglePlayFeedback {
            arm: 0,
            direct_reward: 0.5,
            side_reward: 0.5,
            observations: vec![(0, 0.5)],
        };
        anytime.update(1, &fb);
        horizon.update(1, &fb);
        // Early in the run the horizon-aware index is larger because n >> t.
        assert!(horizon.index(0, 2) > anytime.index(0, 2));
    }

    #[test]
    fn reset_clears_counts() {
        let graph = generators::edgeless(3);
        let bandit = NetworkedBandit::new(graph, ArmSet::linear_bernoulli(3)).unwrap();
        let mut policy = Moss::new(3);
        run(&mut policy, &bandit, 10, 4);
        policy.reset();
        assert!((0..3).all(|a| policy.pull_count(a) == 0));
    }

    #[test]
    fn name_is_moss() {
        assert_eq!(Moss::new(2).name(), "MOSS");
    }
}
