//! ε-greedy: explore uniformly with probability ε, otherwise exploit the
//! empirically best arm. Both a fixed and a `c/t`-decaying schedule are
//! supported.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netband_core::estimator::{load_running_means, save_running_means, RunningMean};
use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// Exploration schedule for [`EpsilonGreedy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Constant exploration probability.
    Fixed(f64),
    /// `ε_t = min(1, c / t)` — the classic decaying schedule.
    Decaying {
        /// Numerator `c` of the schedule.
        c: f64,
    },
}

/// The ε-greedy policy.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    estimates: Vec<RunningMean>,
    schedule: Schedule,
    rng: StdRng,
    seed: u64,
}

impl EpsilonGreedy {
    /// Fixed-ε policy with the given exploration probability and RNG seed.
    pub fn new(num_arms: usize, epsilon: f64, seed: u64) -> Self {
        EpsilonGreedy {
            estimates: vec![RunningMean::new(); num_arms],
            schedule: Schedule::Fixed(epsilon.clamp(0.0, 1.0)),
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Decaying-ε policy (`ε_t = min(1, c/t)`).
    pub fn decaying(num_arms: usize, c: f64, seed: u64) -> Self {
        EpsilonGreedy {
            estimates: vec![RunningMean::new(); num_arms],
            schedule: Schedule::Decaying { c: c.max(0.0) },
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// The exploration probability at time `t`.
    pub fn epsilon(&self, t: usize) -> f64 {
        match self.schedule {
            Schedule::Fixed(e) => e,
            Schedule::Decaying { c } => (c / t.max(1) as f64).min(1.0),
        }
    }

    fn best_empirical(&self) -> ArmId {
        // Unpulled arms count as mean 0 here; the exploration step is what
        // discovers them. Ties break towards the smallest arm index.
        let mut best = 0;
        let mut best_mean = f64::NEG_INFINITY;
        for arm in 0..self.num_arms() {
            let mean = self.estimates[arm].mean();
            if mean > best_mean {
                best_mean = mean;
                best = arm;
            }
        }
        best
    }
}

impl SinglePlayPolicy for EpsilonGreedy {
    fn name(&self) -> &'static str {
        "EpsilonGreedy"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        debug_assert!(self.num_arms() > 0);
        if self.rng.gen::<f64>() < self.epsilon(t) {
            self.rng.gen_range(0..self.num_arms())
        } else {
            self.best_empirical()
        }
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        if feedback.arm < self.estimates.len() {
            self.estimates[feedback.arm].update(feedback.direct_reward);
        }
    }

    fn reset(&mut self) {
        for est in &mut self.estimates {
            est.reset();
        }
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        save_running_means(&self.estimates, &mut state);
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        load_running_means(&mut self.estimates, &mut reader)?;
        let rng = reader.rng()?;
        reader.finish()?;
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;

    fn run(policy: &mut EpsilonGreedy, n: usize, seed: u64) -> Vec<ArmId> {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9]);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            pulls.push(arm);
        }
        pulls
    }

    #[test]
    fn decaying_schedule_shrinks() {
        let policy = EpsilonGreedy::decaying(5, 5.0, 0);
        assert_eq!(policy.epsilon(1), 1.0);
        assert!((policy.epsilon(10) - 0.5).abs() < 1e-12);
        assert!(policy.epsilon(1000) < 0.01);
    }

    #[test]
    fn fixed_schedule_is_constant_and_clamped() {
        let policy = EpsilonGreedy::new(5, 0.2, 0);
        assert_eq!(policy.epsilon(1), 0.2);
        assert_eq!(policy.epsilon(9999), 0.2);
        assert_eq!(EpsilonGreedy::new(3, 7.0, 0).epsilon(1), 1.0);
    }

    #[test]
    fn mostly_exploits_the_best_arm_with_decaying_schedule() {
        let mut policy = EpsilonGreedy::decaying(5, 10.0, 42);
        let pulls = run(&mut policy, 3000, 1);
        let tail = pulls[2000..].iter().filter(|&&a| a == 4).count();
        assert!(tail > 700, "tail best pulls {tail}/1000");
    }

    #[test]
    fn pure_greedy_never_explores_after_start() {
        let mut policy = EpsilonGreedy::new(3, 0.0, 7);
        // With epsilon 0 the policy always picks the empirically best arm, which
        // starts as arm 0 (all means 0, ties to the first).
        for t in 1..=10 {
            assert_eq!(policy.select_arm(t), 0);
        }
    }

    #[test]
    fn reset_restores_seed_and_estimates() {
        let mut policy = EpsilonGreedy::new(5, 0.3, 123);
        let first: Vec<ArmId> = (1..=20).map(|t| policy.select_arm(t)).collect();
        policy.reset();
        let second: Vec<ArmId> = (1..=20).map(|t| policy.select_arm(t)).collect();
        assert_eq!(first, second, "reset must replay the same RNG stream");
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(EpsilonGreedy::new(2, 0.1, 0).name(), "EpsilonGreedy");
    }
}
