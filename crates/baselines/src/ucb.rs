//! UCB1 and UCB-Tuned (Auer, Cesa-Bianchi & Fischer).
//!
//! Distribution-dependent single-play baselines. Like MOSS they learn only from
//! the pulled arm's direct reward.

use netband_core::estimator::ArmEstimators;
use netband_core::kernels;
use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// Flat per-arm state shared by the two UCB variants: struct-of-arrays running
/// means plus a parallel sum-of-squares array for the variance estimate.
#[derive(Debug, Clone)]
struct UcbArms {
    estimates: ArmEstimators,
    sum_sq: Vec<f64>,
}

impl UcbArms {
    fn new(num_arms: usize) -> Self {
        UcbArms {
            estimates: ArmEstimators::new(num_arms),
            sum_sq: vec![0.0; num_arms],
        }
    }
    fn len(&self) -> usize {
        self.estimates.len()
    }
    fn update(&mut self, arm: ArmId, x: f64) {
        self.estimates.update(arm, x);
        self.sum_sq[arm] += x * x;
    }
    fn variance_estimate(&self, arm: ArmId) -> f64 {
        let n = self.estimates.count(arm) as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.estimates.mean(arm);
        (self.sum_sq[arm] / n - mean * mean).max(0.0)
    }
    fn reset(&mut self) {
        self.estimates.reset();
        self.sum_sq.fill(0.0);
    }

    fn save_state(&self, out: &mut PolicyState) {
        self.estimates.save_state(out);
        out.floats.push(self.sum_sq.clone());
    }

    fn load_state(&mut self, reader: &mut PolicyStateReader<'_>) -> Result<(), PolicyStateError> {
        self.estimates.load_state(reader)?;
        let sum_sq = reader.floats(self.sum_sq.len())?;
        self.sum_sq.copy_from_slice(sum_sq);
        Ok(())
    }
}

/// Classic UCB1: index `X̄_i + sqrt(2 ln t / T_i)`.
#[derive(Debug, Clone)]
pub struct Ucb1 {
    arms: UcbArms,
}

impl Ucb1 {
    /// UCB1 over `num_arms` arms.
    pub fn new(num_arms: usize) -> Self {
        Ucb1 {
            arms: UcbArms::new(num_arms),
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// Number of pulls of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn pull_count(&self, arm: ArmId) -> u64 {
        self.arms.estimates.count(arm)
    }

    /// The UCB1 index of an arm at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn index(&self, arm: ArmId, t: usize) -> f64 {
        kernels::ucb1_index(
            self.arms.estimates.mean(arm),
            self.arms.estimates.count(arm),
            t,
        )
    }
}

impl SinglePlayPolicy for Ucb1 {
    fn name(&self) -> &'static str {
        "UCB1"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        // Fused kernel sweep, bit-identical to `argmax_last` over `index`.
        kernels::ucb1_argmax(self.arms.estimates.means(), self.arms.estimates.counts(), t)
            .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        if feedback.arm < self.arms.len() {
            self.arms.update(feedback.arm, feedback.direct_reward);
        }
    }

    fn reset(&mut self) {
        self.arms.reset();
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.arms.estimates)
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.arms.save_state(&mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.arms.load_state(&mut reader)?;
        reader.finish()
    }
}

/// UCB-Tuned: the exploration width is scaled by an empirical-variance term,
/// `min(1/4, V_i(T_i))`, which is usually much tighter than UCB1 for Bernoulli
/// rewards.
#[derive(Debug, Clone)]
pub struct UcbTuned {
    arms: UcbArms,
}

impl UcbTuned {
    /// UCB-Tuned over `num_arms` arms.
    pub fn new(num_arms: usize) -> Self {
        UcbTuned {
            arms: UcbArms::new(num_arms),
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// The empirical variance estimate `V_i(T_i)` of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn variance_estimate(&self, arm: ArmId) -> f64 {
        self.arms.variance_estimate(arm)
    }

    /// The UCB-Tuned index of an arm at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn index(&self, arm: ArmId, t: usize) -> f64 {
        kernels::ucb_tuned_index(
            self.arms.estimates.mean(arm),
            self.arms.estimates.count(arm),
            self.arms.sum_sq[arm],
            t,
        )
    }
}

impl SinglePlayPolicy for UcbTuned {
    fn name(&self) -> &'static str {
        "UCB-Tuned"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        // Fused kernel sweep over the three parallel arrays, bit-identical to
        // `argmax_last` over `index`.
        kernels::ucb_tuned_argmax(
            self.arms.estimates.means(),
            self.arms.estimates.counts(),
            &self.arms.sum_sq,
            t,
        )
        .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        if feedback.arm < self.arms.len() {
            self.arms.update(feedback.arm, feedback.direct_reward);
        }
    }

    fn reset(&mut self) {
        self.arms.reset();
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.arms.estimates)
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.arms.save_state(&mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.arms.load_state(&mut reader)?;
        reader.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run<P: SinglePlayPolicy>(
        policy: &mut P,
        bandit: &NetworkedBandit,
        n: usize,
        seed: u64,
    ) -> Vec<ArmId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            pulls.push(arm);
        }
        pulls
    }

    fn test_bandit() -> NetworkedBandit {
        let graph = generators::edgeless(5);
        NetworkedBandit::new(graph, ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9])).unwrap()
    }

    #[test]
    fn ucb1_converges_to_best_arm() {
        let bandit = test_bandit();
        let mut policy = Ucb1::new(5);
        let pulls = run(&mut policy, &bandit, 3000, 1);
        let tail = pulls[2000..].iter().filter(|&&a| a == 4).count();
        assert!(tail > 800, "UCB1 best-arm tail pulls {tail}/1000");
    }

    #[test]
    fn ucb_tuned_converges_to_best_arm() {
        let bandit = test_bandit();
        let mut policy = UcbTuned::new(5);
        let pulls = run(&mut policy, &bandit, 3000, 2);
        let tail = pulls[2000..].iter().filter(|&&a| a == 4).count();
        assert!(tail > 800, "UCB-Tuned best-arm tail pulls {tail}/1000");
    }

    #[test]
    fn indices_are_infinite_before_first_pull() {
        let policy = Ucb1::new(3);
        assert_eq!(policy.index(0, 1), f64::INFINITY);
        let tuned = UcbTuned::new(3);
        assert_eq!(tuned.index(2, 1), f64::INFINITY);
    }

    #[test]
    fn ucb1_index_shrinks_with_pulls() {
        let mut policy = Ucb1::new(2);
        let fb = |arm, reward| SinglePlayFeedback {
            arm,
            direct_reward: reward,
            side_reward: reward,
            observations: vec![(arm, reward)],
        };
        policy.update(1, &fb(0, 0.5));
        let once = policy.index(0, 100);
        for t in 2..=50 {
            policy.update(t, &fb(0, 0.5));
        }
        assert!(policy.index(0, 100) < once);
    }

    #[test]
    fn ucb_tuned_variance_estimate_is_zero_for_constant_rewards() {
        let mut policy = UcbTuned::new(1);
        for t in 1..=20 {
            policy.update(
                t,
                &SinglePlayFeedback {
                    arm: 0,
                    direct_reward: 0.7,
                    side_reward: 0.7,
                    observations: vec![(0, 0.7)],
                },
            );
        }
        assert!(policy.variance_estimate(0) < 1e-9);
    }

    #[test]
    fn reset_and_names() {
        let mut u1 = Ucb1::new(2);
        let mut ut = UcbTuned::new(2);
        assert_eq!(u1.name(), "UCB1");
        assert_eq!(ut.name(), "UCB-Tuned");
        let fb = SinglePlayFeedback {
            arm: 0,
            direct_reward: 1.0,
            side_reward: 1.0,
            observations: vec![(0, 1.0)],
        };
        u1.update(1, &fb);
        ut.update(1, &fb);
        u1.reset();
        ut.reset();
        assert_eq!(u1.pull_count(0), 0);
        assert_eq!(ut.index(0, 1), f64::INFINITY);
    }
}
