//! Beta–Bernoulli Thompson sampling.
//!
//! A strong Bayesian baseline for the single-play scenarios. Rewards in `[0, 1]`
//! are handled by Bernoulli "binarisation": a reward `x` is treated as a success
//! with probability `x` (Agrawal & Goyal's trick), which preserves the mean.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netband_core::{PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy};
use netband_env::SinglePlayFeedback;

use crate::ArmId;

/// Thompson sampling with a `Beta(1, 1)` prior per arm.
#[derive(Debug, Clone)]
pub struct ThompsonBernoulli {
    successes: Vec<f64>,
    failures: Vec<f64>,
    rng: StdRng,
    seed: u64,
}

impl ThompsonBernoulli {
    /// Creates the policy over `num_arms` arms with the given RNG seed.
    pub fn new(num_arms: usize, seed: u64) -> Self {
        ThompsonBernoulli {
            successes: vec![1.0; num_arms],
            failures: vec![1.0; num_arms],
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.successes.len()
    }

    /// Posterior mean of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn posterior_mean(&self, arm: ArmId) -> f64 {
        self.successes[arm] / (self.successes[arm] + self.failures[arm])
    }

    /// Draws one Beta(successes, failures) sample for an arm.
    fn sample_posterior(&mut self, arm: ArmId) -> f64 {
        // Beta(a, b) = Ga / (Ga + Gb); a simple Gamma sampler via the
        // sum-of-exponentials trick is not valid for non-integer shapes, so use
        // the Jöhnk/ratio method through two gamma draws approximated by
        // Marsaglia–Tsang is overkill here: with integer-ish pseudo-counts the
        // normal approximation of the Beta posterior is accurate enough for a
        // baseline, but to stay exact we use the inverse-CDF-free "two gamma"
        // construction with the Marsaglia–Tsang sampler.
        let a = self.successes[arm];
        let b = self.failures[arm];
        let x = marsaglia_tsang_gamma(a, &mut self.rng);
        let y = marsaglia_tsang_gamma(b, &mut self.rng);
        if x + y <= 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// Gamma(shape, 1) sampling (Marsaglia–Tsang, with the boost for shape < 1).
fn marsaglia_tsang_gamma(shape: f64, rng: &mut StdRng) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return marsaglia_tsang_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl SinglePlayPolicy for ThompsonBernoulli {
    fn name(&self) -> &'static str {
        "Thompson"
    }

    fn select_arm(&mut self, _t: usize) -> ArmId {
        debug_assert!(self.num_arms() > 0);
        let samples: Vec<f64> = (0..self.num_arms())
            .map(|arm| self.sample_posterior(arm))
            .collect();
        samples
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        let arm = feedback.arm;
        if arm >= self.successes.len() {
            return;
        }
        // Binarise a [0,1] reward: success with probability equal to the reward.
        let success = self.rng.gen::<f64>() < feedback.direct_reward;
        if success {
            self.successes[arm] += 1.0;
        } else {
            self.failures[arm] += 1.0;
        }
    }

    fn reset(&mut self) {
        for s in &mut self.successes {
            *s = 1.0;
        }
        for f in &mut self.failures {
            *f = 1.0;
        }
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        state.floats.push(self.successes.clone());
        state.floats.push(self.failures.clone());
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        let successes = reader.floats(self.successes.len())?;
        let failures = reader.floats(self.failures.len())?;
        let rng = reader.rng()?;
        reader.finish()?;
        self.successes.copy_from_slice(successes);
        self.failures.copy_from_slice(failures);
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;

    #[test]
    fn posterior_mean_starts_at_half() {
        let policy = ThompsonBernoulli::new(4, 0);
        for arm in 0..4 {
            assert!((policy.posterior_mean(arm) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn posterior_tracks_observed_rewards() {
        let mut policy = ThompsonBernoulli::new(2, 1);
        for t in 1..=200 {
            policy.update(
                t,
                &SinglePlayFeedback {
                    arm: 0,
                    direct_reward: 1.0,
                    side_reward: 1.0,
                    observations: vec![(0, 1.0)],
                },
            );
            policy.update(
                t,
                &SinglePlayFeedback {
                    arm: 1,
                    direct_reward: 0.0,
                    side_reward: 0.0,
                    observations: vec![(1, 0.0)],
                },
            );
        }
        assert!(policy.posterior_mean(0) > 0.95);
        assert!(policy.posterior_mean(1) < 0.05);
    }

    #[test]
    fn converges_to_the_best_arm() {
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9]);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        let mut policy = ThompsonBernoulli::new(5, 7);
        let mut rng = StdRng::seed_from_u64(2);
        let mut tail_best = 0;
        for t in 1..=3000 {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            if t > 2000 && arm == 4 {
                tail_best += 1;
            }
        }
        assert!(tail_best > 850, "best arm pulled only {tail_best}/1000");
    }

    #[test]
    fn reset_replays_the_same_decisions() {
        let mut policy = ThompsonBernoulli::new(4, 99);
        let first: Vec<ArmId> = (1..=10).map(|t| policy.select_arm(t)).collect();
        policy.reset();
        let second: Vec<ArmId> = (1..=10).map(|t| policy.select_arm(t)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(ThompsonBernoulli::new(1, 0).name(), "Thompson");
    }
}
