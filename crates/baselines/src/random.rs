//! Uniform-random policies — the sanity floor every learning policy must beat.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netband_core::{
    CombinatorialPolicy, PolicyState, PolicyStateError, PolicyStateReader, SinglePlayPolicy,
};
use netband_env::{CombinatorialFeedback, SinglePlayFeedback};
use netband_graph::StrategyBank;

use crate::ArmId;

/// Pulls an arm uniformly at random every time slot.
#[derive(Debug, Clone)]
pub struct RandomSingle {
    num_arms: usize,
    rng: StdRng,
    seed: u64,
}

impl RandomSingle {
    /// Creates the policy over `num_arms` arms with the given RNG seed.
    pub fn new(num_arms: usize, seed: u64) -> Self {
        RandomSingle {
            num_arms,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl SinglePlayPolicy for RandomSingle {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn select_arm(&mut self, _t: usize) -> ArmId {
        debug_assert!(self.num_arms > 0);
        self.rng.gen_range(0..self.num_arms.max(1))
    }

    fn update(&mut self, _t: usize, _feedback: &SinglePlayFeedback) {}

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        let rng = reader.rng()?;
        reader.finish()?;
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

/// Pulls a uniformly random strategy from an explicitly enumerated feasible
/// set (held as flat [`StrategyBank`] rows).
#[derive(Debug, Clone)]
pub struct RandomCombinatorial {
    strategies: StrategyBank,
    rng: StdRng,
    seed: u64,
}

impl RandomCombinatorial {
    /// Creates the policy over an explicit feasible set.
    ///
    /// # Panics
    ///
    /// Panics if `strategies` is empty — a combinatorial policy must have at
    /// least one feasible strategy to play.
    pub fn new(strategies: impl Into<StrategyBank>, seed: u64) -> Self {
        let strategies: StrategyBank = strategies.into();
        assert!(
            !strategies.is_empty(),
            "RandomCombinatorial requires a non-empty feasible set"
        );
        RandomCombinatorial {
            strategies,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Number of feasible strategies.
    pub fn num_strategies(&self) -> usize {
        self.strategies.len()
    }
}

impl CombinatorialPolicy for RandomCombinatorial {
    fn name(&self) -> &'static str {
        "RandomCombinatorial"
    }

    fn select_strategy(&mut self, _t: usize) -> Vec<ArmId> {
        let idx = self.rng.gen_range(0..self.strategies.len());
        self.strategies.row(idx).to_vec()
    }

    fn update(&mut self, _t: usize, _feedback: &CombinatorialFeedback) {}

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        let rng = reader.rng()?;
        reader.finish()?;
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_single_covers_all_arms() {
        let mut policy = RandomSingle::new(5, 3);
        let mut seen = std::collections::BTreeSet::new();
        for t in 1..=200 {
            seen.insert(policy.select_arm(t));
        }
        assert_eq!(seen.len(), 5);
        assert_eq!(policy.name(), "Random");
    }

    #[test]
    fn random_single_reset_replays() {
        let mut policy = RandomSingle::new(7, 11);
        let a: Vec<ArmId> = (1..=30).map(|t| policy.select_arm(t)).collect();
        policy.reset();
        let b: Vec<ArmId> = (1..=30).map(|t| policy.select_arm(t)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn random_combinatorial_only_plays_feasible_strategies() {
        let feasible = vec![vec![0], vec![1, 2], vec![3]];
        let mut policy = RandomCombinatorial::new(feasible.clone(), 5);
        for t in 1..=100 {
            let s = policy.select_strategy(t);
            assert!(feasible.contains(&s), "{s:?} not in the feasible set");
        }
        assert_eq!(policy.num_strategies(), 3);
        assert_eq!(policy.name(), "RandomCombinatorial");
    }

    #[test]
    #[should_panic(expected = "non-empty feasible set")]
    fn random_combinatorial_rejects_empty_family() {
        let _ = RandomCombinatorial::new(vec![], 0);
    }
}
