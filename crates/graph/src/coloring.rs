//! Graph colouring and exact minimum clique covers.
//!
//! A clique cover of `G` is a proper colouring of the complement graph, so good
//! colouring heuristics translate directly into tighter constants for the
//! Theorem 1 / Theorem 2 bounds. This module provides:
//!
//! * [`greedy_coloring`] — sequential colouring in a caller-supplied order;
//! * [`dsatur_coloring`] — the DSATUR heuristic (usually fewer colours than
//!   naive greedy);
//! * [`exact_chromatic_number`] — branch-and-bound exact colouring for small
//!   graphs;
//! * [`dsatur_clique_cover`] / [`exact_minimum_clique_cover_size`] — the
//!   corresponding clique covers of `G` via its complement.

use crate::clique::CliqueCover;
use crate::graph::RelationGraph;
use crate::ArmId;

/// Sequential (greedy) colouring in the given vertex order. Returns the colour
/// of every vertex; colours are `0..num_colours`.
///
/// Vertices missing from `order` are coloured after the listed ones, in index
/// order; duplicates are ignored.
pub fn greedy_coloring(graph: &RelationGraph, order: &[ArmId]) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut colors = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    let full_order: Vec<ArmId> = order
        .iter()
        .copied()
        .filter(|&v| v < n)
        .chain(0..n)
        .filter(|&v| {
            if seen[v] {
                false
            } else {
                seen[v] = true;
                true
            }
        })
        .collect();
    for v in full_order {
        let mut used: Vec<bool> = vec![false; n.max(1)];
        for &u in graph.neighbors(v) {
            if colors[u] != usize::MAX {
                used[colors[u]] = true;
            }
        }
        let color = (0..).find(|&c| c >= used.len() || !used[c]).unwrap_or(0);
        colors[v] = color;
    }
    colors
}

/// DSATUR colouring: always colour next the vertex with the highest saturation
/// (number of distinct colours among its neighbours), breaking ties by degree.
pub fn dsatur_coloring(graph: &RelationGraph) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut colors = vec![usize::MAX; n];
    for _ in 0..n {
        // Pick the uncoloured vertex with the highest saturation.
        let v = (0..n)
            .filter(|&v| colors[v] == usize::MAX)
            .max_by_key(|&v| {
                let mut neighbour_colors: Vec<usize> = graph
                    .neighbors(v)
                    .iter()
                    .filter_map(|&u| (colors[u] != usize::MAX).then_some(colors[u]))
                    .collect();
                neighbour_colors.sort_unstable();
                neighbour_colors.dedup();
                (
                    neighbour_colors.len(),
                    graph.degree(v),
                    std::cmp::Reverse(v),
                )
            });
        let Some(v) = v else { break };
        let mut used = vec![false; n.max(1)];
        for &u in graph.neighbors(v) {
            if colors[u] != usize::MAX {
                used[colors[u]] = true;
            }
        }
        colors[v] = (0..).find(|&c| c >= used.len() || !used[c]).unwrap_or(0);
    }
    colors
}

/// Number of colours used by a colouring (0 for an empty graph).
pub fn num_colors(colors: &[usize]) -> usize {
    colors
        .iter()
        .filter(|&&c| c != usize::MAX)
        .map(|&c| c + 1)
        .max()
        .unwrap_or(0)
}

/// Checks that a colouring is proper (no edge joins two vertices of the same
/// colour and every vertex is coloured).
pub fn is_proper_coloring(graph: &RelationGraph, colors: &[usize]) -> bool {
    if colors.len() != graph.num_vertices() {
        return false;
    }
    if colors.contains(&usize::MAX) {
        return false;
    }
    graph.edges().all(|(u, v)| colors[u] != colors[v])
}

/// Exact chromatic number by branch and bound, seeded with the DSATUR upper
/// bound. Intended for graphs of up to ~20 vertices (tests, small strategy
/// graphs); larger inputs still terminate but may take exponential time.
pub fn exact_chromatic_number(graph: &RelationGraph) -> usize {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = num_colors(&dsatur_coloring(graph));
    let mut colors = vec![usize::MAX; n];
    // Order vertices by decreasing degree for stronger pruning.
    let mut order: Vec<ArmId> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

    fn solve(
        graph: &RelationGraph,
        order: &[ArmId],
        idx: usize,
        used_colors: usize,
        colors: &mut Vec<usize>,
        best: &mut usize,
    ) {
        if used_colors >= *best {
            return; // cannot improve
        }
        if idx == order.len() {
            *best = used_colors;
            return;
        }
        let v = order[idx];
        let mut forbidden = vec![false; used_colors + 1];
        for &u in graph.neighbors(v) {
            if colors[u] != usize::MAX && colors[u] <= used_colors && colors[u] < forbidden.len() {
                forbidden[colors[u]] = true;
            }
        }
        // Try existing colours first, then (at most) one new colour.
        for (c, &color_taken) in forbidden.iter().enumerate().take(used_colors) {
            if !color_taken {
                colors[v] = c;
                solve(graph, order, idx + 1, used_colors, colors, best);
                colors[v] = usize::MAX;
            }
        }
        colors[v] = used_colors;
        solve(graph, order, idx + 1, used_colors + 1, colors, best);
        colors[v] = usize::MAX;
    }

    solve(graph, &order, 0, 0, &mut colors, &mut best);
    best
}

/// Clique cover obtained from a DSATUR colouring of the complement graph.
pub fn dsatur_clique_cover(graph: &RelationGraph) -> CliqueCover {
    let complement = graph.complement();
    let colors = dsatur_coloring(&complement);
    cover_from_coloring(&colors)
}

/// Exact minimum clique cover (exact colouring of the complement). Exponential;
/// use only on small graphs.
pub fn exact_minimum_clique_cover_size(graph: &RelationGraph) -> usize {
    exact_chromatic_number(&graph.complement())
}

fn cover_from_coloring(colors: &[usize]) -> CliqueCover {
    let k = num_colors(colors);
    let mut classes: Vec<Vec<ArmId>> = vec![Vec::new(); k];
    for (v, &c) in colors.iter().enumerate() {
        if c != usize::MAX {
            classes[c].push(v);
        }
    }
    classes.retain(|c| !c.is_empty());
    CliqueCover::new(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::greedy_clique_cover;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_coloring_is_proper() {
        let mut rng = StdRng::seed_from_u64(1);
        for &p in &[0.2, 0.5, 0.8] {
            let g = generators::erdos_renyi(25, p, &mut rng);
            let order: Vec<usize> = (0..25).collect();
            let colors = greedy_coloring(&g, &order);
            assert!(is_proper_coloring(&g, &colors), "p={p}");
        }
    }

    #[test]
    fn greedy_coloring_handles_partial_and_duplicate_orders() {
        let g = generators::path(5);
        let colors = greedy_coloring(&g, &[4, 4, 2, 99]);
        assert!(is_proper_coloring(&g, &colors));
    }

    #[test]
    fn dsatur_is_proper_and_never_worse_than_max_degree_plus_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::erdos_renyi(30, 0.4, &mut rng);
        let colors = dsatur_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert!(num_colors(&colors) <= g.max_degree() + 1);
    }

    #[test]
    fn chromatic_numbers_of_known_graphs() {
        assert_eq!(exact_chromatic_number(&generators::complete(5)), 5);
        assert_eq!(exact_chromatic_number(&generators::edgeless(5)), 1);
        assert_eq!(exact_chromatic_number(&generators::path(6)), 2);
        // Odd cycle needs 3 colours, even cycle needs 2.
        assert_eq!(exact_chromatic_number(&generators::cycle(5)), 3);
        assert_eq!(exact_chromatic_number(&generators::cycle(6)), 2);
        assert_eq!(exact_chromatic_number(&RelationGraph::empty(0)), 0);
    }

    #[test]
    fn exact_is_never_above_dsatur() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let g = generators::erdos_renyi(12, 0.4, &mut rng);
            let exact = exact_chromatic_number(&g);
            let dsatur = num_colors(&dsatur_coloring(&g));
            assert!(exact <= dsatur, "exact {exact} vs dsatur {dsatur}");
            assert!(exact >= 1);
        }
    }

    #[test]
    fn dsatur_clique_cover_is_valid_and_competitive_with_greedy() {
        let mut rng = StdRng::seed_from_u64(4);
        for &p in &[0.3, 0.6, 0.9] {
            let g = generators::erdos_renyi(20, p, &mut rng);
            let cover = dsatur_clique_cover(&g);
            assert!(cover.is_valid_for(&g), "invalid cover at p={p}");
            // Not necessarily smaller than greedy on every instance, but never
            // absurdly larger.
            let greedy = greedy_clique_cover(&g).len();
            assert!(
                cover.len() <= greedy + 3,
                "dsatur {} vs greedy {}",
                cover.len(),
                greedy
            );
        }
    }

    #[test]
    fn exact_cover_size_bounds_the_heuristics_below() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = generators::erdos_renyi(10, 0.5, &mut rng);
            let exact = exact_minimum_clique_cover_size(&g);
            assert!(exact <= greedy_clique_cover(&g).len());
            assert!(exact <= dsatur_clique_cover(&g).len());
            assert!(exact >= 1);
        }
    }

    #[test]
    fn cover_sizes_of_known_graphs() {
        assert_eq!(exact_minimum_clique_cover_size(&generators::complete(6)), 1);
        assert_eq!(exact_minimum_clique_cover_size(&generators::edgeless(6)), 6);
        assert_eq!(
            exact_minimum_clique_cover_size(&generators::disjoint_cliques(3, 3)),
            3
        );
        // A path 0-1-2-3 can be covered by the two edges.
        assert_eq!(exact_minimum_clique_cover_size(&generators::path(4)), 2);
    }

    #[test]
    fn improper_colorings_are_rejected() {
        let g = generators::path(3);
        assert!(!is_proper_coloring(&g, &[0, 0, 1]));
        assert!(!is_proper_coloring(&g, &[0, 1]));
        assert!(!is_proper_coloring(&g, &[0, usize::MAX, 1]));
        assert!(is_proper_coloring(&g, &[0, 1, 0]));
    }
}
