//! Flat compressed-sparse-row (CSR) runtime representation of a relation graph.
//!
//! [`RelationGraph`] stores one `Vec` per vertex, which is convenient to build
//! and mutate but scatters neighbourhoods across the heap. The per-round work
//! of every policy in this workspace — scanning closed neighbourhoods, summing
//! estimates over them, building observation sets — is pure index arithmetic
//! over a *fixed* arm set, so the simulation hot path runs on [`CsrGraph`]: a
//! frozen snapshot with all neighbourhoods packed into contiguous arrays that
//! are read sequentially from cache.
//!
//! A [`CsrGraph`] is created once per instance (see
//! [`RelationGraph::to_csr`]) and is immutable afterwards; mutation stays on
//! [`RelationGraph`], which remains the construction-time representation.

use serde::{Deserialize, Serialize};

use crate::clique::greedy_clique_cover;
use crate::graph::RelationGraph;
use crate::ArmId;

/// Immutable flat (CSR) snapshot of a [`RelationGraph`], plus the derived
/// tables the learning policies consult every round.
///
/// # Layout invariants
///
/// For a graph over `K` vertices:
///
/// * `offsets` has length `K + 1`, is non-decreasing, `offsets[0] == 0`, and
///   `offsets[K] == neighbors.len()`. The open neighbourhood of vertex `v` is
///   the slice `neighbors[offsets[v]..offsets[v + 1]]`, sorted strictly
///   increasing (no duplicates, no self-loop).
/// * `closed_offsets` / `closed_neighbors` follow the same scheme for the
///   *closed* neighbourhood `N_v = {v} ∪ N(v)`; each row is sorted strictly
///   increasing and contains `v` itself, so its length is `degree(v) + 1`.
/// * `degrees[v] == offsets[v + 1] - offsets[v]` (cached so degree queries do
///   not touch the offset array).
/// * The clique tables describe the deterministic greedy clique cover of the
///   graph (see [`greedy_clique_cover`]): `clique_offsets` /
///   `clique_members` pack the cover's cliques in cover order, and
///   `clique_of[v]` is the index of the (unique) clique containing `v`. The
///   cliques partition the vertex set, so `clique_members` is a permutation
///   of `0..K`.
///
/// Neighbourhood accessors return borrowed slices into these arrays; the hot
/// path never allocates.
///
/// # Example
///
/// ```
/// use netband_graph::RelationGraph;
///
/// let g = RelationGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
/// let csr = g.to_csr();
/// assert_eq!(csr.neighbors(1), &[0, 2]);
/// assert_eq!(csr.closed_neighborhood(1), &[0, 1, 2]);
/// assert_eq!(csr.degree(1), 2);
/// // The triangle {0,1,2} and the edge {3,4} form a two-clique cover.
/// assert_eq!(csr.num_cliques(), 2);
/// assert_eq!(csr.clique(csr.clique_of(4)), csr.clique(csr.clique_of(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    num_edges: usize,
    offsets: Vec<usize>,
    neighbors: Vec<ArmId>,
    closed_offsets: Vec<usize>,
    closed_neighbors: Vec<ArmId>,
    degrees: Vec<u32>,
    clique_of: Vec<u32>,
    clique_offsets: Vec<usize>,
    clique_members: Vec<ArmId>,
}

impl CsrGraph {
    /// Freezes a [`RelationGraph`] into its flat runtime representation.
    pub fn from_graph(graph: &RelationGraph) -> Self {
        let k = graph.num_vertices();
        let mut offsets = Vec::with_capacity(k + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.num_edges());
        let mut closed_offsets = Vec::with_capacity(k + 1);
        let mut closed_neighbors = Vec::with_capacity(2 * graph.num_edges() + k);
        let mut degrees = Vec::with_capacity(k);
        offsets.push(0);
        closed_offsets.push(0);
        for v in 0..k {
            let row = graph.neighbors(v);
            neighbors.extend_from_slice(row);
            offsets.push(neighbors.len());
            degrees.push(row.len() as u32);
            // Closed row: merge v into its (sorted) open row.
            let split = row.partition_point(|&u| u < v);
            closed_neighbors.extend_from_slice(&row[..split]);
            closed_neighbors.push(v);
            closed_neighbors.extend_from_slice(&row[split..]);
            closed_offsets.push(closed_neighbors.len());
        }
        let cover = greedy_clique_cover(graph);
        let mut clique_of = vec![0u32; k];
        let mut clique_offsets = Vec::with_capacity(cover.len() + 1);
        let mut clique_members = Vec::with_capacity(k);
        clique_offsets.push(0);
        for (c, clique) in cover.cliques().iter().enumerate() {
            for &v in clique {
                clique_of[v] = c as u32;
            }
            clique_members.extend_from_slice(clique);
            clique_offsets.push(clique_members.len());
        }
        CsrGraph {
            num_edges: graph.num_edges(),
            offsets,
            neighbors,
            closed_offsets,
            closed_neighbors,
            degrees,
            clique_of,
            clique_offsets,
            clique_members,
        }
    }

    /// Number of vertices (arms) `K`.
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: ArmId) -> usize {
        self.degrees[v] as usize
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0) as usize
    }

    /// Maximum closed-neighbourhood size `max_v |N_v|`.
    pub fn max_closed_neighborhood(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.max_degree() + 1
        }
    }

    /// The open neighbourhood `N(v)` as a borrowed slice (sorted, excludes
    /// `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: ArmId) -> &[ArmId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The closed neighbourhood `N_v = {v} ∪ N(v)` as a borrowed slice
    /// (sorted, includes `v`) — no allocation, unlike
    /// [`RelationGraph::closed_neighborhood`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn closed_neighborhood(&self, v: ArmId) -> &[ArmId] {
        &self.closed_neighbors[self.closed_offsets[v]..self.closed_offsets[v + 1]]
    }

    /// Returns `true` if `(u, v)` is an edge (binary search on `u`'s row;
    /// out-of-range vertices are simply not adjacent).
    pub fn has_edge(&self, u: ArmId, v: ArmId) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Writes the closed neighbourhood of a *set* of vertices,
    /// `Y_S = ∪_{v ∈ S} N_v`, into `out` (sorted, deduplicated), reusing
    /// `mark` as the visited table. Equivalent to
    /// [`RelationGraph::closed_neighborhood_of_set`] without the per-call
    /// `BTreeSet`.
    ///
    /// `mark` is resized to `K` on demand and is all-`false` again on return,
    /// so one buffer can be reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `set` contains an out-of-range vertex.
    pub fn closed_neighborhood_of_set_into(
        &self,
        set: &[ArmId],
        mark: &mut Vec<bool>,
        out: &mut Vec<ArmId>,
    ) {
        if mark.len() < self.num_vertices() {
            mark.resize(self.num_vertices(), false);
        }
        out.clear();
        for &v in set {
            for &u in self.closed_neighborhood(v) {
                if !mark[u] {
                    mark[u] = true;
                    out.push(u);
                }
            }
        }
        out.sort_unstable();
        for &u in out.iter() {
            mark[u] = false;
        }
    }

    /// Number of cliques in the precomputed greedy clique cover — the quantity
    /// `C` of Theorems 1 and 2, available without recomputing the cover.
    pub fn num_cliques(&self) -> usize {
        self.clique_offsets.len() - 1
    }

    /// The members of clique `c` of the cover (sorted by the cover's internal
    /// order, matching [`greedy_clique_cover`]).
    ///
    /// # Panics
    ///
    /// Panics if `c >= num_cliques()`.
    pub fn clique(&self, c: usize) -> &[ArmId] {
        &self.clique_members[self.clique_offsets[c]..self.clique_offsets[c + 1]]
    }

    /// Index of the cover clique containing `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn clique_of(&self, v: ArmId) -> usize {
        self.clique_of[v] as usize
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = ArmId> {
        0..self.num_vertices()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (ArmId, ArmId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| v > u)
                .map(move |&v| (u, v))
        })
    }

    /// Thaws the snapshot back into a mutable [`RelationGraph`]. Round-trips
    /// exactly: `g.to_csr().to_relation_graph() == g`.
    pub fn to_relation_graph(&self) -> RelationGraph {
        let edges: Vec<(ArmId, ArmId)> = self.edges().collect();
        RelationGraph::from_edges(self.num_vertices(), &edges)
    }
}

impl From<&RelationGraph> for CsrGraph {
    fn from(graph: &RelationGraph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

impl Default for CsrGraph {
    /// The snapshot of the zero-vertex graph (all layout invariants hold
    /// vacuously). Exists so holders can mark `CsrGraph` fields
    /// `#[serde(skip)]` — the snapshot is derived state and is rebuilt from
    /// the source graph after deserialization rather than persisted.
    fn default() -> Self {
        CsrGraph::from_graph(&RelationGraph::empty(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_edge() -> RelationGraph {
        RelationGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)])
    }

    #[test]
    fn csr_matches_relation_graph_accessors() {
        let g = triangle_plus_edge();
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.max_degree(), 2);
        assert_eq!(csr.max_closed_neighborhood(), 3);
        for v in g.vertices() {
            assert_eq!(csr.neighbors(v), g.neighbors(v), "open row of {v}");
            assert_eq!(csr.degree(v), g.degree(v), "degree of {v}");
            assert_eq!(
                csr.closed_neighborhood(v),
                g.closed_neighborhood(v).as_slice(),
                "closed row of {v}"
            );
        }
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn zero_and_edgeless_graphs() {
        let empty = RelationGraph::empty(0).to_csr();
        assert!(empty.is_empty());
        assert_eq!(empty.max_degree(), 0);
        assert_eq!(empty.max_closed_neighborhood(), 0);
        assert_eq!(empty.num_cliques(), 0);
        let edgeless = RelationGraph::empty(3).to_csr();
        assert_eq!(edgeless.neighbors(1), &[] as &[ArmId]);
        assert_eq!(edgeless.closed_neighborhood(1), &[1]);
        assert_eq!(edgeless.num_cliques(), 3);
    }

    #[test]
    fn round_trip_back_to_relation_graph() {
        let g = triangle_plus_edge();
        assert_eq!(g.to_csr().to_relation_graph(), g);
    }

    #[test]
    fn edges_iterator_matches_relation_graph() {
        let g = triangle_plus_edge();
        let csr = g.to_csr();
        assert_eq!(
            csr.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn clique_tables_match_the_greedy_cover() {
        let g = triangle_plus_edge();
        let csr = g.to_csr();
        let cover = greedy_clique_cover(&g);
        assert_eq!(csr.num_cliques(), cover.len());
        for (c, clique) in cover.cliques().iter().enumerate() {
            assert_eq!(csr.clique(c), clique.as_slice());
        }
        for v in g.vertices() {
            assert!(
                csr.clique(csr.clique_of(v)).contains(&v),
                "vertex {v} missing from its assigned clique"
            );
        }
    }

    #[test]
    fn set_union_matches_reference_and_clears_marks() {
        let g = triangle_plus_edge();
        let csr = g.to_csr();
        let mut mark = Vec::new();
        let mut out = Vec::new();
        for set in [vec![0], vec![0, 3], vec![4, 0, 4], vec![]] {
            csr.closed_neighborhood_of_set_into(&set, &mut mark, &mut out);
            assert_eq!(out, g.closed_neighborhood_of_set(&set), "set {set:?}");
            assert!(mark.iter().all(|&m| !m), "marks must be reset");
        }
    }
}
