//! Plain-text import/export of relation graphs.
//!
//! A library users adopt needs a way to get their *own* relation graphs in and
//! out: this module reads and writes the ubiquitous whitespace-separated
//! edge-list format (one `u v` pair per line, `#` comments, isolated vertices
//! implied by a header line `K <num_vertices>`), and exports Graphviz DOT for
//! visual inspection of experiment instances.

use std::fmt::Write as _;

use crate::graph::{GraphError, RelationGraph};

/// Errors produced while parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not contain exactly two vertex ids (or a valid header).
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A vertex id could not be parsed as an unsigned integer.
    InvalidVertex {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The edge was structurally invalid (self-loop or out of range).
    InvalidEdge {
        /// 1-based line number.
        line: usize,
        /// The underlying graph error.
        source: GraphError,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MalformedLine { line, content } => {
                write!(f, "line {line}: expected `u v` or `K n`, got `{content}`")
            }
            ParseError::InvalidVertex { line, token } => {
                write!(f, "line {line}: `{token}` is not a vertex id")
            }
            ParseError::InvalidEdge { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialises a graph as an edge list with a `K <n>` header.
///
/// The output round-trips through [`parse_edge_list`], including isolated
/// vertices.
pub fn to_edge_list(graph: &RelationGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# netband relation graph: {graph}");
    let _ = writeln!(out, "K {}", graph.num_vertices());
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses an edge list.
///
/// Accepted lines: blank lines, `# comments`, a `K <n>` header fixing the
/// vertex count, and `u v` edges. Without a header the vertex count is
/// `max(u, v) + 1` over all edges.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending line.
pub fn parse_edge_list(text: &str) -> Result<RelationGraph, ParseError> {
    let mut declared: Option<usize> = None;
    let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (u, v, line)
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["K" | "k", n] => {
                let n = n.parse::<usize>().map_err(|_| ParseError::InvalidVertex {
                    line: line_no,
                    token: (*n).to_owned(),
                })?;
                declared = Some(declared.map_or(n, |d| d.max(n)));
            }
            [a, b] => {
                let parse = |token: &str| {
                    token
                        .parse::<usize>()
                        .map_err(|_| ParseError::InvalidVertex {
                            line: line_no,
                            token: token.to_owned(),
                        })
                };
                edges.push((parse(a)?, parse(b)?, line_no));
            }
            _ => {
                return Err(ParseError::MalformedLine {
                    line: line_no,
                    content: line.to_owned(),
                })
            }
        }
    }
    let implied = edges
        .iter()
        .map(|&(u, v, _)| u.max(v) + 1)
        .max()
        .unwrap_or(0);
    let n = declared.unwrap_or(0).max(implied);
    let mut graph = RelationGraph::empty(n);
    for (u, v, line) in edges {
        graph
            .add_edge(u, v)
            .map_err(|source| ParseError::InvalidEdge { line, source })?;
    }
    Ok(graph)
}

/// Serialises a graph in Graphviz DOT format (undirected).
pub fn to_dot(graph: &RelationGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize_dot_id(name));
    for v in graph.vertices() {
        let _ = writeln!(out, "    {v};");
    }
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "    {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

fn sanitize_dot_id(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_list_round_trips_including_isolated_vertices() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = generators::erdos_renyi(12, 0.3, &mut rng);
        // Force an isolated vertex.
        let isolated: Vec<usize> = g.neighbors(11).to_vec();
        for v in isolated {
            g.remove_edge(11, v);
        }
        let text = to_edge_list(&g);
        let parsed = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn parse_accepts_comments_blanks_and_no_header() {
        let text = "# a triangle\n\n0 1\n1 2\n0 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn parse_header_extends_the_vertex_count() {
        let g = parse_edge_list("K 6\n0 1\n").unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 1);
        // The larger of header and implied count wins.
        let g2 = parse_edge_list("K 2\n0 5\n").unwrap();
        assert_eq!(g2.num_vertices(), 6);
    }

    #[test]
    fn parse_empty_input_gives_the_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_vertices(), 0);
        let g2 = parse_edge_list("# nothing here\n").unwrap();
        assert!(g2.is_empty());
    }

    #[test]
    fn parse_reports_errors_with_line_numbers() {
        let err = parse_edge_list("0 1\nnot an edge line\n").unwrap_err();
        assert!(matches!(err, ParseError::MalformedLine { line: 2, .. }));
        assert!(err.to_string().contains("line 2"));

        let err = parse_edge_list("0 x\n").unwrap_err();
        assert!(matches!(err, ParseError::InvalidVertex { line: 1, .. }));

        let err = parse_edge_list("3 3\n").unwrap_err();
        assert!(matches!(err, ParseError::InvalidEdge { line: 1, .. }));
    }

    #[test]
    fn duplicate_edges_are_tolerated() {
        let g = parse_edge_list("0 1\n1 0\n0 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dot_output_lists_every_vertex_and_edge() {
        let g = generators::path(3);
        let dot = to_dot(&g, "my graph 1");
        assert!(dot.starts_with("graph my_graph_1 {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("    2;"));
        assert!(dot.trim_end().ends_with('}'));
        // Identifiers that start with a digit get prefixed.
        assert!(to_dot(&g, "1abc").starts_with("graph g_1abc"));
        assert!(to_dot(&g, "").starts_with("graph g_ "));
    }
}
