//! Clique covers and maximal-clique enumeration.
//!
//! The regret bounds of Theorems 1 and 2 depend on `C`, the size of a clique
//! cover of the vertex-induced subgraph `H` of arms whose gap exceeds the
//! threshold `δ_0`. Computing a minimum clique cover is NP-hard, so — like the
//! paper's analysis, which only needs *some* cover — we provide a deterministic
//! greedy cover plus an exact Bron–Kerbosch maximal-clique enumerator for small
//! graphs and for validating the greedy result in tests.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::graph::RelationGraph;
use crate::ArmId;

/// A clique cover: a list of vertex-disjoint cliques whose union is the vertex
/// set of the graph it was computed from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CliqueCover {
    cliques: Vec<Vec<ArmId>>,
}

impl CliqueCover {
    /// Creates a cover from raw cliques. No validation is performed; use
    /// [`CliqueCover::is_valid_for`] to check.
    pub fn new(cliques: Vec<Vec<ArmId>>) -> Self {
        CliqueCover { cliques }
    }

    /// The cliques of the cover, each sorted.
    pub fn cliques(&self) -> &[Vec<ArmId>] {
        &self.cliques
    }

    /// Number of cliques — the quantity `C` in Theorems 1 and 2.
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// Returns `true` if the cover contains no cliques.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// Checks that the cover is valid for `graph`: every part is a clique, the
    /// parts are pairwise disjoint, and every vertex of `graph` is covered.
    pub fn is_valid_for(&self, graph: &RelationGraph) -> bool {
        let mut seen: BTreeSet<ArmId> = BTreeSet::new();
        for clique in &self.cliques {
            if !graph.is_clique(clique) {
                return false;
            }
            for &v in clique {
                if v >= graph.num_vertices() || !seen.insert(v) {
                    return false;
                }
            }
        }
        seen.len() == graph.num_vertices()
    }

    /// Size of the largest clique in the cover (0 if empty).
    pub fn max_clique_size(&self) -> usize {
        self.cliques.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Greedy clique cover.
///
/// Vertices are visited in descending degree order; each unassigned vertex seeds
/// a new clique which is grown greedily by adding unassigned vertices adjacent to
/// every current member. The result is deterministic for a given graph.
///
/// The size of the returned cover upper-bounds the clique cover number
/// `θ(G)` = chromatic number of the complement; Theorems 1 and 2 hold for any
/// valid cover, so a greedy cover is sufficient both for the algorithmic use and
/// for evaluating the bound numerically.
pub fn greedy_clique_cover(graph: &RelationGraph) -> CliqueCover {
    let n = graph.num_vertices();
    let mut order: Vec<ArmId> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse((graph.degree(v), std::cmp::Reverse(v))));
    let mut assigned = vec![false; n];
    let mut cliques: Vec<Vec<ArmId>> = Vec::new();
    for &seed in &order {
        if assigned[seed] {
            continue;
        }
        let mut clique = vec![seed];
        assigned[seed] = true;
        // Candidates: unassigned neighbours of the seed, visited in seed-adjacency
        // order (sorted), kept only if adjacent to every clique member so far.
        for &cand in graph.neighbors(seed) {
            if assigned[cand] {
                continue;
            }
            if clique.iter().all(|&m| graph.has_edge(m, cand)) {
                clique.push(cand);
                assigned[cand] = true;
            }
        }
        clique.sort_unstable();
        cliques.push(clique);
    }
    // Deterministic output order: by smallest vertex.
    cliques.sort_by_key(|c| c.first().copied().unwrap_or(usize::MAX));
    CliqueCover::new(cliques)
}

/// All maximal cliques of the graph (Bron–Kerbosch with pivoting).
///
/// Intended for small graphs (tests, strategy graphs over modest `|F|`); the
/// number of maximal cliques can be exponential in general. Enumeration stops
/// after `limit` cliques if a limit is given.
pub fn maximal_cliques(graph: &RelationGraph, limit: Option<usize>) -> Vec<Vec<ArmId>> {
    let n = graph.num_vertices();
    let mut result: Vec<Vec<ArmId>> = Vec::new();
    let mut r: Vec<ArmId> = Vec::new();
    let p: BTreeSet<ArmId> = (0..n).collect();
    let x: BTreeSet<ArmId> = BTreeSet::new();
    bron_kerbosch(graph, &mut r, p, x, &mut result, limit);
    for clique in &mut result {
        clique.sort_unstable();
    }
    result.sort();
    result
}

fn bron_kerbosch(
    graph: &RelationGraph,
    r: &mut Vec<ArmId>,
    p: BTreeSet<ArmId>,
    x: BTreeSet<ArmId>,
    out: &mut Vec<Vec<ArmId>>,
    limit: Option<usize>,
) {
    if let Some(lim) = limit {
        if out.len() >= lim {
            return;
        }
    }
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    // Pivot: vertex of P ∪ X with the most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| graph.neighbors(u).iter().filter(|v| p.contains(v)).count());
    let candidates: Vec<ArmId> = match pivot {
        Some(u) => p
            .iter()
            .copied()
            .filter(|v| !graph.has_edge(u, *v))
            .collect(),
        None => p.iter().copied().collect(),
    };
    let mut p = p;
    let mut x = x;
    for v in candidates {
        let neighbors: BTreeSet<ArmId> = graph.neighbors(v).iter().copied().collect();
        r.push(v);
        let p_next: BTreeSet<ArmId> = p.intersection(&neighbors).copied().collect();
        let x_next: BTreeSet<ArmId> = x.intersection(&neighbors).copied().collect();
        bron_kerbosch(graph, r, p_next, x_next, out, limit);
        r.pop();
        p.remove(&v);
        x.insert(v);
        if let Some(lim) = limit {
            if out.len() >= lim {
                return;
            }
        }
    }
}

/// A large clique found greedily (not necessarily maximum).
///
/// Seeds at the highest-degree vertex and grows like one round of
/// [`greedy_clique_cover`].
pub fn greedy_max_clique(graph: &RelationGraph) -> Vec<ArmId> {
    greedy_clique_cover(graph)
        .cliques()
        .iter()
        .max_by_key(|c| c.len())
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cover_of_empty_graph_is_empty() {
        let g = RelationGraph::empty(0);
        let cover = greedy_clique_cover(&g);
        assert!(cover.is_empty());
        assert!(cover.is_valid_for(&g));
        assert_eq!(cover.max_clique_size(), 0);
    }

    #[test]
    fn cover_of_edgeless_graph_is_singletons() {
        let g = generators::edgeless(7);
        let cover = greedy_clique_cover(&g);
        assert_eq!(cover.len(), 7);
        assert!(cover.is_valid_for(&g));
        assert_eq!(cover.max_clique_size(), 1);
    }

    #[test]
    fn cover_of_complete_graph_is_one_clique() {
        let g = generators::complete(9);
        let cover = greedy_clique_cover(&g);
        assert_eq!(cover.len(), 1);
        assert!(cover.is_valid_for(&g));
        assert_eq!(cover.max_clique_size(), 9);
    }

    #[test]
    fn cover_of_disjoint_cliques_is_exact() {
        let g = generators::disjoint_cliques(4, 5);
        let cover = greedy_clique_cover(&g);
        assert_eq!(cover.len(), 4);
        assert!(cover.is_valid_for(&g));
    }

    #[test]
    fn cover_of_star_is_about_half() {
        // A star's edges are disjoint cliques of size 2 plus leftover leaves; the
        // cover number of K_{1,n-1} is n-1 but greedy pairs the hub with one leaf.
        let g = generators::star(6);
        let cover = greedy_clique_cover(&g);
        assert!(cover.is_valid_for(&g));
        assert_eq!(cover.len(), 5);
    }

    #[test]
    fn greedy_cover_is_valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(17);
        for &p in &[0.1, 0.3, 0.6, 0.9] {
            let g = generators::erdos_renyi(40, p, &mut rng);
            let cover = greedy_clique_cover(&g);
            assert!(cover.is_valid_for(&g), "invalid cover for p={p}");
            assert!(cover.len() <= 40);
        }
    }

    #[test]
    fn denser_graphs_need_fewer_cliques() {
        let mut rng = StdRng::seed_from_u64(23);
        let sparse = generators::erdos_renyi(60, 0.1, &mut rng);
        let dense = generators::erdos_renyi(60, 0.8, &mut rng);
        let c_sparse = greedy_clique_cover(&sparse).len();
        let c_dense = greedy_clique_cover(&dense).len();
        assert!(
            c_dense < c_sparse,
            "dense cover {c_dense} should be smaller than sparse cover {c_sparse}"
        );
    }

    #[test]
    fn invalid_covers_are_rejected() {
        let g = generators::path(4); // edges 0-1, 1-2, 2-3
                                     // Not a clique.
        let bad = CliqueCover::new(vec![vec![0, 2], vec![1], vec![3]]);
        assert!(!bad.is_valid_for(&g));
        // Missing vertex.
        let missing = CliqueCover::new(vec![vec![0, 1], vec![2]]);
        assert!(!missing.is_valid_for(&g));
        // Overlapping cliques.
        let overlap = CliqueCover::new(vec![vec![0, 1], vec![1, 2], vec![3]]);
        assert!(!overlap.is_valid_for(&g));
        // Out-of-range vertex.
        let oob = CliqueCover::new(vec![vec![0, 1], vec![2, 3], vec![9]]);
        assert!(!oob.is_valid_for(&g));
        // A valid one for contrast.
        let good = CliqueCover::new(vec![vec![0, 1], vec![2, 3]]);
        assert!(good.is_valid_for(&g));
    }

    #[test]
    fn bron_kerbosch_finds_all_maximal_cliques_of_small_graphs() {
        // Triangle plus pendant: maximal cliques {0,1,2} and {2,3}.
        let g = RelationGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cliques = maximal_cliques(&g, None);
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn bron_kerbosch_on_edgeless_graph_lists_singletons() {
        let g = generators::edgeless(4);
        let cliques = maximal_cliques(&g, None);
        assert_eq!(cliques, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn bron_kerbosch_respects_limit() {
        let g = generators::complete(10);
        let cliques = maximal_cliques(&g, Some(1));
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 10);
    }

    #[test]
    fn greedy_max_clique_finds_the_planted_clique() {
        let g = generators::disjoint_cliques(3, 6);
        let clique = greedy_max_clique(&g);
        assert_eq!(clique.len(), 6);
        assert!(g.is_clique(&clique));
    }

    #[test]
    fn greedy_cover_size_upper_bounds_via_maximal_cliques() {
        // On small random graphs the greedy cover can never use fewer cliques than
        // vertices divided by the maximum clique size.
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::erdos_renyi(18, 0.5, &mut rng);
        let cover = greedy_clique_cover(&g);
        let max_clique = maximal_cliques(&g, None)
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(1);
        let lower = g.num_vertices().div_ceil(max_clique);
        assert!(cover.len() >= lower);
    }
}
