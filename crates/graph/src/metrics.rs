//! Structural metrics of relation graphs.
//!
//! The amount of side observation a relation graph provides — and therefore the
//! constants in Theorems 1–4 — is governed by its structure: degree
//! distribution, clustering (how "clique-like" neighbourhoods are), distances,
//! and degeneracy. These metrics are used by the workload presets, the
//! ablations, and the documentation of experimental instances.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::graph::RelationGraph;
use crate::ArmId;

/// A summary of the structural properties of a relation graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Number of vertices `K`.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Edge density `2|E| / (K(K-1))`.
    pub density: f64,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Global clustering coefficient (transitivity): `3·triangles / wedges`.
    pub clustering_coefficient: f64,
    /// Number of connected components.
    pub num_components: usize,
    /// Diameter of the largest component (0 for graphs with ≤ 1 vertex).
    pub diameter: usize,
    /// Degeneracy (the largest `d` such that some subgraph has minimum degree
    /// `d`); a small degeneracy certifies sparse, tree-like structure.
    pub degeneracy: usize,
}

/// Computes all metrics of a graph.
pub fn metrics(graph: &RelationGraph) -> GraphMetrics {
    let n = graph.num_vertices();
    let degrees: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let components = graph.connected_components();
    GraphMetrics {
        num_vertices: n,
        num_edges: graph.num_edges(),
        density: graph.density(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        mean_degree: if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        },
        clustering_coefficient: clustering_coefficient(graph),
        num_components: components.len(),
        diameter: components
            .iter()
            .map(|c| component_diameter(graph, c))
            .max()
            .unwrap_or(0),
        degeneracy: degeneracy_ordering(graph).1,
    }
}

/// Global clustering coefficient (transitivity): `3 × #triangles / #wedges`,
/// defined as 0 when the graph has no wedge.
pub fn clustering_coefficient(graph: &RelationGraph) -> f64 {
    let n = graph.num_vertices();
    let mut triangles = 0usize;
    let mut wedges = 0usize;
    for v in 0..n {
        let d = graph.degree(v);
        wedges += d * d.saturating_sub(1) / 2;
        let neighbors = graph.neighbors(v);
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if graph.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner, i.e. 3 times in total.
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

/// Breadth-first distances from `source`; unreachable vertices get `usize::MAX`.
pub fn bfs_distances(graph: &RelationGraph, source: ArmId) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut dist = vec![usize::MAX; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &u in graph.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Diameter of a connected component given by its vertex list.
fn component_diameter(graph: &RelationGraph, component: &[ArmId]) -> usize {
    component
        .iter()
        .map(|&v| {
            bfs_distances(graph, v)
                .into_iter()
                .filter(|&d| d != usize::MAX)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Degeneracy ordering: repeatedly removes a minimum-degree vertex.
///
/// Returns the removal order and the degeneracy (the maximum degree observed at
/// removal time).
pub fn degeneracy_ordering(graph: &RelationGraph) -> (Vec<ArmId>, usize) {
    let n = graph.num_vertices();
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| (degree[v], v))
            .expect("at least one unremoved vertex remains");
        degeneracy = degeneracy.max(degree[v]);
        removed[v] = true;
        order.push(v);
        for &u in graph.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    (order, degeneracy)
}

/// Degree histogram: `histogram[d]` is the number of vertices with degree `d`.
pub fn degree_histogram(graph: &RelationGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    if graph.is_empty() {
        hist.clear();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metrics_of_a_complete_graph() {
        let g = generators::complete(6);
        let m = metrics(&g);
        assert_eq!(m.num_vertices, 6);
        assert_eq!(m.num_edges, 15);
        assert!((m.density - 1.0).abs() < 1e-12);
        assert_eq!(m.min_degree, 5);
        assert_eq!(m.max_degree, 5);
        assert!((m.clustering_coefficient - 1.0).abs() < 1e-12);
        assert_eq!(m.num_components, 1);
        assert_eq!(m.diameter, 1);
        assert_eq!(m.degeneracy, 5);
    }

    #[test]
    fn metrics_of_an_edgeless_graph() {
        let g = generators::edgeless(4);
        let m = metrics(&g);
        assert_eq!(m.num_edges, 0);
        assert_eq!(m.clustering_coefficient, 0.0);
        assert_eq!(m.num_components, 4);
        assert_eq!(m.diameter, 0);
        assert_eq!(m.degeneracy, 0);
        assert_eq!(m.mean_degree, 0.0);
    }

    #[test]
    fn metrics_of_the_empty_graph() {
        let g = RelationGraph::empty(0);
        let m = metrics(&g);
        assert_eq!(m.num_vertices, 0);
        assert_eq!(m.diameter, 0);
        assert!(degree_histogram(&g).is_empty());
    }

    #[test]
    fn path_metrics() {
        let g = generators::path(5);
        let m = metrics(&g);
        assert_eq!(m.diameter, 4);
        assert_eq!(m.degeneracy, 1);
        assert_eq!(m.clustering_coefficient, 0.0);
        assert_eq!(m.num_components, 1);
        assert_eq!(degree_histogram(&g), vec![0, 2, 3]);
    }

    #[test]
    fn star_has_no_triangles_and_degeneracy_one() {
        let g = generators::star(7);
        let m = metrics(&g);
        assert_eq!(m.clustering_coefficient, 0.0);
        assert_eq!(m.degeneracy, 1);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.max_degree, 6);
    }

    #[test]
    fn triangle_clustering_is_one() {
        let g = RelationGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = generators::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
        // Out-of-range source: everything unreachable.
        assert!(bfs_distances(&g, 99).iter().all(|&d| d == usize::MAX));
    }

    #[test]
    fn bfs_handles_disconnected_graphs() {
        let g = generators::disjoint_cliques(2, 3);
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[2], 1);
        assert_eq!(dist[3], usize::MAX);
    }

    #[test]
    fn degeneracy_of_disjoint_cliques() {
        let g = generators::disjoint_cliques(3, 4);
        let (order, d) = degeneracy_ordering(&g);
        assert_eq!(order.len(), 12);
        assert_eq!(d, 3);
    }

    #[test]
    fn barabasi_albert_is_more_clustered_than_sparse_er() {
        // Not a theorem, but robust for these sizes/seeds: BA with m=3 has far
        // more triangles than an ER graph of comparable density.
        let mut rng = StdRng::seed_from_u64(1);
        let ba = generators::barabasi_albert(80, 3, &mut rng);
        let er = generators::erdos_renyi(80, ba.density(), &mut rng);
        assert!(clustering_coefficient(&ba) > clustering_coefficient(&er));
    }

    #[test]
    fn metrics_are_serialisable() {
        let g = generators::cycle(5);
        let m = metrics(&g);
        // Round-trip through the serde data model used for experiment configs.
        let clone = m.clone();
        assert_eq!(m, clone);
        assert_eq!(m.diameter, 2);
    }
}
