//! The strategy relation graph `SG(F, L)` of Section IV.
//!
//! To run single-play machinery (DFL-SSO) over combinatorial strategies, the
//! paper builds a graph over the feasible set `F`: each strategy `s_x` becomes a
//! vertex ("com-arm"), and two strategies `s_x`, `s_y` are linked when playing one
//! reveals the reward of the other, i.e. when the component arms of `s_y` are
//! contained in `Y_x = ∪_{i ∈ s_x} N_i` *and* vice versa (observation must be
//! mutual for the symmetric update of Algorithm 2 to be justified).

use serde::{Deserialize, Serialize};

use crate::bank::StrategyBank;
use crate::graph::RelationGraph;
use crate::ArmId;

/// Index of a combinatorial strategy ("com-arm") within a feasible set `F`.
pub type StrategyId = usize;

/// The strategy relation graph built from an arm relation graph and a feasible
/// strategy set.
///
/// # Example (Fig. 2 of the paper)
///
/// ```
/// use netband_graph::{RelationGraph, StrategyRelationGraph};
///
/// // Arms 1..4 of the paper are 0..3 here; the relation graph is the path
/// // 0-1-2-3, and F is the set of independent sets of size ≤ 2.
/// let g = RelationGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let strategies = vec![
///     vec![0], vec![1], vec![2], vec![3],
///     vec![0, 2], vec![0, 3], vec![1, 3],
/// ];
/// let sg = StrategyRelationGraph::build(&g, strategies);
/// // s2 = {1} and s5 = {0, 2} observe each other, so they are neighbours.
/// assert!(sg.graph().has_edge(1, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyRelationGraph {
    /// The feasible strategies (flat rows, each a sorted set of arm ids).
    strategies: StrategyBank,
    /// `Y_x` for every strategy: the closed neighbourhood of its component arms
    /// (flat rows aligned with `strategies`).
    observation_sets: StrategyBank,
    /// The relation graph over com-arms.
    graph: RelationGraph,
}

impl StrategyRelationGraph {
    /// Builds the strategy relation graph for `strategies` over the arm relation
    /// graph `arm_graph`. Accepts either a flat [`StrategyBank`] or the nested
    /// `Vec<Vec<ArmId>>` layout (converted via `Into`).
    ///
    /// Strategies are normalised (sorted, deduplicated). Arms outside the graph
    /// are dropped from the strategies.
    ///
    /// The construction is `O(|F|² · M)` after precomputing the `Y_x` sets, which
    /// matches the explicit-enumeration regime in which Algorithm 2 operates.
    pub fn build(arm_graph: &RelationGraph, strategies: impl Into<StrategyBank>) -> Self {
        // Empty rows survive normalisation: com-arm ids must stay aligned
        // with the caller's enumeration.
        let strategies = strategies
            .into()
            .into_normalized(false, |v| v < arm_graph.num_vertices());
        let mut observation_sets =
            StrategyBank::with_capacity(strategies.len(), strategies.arms().len());
        for row in strategies.iter() {
            observation_sets.push_row(&arm_graph.closed_neighborhood_of_set(row));
        }
        let mut graph = RelationGraph::empty(strategies.len());
        for x in 0..strategies.len() {
            for y in (x + 1)..strategies.len() {
                let x_in_y = is_subset(strategies.row(x), observation_sets.row(y));
                let y_in_x = is_subset(strategies.row(y), observation_sets.row(x));
                if x_in_y && y_in_x {
                    graph
                        .add_edge(x, y)
                        .expect("strategy graph edges are valid");
                }
            }
        }
        StrategyRelationGraph {
            strategies,
            observation_sets,
            graph,
        }
    }

    /// Number of com-arms `|F|`.
    pub fn num_strategies(&self) -> usize {
        self.strategies.len()
    }

    /// The normalised feasible strategies as flat bank rows.
    pub fn strategies(&self) -> &StrategyBank {
        &self.strategies
    }

    /// The observation sets `Y_x` as flat bank rows aligned with
    /// [`StrategyRelationGraph::strategies`].
    pub fn observation_sets(&self) -> &StrategyBank {
        &self.observation_sets
    }

    /// The component arms of strategy `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn strategy(&self, x: StrategyId) -> &[ArmId] {
        self.strategies.row(x)
    }

    /// The observation set `Y_x` (closed neighbourhood of the component arms).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn observation_set(&self, x: StrategyId) -> &[ArmId] {
        self.observation_sets.row(x)
    }

    /// Maximum observation-set size `N = max_x |Y_x|` (Theorem 4's `N`).
    pub fn max_observation_set(&self) -> usize {
        self.observation_sets.max_row_len()
    }

    /// The relation graph over com-arms (vertex `x` is strategy `x`).
    pub fn graph(&self) -> &RelationGraph {
        &self.graph
    }

    /// Neighbouring com-arms of strategy `x` in `SG` — the strategies whose
    /// reward becomes observable when `x` is played.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn neighbors(&self, x: StrategyId) -> &[StrategyId] {
        self.graph.neighbors(x)
    }

    /// Strategies whose component arms are all contained in `observed` — i.e. the
    /// com-arms whose reward at this time slot can be reconstructed from a set of
    /// observed arms.
    pub fn strategies_observable_from(&self, observed: &[ArmId]) -> Vec<StrategyId> {
        (0..self.strategies.len())
            .filter(|&x| is_subset(self.strategies.row(x), observed))
            .collect()
    }
}

/// Returns `true` if every element of `a` (sorted) appears in `b` (sorted).
fn is_subset(a: &[ArmId], b: &[ArmId]) -> bool {
    let mut it = b.iter();
    'outer: for &x in a {
        for &y in it.by_ref() {
            if y == x {
                continue 'outer;
            }
            if y > x {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::independent::independent_sets_up_to;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig2() -> (RelationGraph, StrategyRelationGraph) {
        let g = RelationGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let strategies = vec![
            vec![0],
            vec![1],
            vec![2],
            vec![3],
            vec![0, 2],
            vec![0, 3],
            vec![1, 3],
        ];
        let sg = StrategyRelationGraph::build(&g, strategies);
        (g, sg)
    }

    #[test]
    fn is_subset_behaviour() {
        assert!(is_subset(&[], &[]));
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[1], &[0, 1, 2]));
        assert!(is_subset(&[0, 2], &[0, 1, 2, 3]));
        assert!(!is_subset(&[4], &[0, 1, 2, 3]));
        assert!(!is_subset(&[0, 2], &[0, 1]));
    }

    #[test]
    fn fig2_observation_sets_match_paper() {
        let (_, sg) = fig2();
        // Paper (1-indexed): N1={1,2}, N2={1,2,3}, N3={2,3,4}, N4={3,4}.
        assert_eq!(sg.observation_set(0), &[0, 1]);
        assert_eq!(sg.observation_set(1), &[0, 1, 2]);
        assert_eq!(sg.observation_set(2), &[1, 2, 3]);
        assert_eq!(sg.observation_set(3), &[2, 3]);
        assert_eq!(sg.observation_set(4), &[0, 1, 2, 3]);
        assert_eq!(sg.observation_set(5), &[0, 1, 2, 3]);
        assert_eq!(sg.observation_set(6), &[0, 1, 2, 3]);
        assert_eq!(sg.max_observation_set(), 4);
    }

    #[test]
    fn fig2_s2_and_s5_are_neighbours() {
        // The paper's worked example: s2={2} and s5={1,3} (1-indexed) observe
        // each other. 0-indexed these are strategies 1 and 4.
        let (_, sg) = fig2();
        assert!(sg.graph().has_edge(1, 4));
    }

    #[test]
    fn strategy_graph_edges_are_mutual_observations() {
        let (_, sg) = fig2();
        for x in 0..sg.num_strategies() {
            for y in 0..sg.num_strategies() {
                if x == y {
                    continue;
                }
                let mutual = is_subset(sg.strategy(x), sg.observation_set(y))
                    && is_subset(sg.strategy(y), sg.observation_set(x));
                assert_eq!(
                    sg.graph().has_edge(x, y),
                    mutual,
                    "edge ({x},{y}) disagrees with mutual observation"
                );
            }
        }
    }

    #[test]
    fn strategies_observable_from_observed_arms() {
        let (_, sg) = fig2();
        // Observing arms {0,1,2} reveals strategies {0},{1},{2},{0,2}.
        assert_eq!(sg.strategies_observable_from(&[0, 1, 2]), vec![0, 1, 2, 4]);
        // Observing everything reveals every strategy.
        assert_eq!(
            sg.strategies_observable_from(&[0, 1, 2, 3]).len(),
            sg.num_strategies()
        );
        // Observing nothing reveals nothing (no empty strategies in F here).
        assert!(sg.strategies_observable_from(&[]).is_empty());
    }

    #[test]
    fn build_normalises_and_filters_strategies() {
        let g = generators::path(3);
        let sg = StrategyRelationGraph::build(&g, vec![vec![2, 0, 2, 99], vec![1, 1]]);
        assert_eq!(sg.strategy(0), &[0, 2]);
        assert_eq!(sg.strategy(1), &[1]);
    }

    #[test]
    fn empty_feasible_set_is_allowed() {
        let g = generators::path(3);
        let sg = StrategyRelationGraph::build(&g, vec![]);
        assert_eq!(sg.num_strategies(), 0);
        assert_eq!(sg.max_observation_set(), 0);
        assert!(sg.strategies_observable_from(&[0, 1, 2]).is_empty());
    }

    #[test]
    fn dense_arm_graph_yields_dense_strategy_graph() {
        // On a complete arm graph every strategy observes every arm, so SG is
        // complete as well.
        let g = generators::complete(5);
        let strategies = independent_sets_up_to(&g, 1, None);
        let sg = StrategyRelationGraph::build(&g, strategies);
        assert_eq!(sg.num_strategies(), 5);
        assert_eq!(sg.graph().num_edges(), 5 * 4 / 2);
    }

    #[test]
    fn edgeless_arm_graph_yields_subset_relations_only() {
        // Without side observation, two distinct singleton strategies never
        // observe each other, so SG has no edges.
        let g = generators::edgeless(5);
        let strategies = independent_sets_up_to(&g, 1, None);
        let sg = StrategyRelationGraph::build(&g, strategies);
        assert_eq!(sg.graph().num_edges(), 0);
    }

    #[test]
    fn random_strategy_graphs_are_consistent() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::erdos_renyi(8, 0.4, &mut rng);
        let strategies = independent_sets_up_to(&g, 2, None);
        let sg = StrategyRelationGraph::build(&g, strategies.clone());
        assert_eq!(sg.num_strategies(), strategies.len());
        for x in 0..sg.num_strategies() {
            // Y_x always contains the component arms themselves.
            assert!(is_subset(sg.strategy(x), sg.observation_set(x)));
        }
    }
}
