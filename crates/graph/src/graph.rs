//! The undirected relation graph over arms.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ArmId;

/// Errors produced by graph constructors and mutators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint of an edge was not a valid vertex index.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: ArmId,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// A self-loop `(v, v)` was supplied; relation graphs are simple graphs.
    SelfLoop {
        /// The vertex that was connected to itself.
        vertex: ArmId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph over the `K` arms of a networked bandit instance.
///
/// The graph is stored as a vector of sorted neighbour sets, which keeps
/// neighbourhood queries (the hot path of every policy in this workspace) cheap
/// and deterministic.
///
/// Vertices are the arm indices `0..num_vertices()`.
///
/// # Example
///
/// ```
/// use netband_graph::RelationGraph;
///
/// let mut g = RelationGraph::empty(4);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(1, 2).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.closed_neighborhood(1), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationGraph {
    /// `adjacency[v]` holds the sorted, deduplicated neighbours of `v`.
    adjacency: Vec<Vec<ArmId>>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl RelationGraph {
    /// Creates a graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: usize) -> Self {
        RelationGraph {
            adjacency: vec![Vec::new(); num_vertices],
            num_edges: 0,
        }
    }

    /// Creates a graph from an edge list, ignoring duplicate edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `>= num_vertices` or is a self-loop.
    /// Use [`RelationGraph::try_from_edges`] for a fallible variant.
    pub fn from_edges(num_vertices: usize, edges: &[(ArmId, ArmId)]) -> Self {
        Self::try_from_edges(num_vertices, edges).expect("invalid edge list")
    }

    /// Fallible variant of [`RelationGraph::from_edges`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`] if the
    /// edge list is invalid.
    pub fn try_from_edges(
        num_vertices: usize,
        edges: &[(ArmId, ArmId)],
    ) -> Result<Self, GraphError> {
        let mut g = Self::empty(num_vertices);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Builds a graph from a symmetric boolean adjacency matrix.
    ///
    /// Only the strict upper triangle is consulted, so the input does not have to
    /// be perfectly symmetric; the diagonal is ignored.
    pub fn from_adjacency_matrix(matrix: &[Vec<bool>]) -> Self {
        let n = matrix.len();
        let mut g = Self::empty(n);
        for (u, row) in matrix.iter().enumerate() {
            for v in (u + 1)..n {
                if row.get(v).copied().unwrap_or(false) {
                    // Vertices are in range by construction.
                    let _ = g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Returns the dense adjacency matrix of the graph.
    pub fn adjacency_matrix(&self) -> Vec<Vec<bool>> {
        let n = self.num_vertices();
        let mut m = vec![vec![false; n]; n];
        for (u, row) in m.iter_mut().enumerate() {
            for &v in self.neighbors(u) {
                row[v] = true;
            }
        }
        m
    }

    /// Number of vertices (arms) `K`.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Edge density `2|E| / (K (K-1))`, defined as 0 for graphs with fewer than
    /// two vertices.
    pub fn density(&self) -> f64 {
        let n = self.num_vertices();
        if n < 2 {
            return 0.0;
        }
        (2 * self.num_edges) as f64 / (n * (n - 1)) as f64
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Adding an existing edge is a no-op.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range or if `u == v`.
    pub fn add_edge(&mut self, u: ArmId, v: ArmId) -> Result<(), GraphError> {
        let n = self.num_vertices();
        for w in [u, v] {
            if w >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: w,
                    num_vertices: n,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.has_edge(u, v) {
            return Ok(());
        }
        let pos_u = self.adjacency[u].binary_search(&v).unwrap_err();
        self.adjacency[u].insert(pos_u, v);
        let pos_v = self.adjacency[v].binary_search(&u).unwrap_err();
        self.adjacency[v].insert(pos_v, u);
        self.num_edges += 1;
        Ok(())
    }

    /// Removes the undirected edge `(u, v)` if present; returns whether an edge
    /// was removed.
    pub fn remove_edge(&mut self, u: ArmId, v: ArmId) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        if let Ok(pos) = self.adjacency[u].binary_search(&v) {
            self.adjacency[u].remove(pos);
            let pos_v = self.adjacency[v]
                .binary_search(&u)
                .expect("adjacency must be symmetric");
            self.adjacency[v].remove(pos_v);
            self.num_edges -= 1;
            true
        } else {
            false
        }
    }

    /// Returns `true` if `(u, v)` is an edge of the graph.
    pub fn has_edge(&self, u: ArmId, v: ArmId) -> bool {
        self.adjacency
            .get(u)
            .map(|ns| ns.binary_search(&v).is_ok())
            .unwrap_or(false)
    }

    /// The open neighbourhood `N(v)` (sorted, excludes `v` itself).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: ArmId) -> &[ArmId] {
        &self.adjacency[v]
    }

    /// The closed neighbourhood `N_v = {v} ∪ N(v)` (sorted).
    ///
    /// This is the set of arms observed (SSO/CSO) or collected (SSR/CSR) when the
    /// decision maker pulls `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn closed_neighborhood(&self, v: ArmId) -> Vec<ArmId> {
        let mut out = Vec::with_capacity(self.adjacency[v].len() + 1);
        let mut inserted = false;
        for &u in &self.adjacency[v] {
            if !inserted && u > v {
                out.push(v);
                inserted = true;
            }
            out.push(u);
        }
        if !inserted {
            out.push(v);
        }
        out
    }

    /// Closed neighbourhood of a set of vertices: `Y_S = ∪_{v ∈ S} N_v` (sorted).
    ///
    /// For a combinatorial strategy `s_x` this is the paper's `Y_x`, the set of
    /// arms observed (CSO) or whose rewards are collected (CSR).
    pub fn closed_neighborhood_of_set(&self, set: &[ArmId]) -> Vec<ArmId> {
        let mut out: BTreeSet<ArmId> = BTreeSet::new();
        for &v in set {
            out.insert(v);
            out.extend(self.adjacency[v].iter().copied());
        }
        out.into_iter().collect()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: ArmId) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum degree of the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Maximum closed-neighbourhood size `max_v |N_v|`; the paper's `N` bound for
    /// single strategies of size 1 (Theorem 4 uses `N = max_x |Y_x|`).
    pub fn max_closed_neighborhood(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.max_degree() + 1
        }
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`, in lexicographic
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (ArmId, ArmId)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().filter(move |&&v| v > u).map(move |&v| (u, v)))
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = ArmId> {
        0..self.num_vertices()
    }

    /// Returns the vertex-induced subgraph on `keep` together with the mapping
    /// from new vertex indices to original indices.
    ///
    /// Duplicate entries in `keep` are ignored; out-of-range entries are skipped.
    /// The returned mapping is sorted by original index.
    ///
    /// This is the graph-partition operation used in the proof of Theorem 1: arms
    /// whose gap `Δ_i` falls below the threshold `δ_0` are removed, and the regret
    /// analysis proceeds on the induced subgraph `H` via a clique cover.
    pub fn induced_subgraph(&self, keep: &[ArmId]) -> (RelationGraph, Vec<ArmId>) {
        let selected: BTreeSet<ArmId> = keep
            .iter()
            .copied()
            .filter(|&v| v < self.num_vertices())
            .collect();
        let mapping: Vec<ArmId> = selected.iter().copied().collect();
        let reverse: std::collections::HashMap<ArmId, usize> = mapping
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let mut g = RelationGraph::empty(mapping.len());
        for (new_u, &old_u) in mapping.iter().enumerate() {
            for &old_v in self.neighbors(old_u) {
                if old_v > old_u {
                    if let Some(&new_v) = reverse.get(&old_v) {
                        g.add_edge(new_u, new_v)
                            .expect("induced subgraph edges are always valid");
                    }
                }
            }
        }
        (g, mapping)
    }

    /// Freezes the graph into its flat runtime representation
    /// ([`crate::CsrGraph`]): packed neighbour arrays plus precomputed degree
    /// and clique-cover tables. The snapshot is immutable; later mutations of
    /// `self` are not reflected in it.
    pub fn to_csr(&self) -> crate::CsrGraph {
        crate::CsrGraph::from_graph(self)
    }

    /// Returns the complement graph (same vertices, edge iff not an edge here).
    pub fn complement(&self) -> RelationGraph {
        let n = self.num_vertices();
        let mut g = RelationGraph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v).expect("complement edges are valid");
                }
            }
        }
        g
    }

    /// Returns `true` if every pair of distinct vertices in `set` is adjacent.
    ///
    /// The empty set and singletons are cliques.
    pub fn is_clique(&self, set: &[ArmId]) -> bool {
        for (idx, &u) in set.iter().enumerate() {
            for &v in &set[idx + 1..] {
                if u == v {
                    continue;
                }
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if no pair of distinct vertices in `set` is adjacent.
    pub fn is_independent_set(&self, set: &[ArmId]) -> bool {
        for (idx, &u) in set.iter().enumerate() {
            for &v in &set[idx + 1..] {
                if u != v && self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Connected components, each sorted, ordered by smallest contained vertex.
    pub fn connected_components(&self) -> Vec<Vec<ArmId>> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &u in self.neighbors(v) {
                    if !seen[u] {
                        seen[u] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Returns `true` if the graph is connected (the empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }
}

impl fmt::Display for RelationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RelationGraph(K={}, |E|={}, density={:.3})",
            self.num_vertices(),
            self.num_edges(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_edge() -> RelationGraph {
        RelationGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)])
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = RelationGraph::empty(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.closed_neighborhood(3), vec![3]);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = RelationGraph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_closed_neighborhood(), 0);
        assert!(g.is_connected());
        assert_eq!(g.connected_components().len(), 0);
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = RelationGraph::empty(3);
        g.add_edge(0, 2).unwrap();
        g.add_edge(2, 0).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn add_edge_rejects_self_loop_and_out_of_range() {
        let mut g = RelationGraph::empty(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
        assert_eq!(
            g.add_edge(0, 3),
            Err(GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            })
        );
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = triangle_plus_edge();
        assert!(g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn closed_neighborhood_is_sorted_and_contains_self() {
        let g = triangle_plus_edge();
        assert_eq!(g.closed_neighborhood(0), vec![0, 1, 2]);
        assert_eq!(g.closed_neighborhood(3), vec![3, 4]);
        assert_eq!(g.closed_neighborhood(4), vec![3, 4]);
    }

    #[test]
    fn closed_neighborhood_of_set_unions_neighborhoods() {
        let g = triangle_plus_edge();
        assert_eq!(g.closed_neighborhood_of_set(&[0, 3]), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.closed_neighborhood_of_set(&[]), Vec::<usize>::new());
        // Duplicates in the input are harmless.
        assert_eq!(g.closed_neighborhood_of_set(&[0, 0]), vec![0, 1, 2]);
    }

    #[test]
    fn degrees_and_density() {
        let g = triangle_plus_edge();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.max_closed_neighborhood(), 3);
        let expected = 2.0 * 4.0 / (5.0 * 4.0);
        assert!((g.density() - expected).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle_plus_edge();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn adjacency_matrix_roundtrip() {
        let g = triangle_plus_edge();
        let m = g.adjacency_matrix();
        let g2 = RelationGraph::from_adjacency_matrix(&m);
        assert_eq!(g, g2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle_plus_edge();
        let (h, mapping) = g.induced_subgraph(&[0, 2, 4]);
        assert_eq!(mapping, vec![0, 2, 4]);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 1);
        assert!(h.has_edge(0, 1)); // original edge (0,2)
        assert!(!h.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_ignores_out_of_range_and_duplicates() {
        let g = triangle_plus_edge();
        let (h, mapping) = g.induced_subgraph(&[1, 1, 99]);
        assert_eq!(mapping, vec![1]);
        assert_eq!(h.num_vertices(), 1);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn complement_has_complementary_edges() {
        let g = triangle_plus_edge();
        let c = g.complement();
        let n = g.num_vertices();
        for u in 0..n {
            for v in (u + 1)..n {
                assert_ne!(g.has_edge(u, v), c.has_edge(u, v));
            }
        }
        assert_eq!(g.num_edges() + c.num_edges(), n * (n - 1) / 2);
    }

    #[test]
    fn clique_and_independent_set_checks() {
        let g = triangle_plus_edge();
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[]));
        assert!(g.is_clique(&[4]));
        assert!(g.is_independent_set(&[0, 3]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn connected_components_are_found() {
        let g = triangle_plus_edge();
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
        assert!(!g.is_connected());
    }

    #[test]
    fn display_is_informative() {
        let g = triangle_plus_edge();
        let s = format!("{g}");
        assert!(s.contains("K=5"));
        assert!(s.contains("|E|=4"));
    }
}
