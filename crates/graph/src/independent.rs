//! Independent-set machinery.
//!
//! The paper's running combinatorial example (Fig. 2, Section IV) is the maximum
//! weighted independent set problem: the feasible strategy set `F` is the family
//! of independent sets of the relation graph. This module enumerates bounded-size
//! independent sets (to build explicit feasible sets for DFL-CSO) and provides a
//! greedy weighted-independent-set heuristic plus an exact brute-force solver for
//! small graphs (used as the combinatorial oracle and in tests).

use crate::bank::StrategyBank;
use crate::graph::RelationGraph;
use crate::ArmId;

/// Depth-first enumeration core shared by the nested and flat collectors:
/// visits every non-empty independent set of size at most `max_size` in
/// lexicographic order, handing each to `emit` until it has been called
/// `limit` times (if bounded).
fn for_each_independent_set(
    graph: &RelationGraph,
    max_size: usize,
    limit: Option<usize>,
    emit: &mut dyn FnMut(&[ArmId]),
) {
    fn recurse(
        graph: &RelationGraph,
        start: ArmId,
        max_size: usize,
        limit: Option<usize>,
        emitted: &mut usize,
        current: &mut Vec<ArmId>,
        emit: &mut dyn FnMut(&[ArmId]),
    ) {
        if let Some(lim) = limit {
            if *emitted >= lim {
                return;
            }
        }
        if current.len() == max_size {
            return;
        }
        for v in start..graph.num_vertices() {
            if current.iter().all(|&u| !graph.has_edge(u, v)) {
                current.push(v);
                emit(current);
                *emitted += 1;
                recurse(graph, v + 1, max_size, limit, emitted, current, emit);
                current.pop();
                if let Some(lim) = limit {
                    if *emitted >= lim {
                        return;
                    }
                }
            }
        }
    }
    if max_size > 0 && graph.num_vertices() > 0 {
        let mut current: Vec<ArmId> = Vec::new();
        let mut emitted = 0usize;
        recurse(graph, 0, max_size, limit, &mut emitted, &mut current, emit);
    }
}

/// Enumerates all non-empty independent sets of size at most `max_size`.
///
/// Sets are returned sorted internally and ordered lexicographically. On dense
/// constraints the number of independent sets can still be exponential — callers
/// can bound the output with `limit`.
pub fn independent_sets_up_to(
    graph: &RelationGraph,
    max_size: usize,
    limit: Option<usize>,
) -> Vec<Vec<ArmId>> {
    let mut out: Vec<Vec<ArmId>> = Vec::new();
    for_each_independent_set(graph, max_size, limit, &mut |set| out.push(set.to_vec()));
    out
}

/// Like [`independent_sets_up_to`], but collects the sets straight into a flat
/// [`StrategyBank`] — the layout the combinatorial oracles scan — without the
/// per-set heap allocation of the nested form. Row order is identical to
/// [`independent_sets_up_to`].
pub fn independent_sets_bank(
    graph: &RelationGraph,
    max_size: usize,
    limit: Option<usize>,
) -> StrategyBank {
    let mut out = StrategyBank::new();
    for_each_independent_set(graph, max_size, limit, &mut |set| out.push_row(set));
    out
}

/// All *maximal* independent sets (independent sets not contained in a larger
/// one), computed as the maximal cliques of the complement graph.
///
/// Intended for small graphs.
pub fn maximal_independent_sets(graph: &RelationGraph, limit: Option<usize>) -> Vec<Vec<ArmId>> {
    crate::clique::maximal_cliques(&graph.complement(), limit)
}

/// Greedy maximum-weight independent set: repeatedly picks the remaining vertex
/// with the highest weight and discards its neighbours.
///
/// `weights[v]` is the weight of vertex `v`; missing entries count as 0.
/// Deterministic: ties are broken towards the smaller vertex id.
pub fn greedy_max_weight_independent_set(graph: &RelationGraph, weights: &[f64]) -> Vec<ArmId> {
    let n = graph.num_vertices();
    let weight = |v: usize| weights.get(v).copied().unwrap_or(0.0);
    let mut available = vec![true; n];
    let mut chosen: Vec<ArmId> = Vec::new();
    loop {
        let best = (0..n).filter(|&v| available[v]).max_by(|&a, &b| {
            weight(a)
                .partial_cmp(&weight(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        });
        match best {
            Some(v) => {
                chosen.push(v);
                available[v] = false;
                for &u in graph.neighbors(v) {
                    available[u] = false;
                }
            }
            None => break,
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Exact maximum-weight independent set by exhaustive search.
///
/// Exponential in the number of vertices; used as the combinatorial oracle on the
/// small instances the paper simulates and to validate the greedy heuristic in
/// tests. `max_size` optionally caps the cardinality of the returned set.
pub fn exact_max_weight_independent_set(
    graph: &RelationGraph,
    weights: &[f64],
    max_size: Option<usize>,
) -> Vec<ArmId> {
    let n = graph.num_vertices();
    let weight = |v: usize| weights.get(v).copied().unwrap_or(0.0);
    let cap = max_size.unwrap_or(n);
    let mut best: Vec<ArmId> = Vec::new();
    let mut best_weight = 0.0_f64;
    let mut current: Vec<ArmId> = Vec::new();

    // A local recursion helper; threading the search state explicitly beats
    // bundling it into a one-off struct.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        graph: &RelationGraph,
        start: ArmId,
        cap: usize,
        weight: &dyn Fn(usize) -> f64,
        current: &mut Vec<ArmId>,
        current_weight: f64,
        best: &mut Vec<ArmId>,
        best_weight: &mut f64,
    ) {
        if current_weight > *best_weight {
            *best_weight = current_weight;
            *best = current.clone();
        }
        if current.len() == cap {
            return;
        }
        for v in start..graph.num_vertices() {
            if current.iter().all(|&u| !graph.has_edge(u, v)) {
                current.push(v);
                recurse(
                    graph,
                    v + 1,
                    cap,
                    weight,
                    current,
                    current_weight + weight(v),
                    best,
                    best_weight,
                );
                current.pop();
            }
        }
    }

    recurse(
        graph,
        0,
        cap,
        &weight,
        &mut current,
        0.0,
        &mut best,
        &mut best_weight,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The 4-arm graph from Fig. 2 of the paper: edges 1-2, 2-3, 3-4 (0-indexed:
    /// 0-1, 1-2, 2-3).
    fn fig2_graph() -> RelationGraph {
        RelationGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn fig2_feasible_set_matches_paper() {
        // The paper lists 7 feasible strategies (independent sets):
        // {1},{2},{3},{4},{1,3},{1,4},{2,4} → 0-indexed below.
        let g = fig2_graph();
        let sets = independent_sets_up_to(&g, 2, None);
        let expected: Vec<Vec<usize>> = vec![
            vec![0],
            vec![0, 2],
            vec![0, 3],
            vec![1],
            vec![1, 3],
            vec![2],
            vec![3],
        ];
        assert_eq!(sets, expected);
    }

    #[test]
    fn independent_sets_respect_limit_and_size() {
        let g = fig2_graph();
        let sets = independent_sets_up_to(&g, 1, None);
        assert_eq!(sets.len(), 4);
        let limited = independent_sets_up_to(&g, 2, Some(3));
        assert_eq!(limited.len(), 3);
        let none = independent_sets_up_to(&g, 0, None);
        assert!(none.is_empty());
    }

    #[test]
    fn independent_sets_of_edgeless_graph_are_all_subsets() {
        let g = generators::edgeless(4);
        let sets = independent_sets_up_to(&g, 4, None);
        // 2^4 - 1 non-empty subsets.
        assert_eq!(sets.len(), 15);
        let sets2 = independent_sets_up_to(&g, 2, None);
        // 4 singletons + 6 pairs.
        assert_eq!(sets2.len(), 10);
    }

    #[test]
    fn independent_sets_of_complete_graph_are_singletons() {
        let g = generators::complete(5);
        let sets = independent_sets_up_to(&g, 3, None);
        assert_eq!(sets.len(), 5);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn all_enumerated_sets_are_independent() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::erdos_renyi(12, 0.4, &mut rng);
        for set in independent_sets_up_to(&g, 3, None) {
            assert!(g.is_independent_set(&set), "{set:?} is not independent");
        }
    }

    #[test]
    fn bank_collector_matches_nested_enumeration() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = generators::erdos_renyi(10, 0.35, &mut rng);
            for limit in [None, Some(3), Some(1000)] {
                let nested = independent_sets_up_to(&g, 3, limit);
                let bank = independent_sets_bank(&g, 3, limit);
                assert_eq!(bank.to_rows(), nested);
            }
        }
    }

    #[test]
    fn maximal_independent_sets_of_path() {
        let g = generators::path(4); // 0-1-2-3
        let sets = maximal_independent_sets(&g, None);
        assert_eq!(sets, vec![vec![0, 2], vec![0, 3], vec![1, 3]]);
    }

    #[test]
    fn greedy_matches_exact_on_easy_instances() {
        let g = generators::path(5);
        let weights = vec![1.0, 10.0, 1.0, 1.0, 10.0];
        let greedy = greedy_max_weight_independent_set(&g, &weights);
        let exact = exact_max_weight_independent_set(&g, &weights, None);
        let sum = |s: &[usize]| s.iter().map(|&v| weights[v]).sum::<f64>();
        assert_eq!(sum(&greedy), sum(&exact));
        assert_eq!(exact, vec![1, 4]);
    }

    #[test]
    fn exact_oracle_never_worse_than_greedy() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let g = generators::erdos_renyi(10, 0.4, &mut rng);
            let weights: Vec<f64> = (0..10).map(|_| rng.gen::<f64>()).collect();
            let greedy = greedy_max_weight_independent_set(&g, &weights);
            let exact = exact_max_weight_independent_set(&g, &weights, None);
            let sum = |s: &[usize]| s.iter().map(|&v| weights[v]).sum::<f64>();
            assert!(g.is_independent_set(&greedy));
            assert!(g.is_independent_set(&exact));
            assert!(sum(&exact) >= sum(&greedy) - 1e-12);
        }
    }

    #[test]
    fn exact_oracle_respects_cardinality_cap() {
        let g = generators::edgeless(6);
        let weights = vec![1.0; 6];
        let capped = exact_max_weight_independent_set(&g, &weights, Some(2));
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = RelationGraph::empty(0);
        assert!(independent_sets_up_to(&g, 3, None).is_empty());
        assert!(greedy_max_weight_independent_set(&g, &[]).is_empty());
        assert!(exact_max_weight_independent_set(&g, &[], None).is_empty());
    }
}
