//! Flat, contiguous storage for enumerated strategy sets.
//!
//! An enumerated feasible family used to travel through the workspace as a
//! `Vec<Vec<ArmId>>` — one heap allocation (and one pointer chase) per
//! strategy. Per-round combinatorial oracles scan the *whole* family every
//! time slot, so that layout puts a cache miss in front of every candidate.
//! [`StrategyBank`] packs the same rows into two arrays, the same shape as
//! [`CsrGraph`](crate::CsrGraph): `offsets[x]..offsets[x + 1]` delimits row
//! `x` inside `arms`, so a full-family scan is one linear walk over
//! contiguous memory.
//!
//! Row order is preserved exactly by every constructor — oracle tie-breaking
//! and floating-point summation order are defined by enumeration order, and
//! the golden-trace suites pin both bit-for-bit.
//!
//! # Layout invariants
//!
//! * `offsets.len() == len() + 1`, `offsets[0] == 0`, and `offsets` is
//!   non-decreasing with `offsets[len()] == arms.len()`.
//! * Row contents are stored verbatim (constructors do **not** sort or
//!   deduplicate; normalisation is the caller's policy, exactly as it was
//!   with `Vec<Vec<ArmId>>`).
//!
//! # Example
//!
//! ```
//! use netband_graph::StrategyBank;
//!
//! let bank: StrategyBank = vec![vec![0], vec![1, 3], vec![2]].into();
//! assert_eq!(bank.len(), 3);
//! assert_eq!(bank.row(1), &[1, 3]);
//! assert_eq!(bank.iter().map(|row| row.len()).sum::<usize>(), 4);
//! ```

use serde::{Deserialize, Serialize};

use crate::ArmId;

/// An enumerated strategy set stored as flat CSR-style rows.
///
/// See the [module docs](self) for layout and invariants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategyBank {
    /// Row boundaries: row `x` is `arms[offsets[x] as usize..offsets[x + 1] as usize]`.
    offsets: Vec<u32>,
    /// Concatenated row contents.
    arms: Vec<ArmId>,
}

impl StrategyBank {
    /// An empty bank (no rows).
    pub fn new() -> Self {
        StrategyBank {
            offsets: vec![0],
            arms: Vec::new(),
        }
    }

    /// An empty bank with storage reserved for `rows` rows totalling `arms`
    /// arm entries.
    pub fn with_capacity(rows: usize, arms: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        StrategyBank {
            offsets,
            arms: Vec::with_capacity(arms),
        }
    }

    /// Appends one row (stored verbatim).
    ///
    /// # Panics
    ///
    /// Panics if the total number of stored arm entries would exceed
    /// `u32::MAX` (the offset width).
    pub fn push_row(&mut self, row: &[ArmId]) {
        self.arms.extend_from_slice(row);
        let end = u32::try_from(self.arms.len()).expect("strategy bank exceeds u32 offset range");
        self.offsets.push(end);
    }

    /// Extends the current last row in place and closes it. Used by builders
    /// that stream a row's arms without materialising a slice first: call
    /// [`StrategyBank::extend_row`] any number of times, then
    /// [`StrategyBank::finish_row`] once.
    pub fn extend_row(&mut self, arms: impl IntoIterator<Item = ArmId>) {
        self.arms.extend(arms);
    }

    /// Closes the row opened by preceding [`StrategyBank::extend_row`] calls
    /// (a bare call records an empty row).
    ///
    /// # Panics
    ///
    /// Panics if the total number of stored arm entries exceeds `u32::MAX`.
    pub fn finish_row(&mut self) {
        let end = u32::try_from(self.arms.len()).expect("strategy bank exceeds u32 offset range");
        self.offsets.push(end);
    }

    /// Number of rows (strategies).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the bank holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `x` as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn row(&self, x: usize) -> &[ArmId] {
        &self.arms[self.offsets[x] as usize..self.offsets[x + 1] as usize]
    }

    /// Length of row `x` without touching the arms array.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn row_len(&self, x: usize) -> usize {
        (self.offsets[x + 1] - self.offsets[x]) as usize
    }

    /// Iterates the rows in order, each as a borrowed slice.
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            offsets: self.offsets.windows(2),
            arms: &self.arms,
        }
    }

    /// Rebuilds the bank with every row sorted and deduplicated — the shared
    /// normalisation step of explicit families, com-arm baselines, and the
    /// strategy relation graph. Arms failing `keep_arm` are dropped from
    /// their row; rows left empty after filtering are dropped entirely when
    /// `drop_empty`. Row order is otherwise preserved.
    pub fn into_normalized(
        self,
        drop_empty: bool,
        mut keep_arm: impl FnMut(ArmId) -> bool,
    ) -> StrategyBank {
        let mut out = StrategyBank::with_capacity(self.len(), self.arms.len());
        let mut scratch: Vec<ArmId> = Vec::new();
        for row in self.iter() {
            scratch.clear();
            scratch.extend(row.iter().copied().filter(|&v| keep_arm(v)));
            scratch.sort_unstable();
            scratch.dedup();
            if !(drop_empty && scratch.is_empty()) {
                out.push_row(&scratch);
            }
        }
        out
    }

    /// The concatenated row contents (every stored arm id, row by row).
    pub fn arms(&self) -> &[ArmId] {
        &self.arms
    }

    /// Length of the longest row (0 for an empty bank).
    pub fn max_row_len(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Copies the rows back out into the nested layout the bank replaces.
    /// Intended for tests and interop, not hot paths.
    pub fn to_rows(&self) -> Vec<Vec<ArmId>> {
        self.iter().map(<[ArmId]>::to_vec).collect()
    }

    /// Index of the row with the largest sum of per-arm scores, scanning the
    /// flat `offsets`/`arms` arrays contiguously.
    ///
    /// This is the oracle-scan kernel: callers precompute a per-arm score
    /// `table` once per decide (one chunked kernel sweep) and this method
    /// reduces every row over it in a single linear walk. Semantics match the
    /// scalar oracle exactly:
    ///
    /// * each row's weight is the sum of `table[arm]` **in row order** (arm
    ///   ids beyond `table` contribute `0.0`), the same f64 operation
    ///   sequence as `strategy_weight`;
    /// * ties break to the **last** maximal row, and incomparable (NaN)
    ///   weights compare as equal — i.e. `argmax_last` selection.
    ///
    /// Returns `None` for an empty bank.
    pub fn argmax_row_sums(&self, table: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (x, w) in self.offsets.windows(2).enumerate() {
            let row = &self.arms[w[0] as usize..w[1] as usize];
            let mut sum = 0.0;
            for &arm in row {
                sum += table.get(arm).copied().unwrap_or(0.0);
            }
            let keep_incumbent = best
                .map(|(_, b)| b.partial_cmp(&sum) == Some(std::cmp::Ordering::Greater))
                .unwrap_or(false);
            if !keep_incumbent {
                best = Some((x, sum));
            }
        }
        best.map(|(x, _)| x)
    }
}

/// The default bank is empty — same state as [`StrategyBank::new`] (a derived
/// `Default` would leave `offsets` without its leading 0 sentinel).
impl Default for StrategyBank {
    fn default() -> Self {
        StrategyBank::new()
    }
}

impl From<Vec<Vec<ArmId>>> for StrategyBank {
    fn from(rows: Vec<Vec<ArmId>>) -> Self {
        let total = rows.iter().map(Vec::len).sum();
        let mut bank = StrategyBank::with_capacity(rows.len(), total);
        for row in &rows {
            bank.push_row(row);
        }
        bank
    }
}

impl FromIterator<Vec<ArmId>> for StrategyBank {
    fn from_iter<I: IntoIterator<Item = Vec<ArmId>>>(iter: I) -> Self {
        let mut bank = StrategyBank::new();
        for row in iter {
            bank.push_row(&row);
        }
        bank
    }
}

/// Borrowed row iterator of a [`StrategyBank`] (see [`StrategyBank::iter`]).
/// A concrete, allocation-free type so `for row in &bank` costs the same as
/// indexing.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    offsets: std::slice::Windows<'a, u32>,
    arms: &'a [ArmId],
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [ArmId];

    fn next(&mut self) -> Option<&'a [ArmId]> {
        let w = self.offsets.next()?;
        Some(&self.arms[w[0] as usize..w[1] as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.offsets.size_hint()
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl<'a> IntoIterator for &'a StrategyBank {
    type Item = &'a [ArmId];
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bank_has_no_rows() {
        let bank = StrategyBank::new();
        assert_eq!(bank.len(), 0);
        assert!(bank.is_empty());
        assert_eq!(bank.max_row_len(), 0);
        assert!(bank.iter().next().is_none());
        assert!(bank.to_rows().is_empty());
        assert_eq!(bank, StrategyBank::default());
    }

    #[test]
    fn rows_round_trip_verbatim() {
        let rows = vec![vec![3, 1], vec![], vec![0, 2, 4]];
        let bank = StrategyBank::from(rows.clone());
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.row(0), &[3, 1]);
        assert_eq!(bank.row(1), &[] as &[ArmId]);
        assert_eq!(bank.row(2), &[0, 2, 4]);
        assert_eq!(bank.row_len(2), 3);
        assert_eq!(bank.max_row_len(), 3);
        assert_eq!(bank.arms(), &[3, 1, 0, 2, 4]);
        assert_eq!(bank.to_rows(), rows);
        let collected: StrategyBank = rows.clone().into_iter().collect();
        assert_eq!(collected, bank);
    }

    #[test]
    fn iter_matches_indexed_rows() {
        let bank: StrategyBank = vec![vec![1], vec![2, 3]].into();
        let via_iter: Vec<&[ArmId]> = bank.iter().collect();
        let via_index: Vec<&[ArmId]> = (0..bank.len()).map(|x| bank.row(x)).collect();
        assert_eq!(via_iter, via_index);
        // `&bank` iterates the same rows.
        assert_eq!((&bank).into_iter().count(), 2);
    }

    #[test]
    fn streaming_row_builder_matches_push_row() {
        let mut streamed = StrategyBank::new();
        streamed.extend_row([4, 5]);
        streamed.extend_row([6]);
        streamed.finish_row();
        streamed.finish_row(); // empty row
        let mut pushed = StrategyBank::new();
        pushed.push_row(&[4, 5, 6]);
        pushed.push_row(&[]);
        assert_eq!(streamed, pushed);
    }

    #[test]
    fn with_capacity_preallocates() {
        let bank = StrategyBank::with_capacity(8, 32);
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
    }

    #[test]
    fn argmax_row_sums_sums_in_row_order_and_breaks_ties_late() {
        let bank: StrategyBank = vec![vec![0, 1], vec![2], vec![1, 0]].into();
        // Rows 0 and 2 tie exactly (same members): the last one wins.
        assert_eq!(bank.argmax_row_sums(&[0.5, 0.25, 0.6]), Some(2));
        // A strictly larger row keeps winning regardless of position.
        assert_eq!(bank.argmax_row_sums(&[0.5, 0.25, 0.9]), Some(1));
        // Out-of-range arm ids contribute 0, and NaN rows compare as equal,
        // replacing the incumbent (argmax_last semantics).
        let sparse: StrategyBank = vec![vec![0], vec![9]].into();
        assert_eq!(sparse.argmax_row_sums(&[-1.0]), Some(1));
        let nan: StrategyBank = vec![vec![0], vec![1]].into();
        assert_eq!(nan.argmax_row_sums(&[1.0, f64::NAN]), Some(1));
        assert_eq!(StrategyBank::new().argmax_row_sums(&[1.0]), None);
    }
}
