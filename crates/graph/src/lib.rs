//! Relation-graph substrate for networked multi-armed bandits.
//!
//! The paper *Networked Stochastic Multi-Armed Bandits with Combinatorial
//! Strategies* (Tang & Zhou, ICDCS 2017) models the correlation between arms with
//! an undirected **relation graph** `G = (V, E)`: pulling an arm yields a side
//! bonus (an observation or a reward) for every arm in its closed neighbourhood.
//!
//! This crate provides everything the learning policies and their analysis need
//! from that graph:
//!
//! * [`RelationGraph`] — a compact undirected graph over `K` arms with
//!   neighbourhood queries, induced subgraphs, and connectivity helpers.
//! * [`CsrGraph`] — the frozen flat (compressed-sparse-row) snapshot of a
//!   relation graph that the simulation hot path runs on: packed neighbour
//!   arrays, precomputed degrees, and clique-cover membership tables, all
//!   served as borrowed slices without per-query allocation.
//! * [`generators`] — random and structured graph families (Erdős–Rényi,
//!   Barabási–Albert, random geometric, stars, paths, cliques, …) used by the
//!   simulation workloads.
//! * [`clique`] — greedy clique covers and Bron–Kerbosch maximal-clique
//!   enumeration; the clique-cover size `C` appears directly in the Theorem 1 and
//!   Theorem 2 regret bounds.
//! * [`independent`] — independent-set machinery used to build the combinatorial
//!   feasible strategy sets of Section IV (Fig. 2 of the paper).
//! * [`bank`] — [`StrategyBank`], the flat CSR-style storage every enumerated
//!   feasible set travels in (one contiguous scan per oracle call instead of a
//!   pointer chase per candidate strategy).
//! * [`strategy`] — the **strategy relation graph** `SG(F, L)` construction that
//!   converts combinatorial play with side observation into single play over
//!   com-arms (Algorithm 2).
//!
//! # Example
//!
//! ```
//! use netband_graph::{RelationGraph, clique::greedy_clique_cover};
//!
//! // A 5-arm relation graph: a triangle {0,1,2} plus an edge {3,4}.
//! let g = RelationGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
//! assert_eq!(g.closed_neighborhood(1), vec![0, 1, 2]);
//!
//! let cover = greedy_clique_cover(&g);
//! assert!(cover.len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod clique;
pub mod coloring;
pub mod csr;
pub mod generators;
pub mod graph;
pub mod independent;
pub mod io;
pub mod metrics;
pub mod strategy;

pub use bank::StrategyBank;
pub use clique::{greedy_clique_cover, CliqueCover};
pub use csr::CsrGraph;
pub use graph::{GraphError, RelationGraph};
pub use metrics::{metrics, GraphMetrics};
pub use strategy::StrategyRelationGraph;

/// Identifier of an arm (a vertex of the relation graph).
///
/// Arms are always indexed densely as `0..K`.
pub type ArmId = usize;
