//! Random and structured relation-graph generators.
//!
//! The paper's simulations use "randomly generated" relation graphs where arms
//! are "uniformly and randomly connected" with a given probability — i.e.
//! Erdős–Rényi graphs. The other families here are used by the examples, the
//! ablations, and the property tests: social-network-like preferential-attachment
//! graphs, random geometric graphs (similarity networks), and structured graphs
//! with known clique covers.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::RelationGraph;
use crate::ArmId;

/// Erdős–Rényi graph `G(n, p)`: every pair of distinct arms is connected
/// independently with probability `p`.
///
/// `p` is clamped to `[0, 1]`. This is the generator behind Figures 3–6 of the
/// paper ("arms are uniformly and randomly connected with probability ...").
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> RelationGraph {
    let p = p.clamp(0.0, 1.0);
    let mut g = RelationGraph::empty(n);
    if p <= 0.0 {
        return g;
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if p >= 1.0 || rng.gen::<f64>() < p {
                g.add_edge(u, v).expect("generated edges are valid");
            }
        }
    }
    g
}

/// Complete graph `K_n`: every arm observes every other arm.
pub fn complete(n: usize) -> RelationGraph {
    let mut g = RelationGraph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("generated edges are valid");
        }
    }
    g
}

/// Edgeless graph: the networked problem degenerates to the classical MAB.
pub fn edgeless(n: usize) -> RelationGraph {
    RelationGraph::empty(n)
}

/// Star graph with `n` vertices: vertex 0 is the hub connected to all others.
///
/// Models a "celebrity" user whose promotions are observed by every follower.
pub fn star(n: usize) -> RelationGraph {
    let mut g = RelationGraph::empty(n);
    for v in 1..n {
        g.add_edge(0, v).expect("generated edges are valid");
    }
    g
}

/// Path graph `0 - 1 - 2 - … - (n-1)`.
pub fn path(n: usize) -> RelationGraph {
    let mut g = RelationGraph::empty(n);
    for v in 1..n {
        g.add_edge(v - 1, v).expect("generated edges are valid");
    }
    g
}

/// Cycle graph (a path with the two endpoints joined); requires `n >= 3` to have
/// the closing edge, smaller sizes fall back to a path.
pub fn cycle(n: usize) -> RelationGraph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("generated edges are valid");
    }
    g
}

/// Disjoint union of `num_cliques` cliques of size `clique_size`.
///
/// The greedy clique cover of this graph has exactly `num_cliques` cliques, which
/// makes it the canonical workload for exercising the `C`-dependent term of the
/// Theorem 1 bound.
pub fn disjoint_cliques(num_cliques: usize, clique_size: usize) -> RelationGraph {
    let n = num_cliques * clique_size;
    let mut g = RelationGraph::empty(n);
    for c in 0..num_cliques {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                g.add_edge(base + i, base + j)
                    .expect("generated edges are valid");
            }
        }
    }
    g
}

/// Random geometric graph: arms are placed uniformly at random in the unit
/// square and connected when their Euclidean distance is below `radius`.
///
/// Models similarity networks ("items whose feature vectors are close inform
/// each other").
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> RelationGraph {
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = RelationGraph::empty(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if dx * dx + dy * dy <= r2 {
                g.add_edge(u, v).expect("generated edges are valid");
            }
        }
    }
    g
}

/// Barabási–Albert preferential-attachment graph.
///
/// Starts from a clique on `m.max(1)` seed vertices; every subsequent vertex
/// attaches to `m` existing vertices chosen with probability proportional to
/// their degree (plus one, so isolated seeds can still be chosen). Produces the
/// heavy-tailed degree distributions typical of online social networks, the
/// motivating application of the paper.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> RelationGraph {
    let m = m.max(1);
    let mut g = RelationGraph::empty(n);
    if n == 0 {
        return g;
    }
    let seed = m.min(n);
    for u in 0..seed {
        for v in (u + 1)..seed {
            g.add_edge(u, v).expect("generated edges are valid");
        }
    }
    for v in seed..n {
        // Sample m distinct targets weighted by (degree + 1).
        let mut targets: Vec<ArmId> = Vec::with_capacity(m);
        let mut attempts = 0usize;
        while targets.len() < m.min(v) && attempts < 50 * m {
            attempts += 1;
            let total: usize = (0..v).map(|u| g.degree(u) + 1).sum();
            let mut ticket = rng.gen_range(0..total);
            let mut chosen = 0;
            for u in 0..v {
                let w = g.degree(u) + 1;
                if ticket < w {
                    chosen = u;
                    break;
                }
                ticket -= w;
            }
            if !targets.contains(&chosen) {
                targets.push(chosen);
            }
        }
        for u in targets {
            g.add_edge(u, v).expect("generated edges are valid");
        }
    }
    g
}

/// Planted-partition ("community") graph: vertices are split into `communities`
/// equal-size groups; intra-community edges appear with probability `p_in`,
/// inter-community edges with probability `p_out`.
pub fn planted_partition<R: Rng + ?Sized>(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> RelationGraph {
    let communities = communities.max(1);
    let p_in = p_in.clamp(0.0, 1.0);
    let p_out = p_out.clamp(0.0, 1.0);
    let mut g = RelationGraph::empty(n);
    let community_of = |v: usize| v * communities / n.max(1);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if community_of(u) == community_of(v) {
                p_in
            } else {
                p_out
            };
            if p > 0.0 && (p >= 1.0 || rng.gen::<f64>() < p) {
                g.add_edge(u, v).expect("generated edges are valid");
            }
        }
    }
    g
}

/// A random graph with exactly `num_edges` edges chosen uniformly among all
/// vertex pairs (the `G(n, M)` model).
pub fn gnm<R: Rng + ?Sized>(n: usize, num_edges: usize, rng: &mut R) -> RelationGraph {
    let mut pairs: Vec<(ArmId, ArmId)> =
        Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((u, v));
        }
    }
    pairs.shuffle(rng);
    let take = num_edges.min(pairs.len());
    RelationGraph::from_edges(n, &pairs[..take])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g0 = erdos_renyi(20, 0.0, &mut rng);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(20, 1.0, &mut rng);
        assert_eq!(g1.num_edges(), 20 * 19 / 2);
        // Out-of-range probabilities are clamped.
        let g2 = erdos_renyi(10, 7.0, &mut rng);
        assert_eq!(g2.num_edges(), 10 * 9 / 2);
        let g3 = erdos_renyi(10, -3.0, &mut rng);
        assert_eq!(g3.num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = erdos_renyi(200, 0.3, &mut rng);
        assert!((g.density() - 0.3).abs() < 0.03, "density {}", g.density());
    }

    #[test]
    fn erdos_renyi_is_deterministic_under_seed() {
        let g1 = erdos_renyi(50, 0.4, &mut StdRng::seed_from_u64(7));
        let g2 = erdos_renyi(50, 0.4, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn complete_star_path_cycle_shapes() {
        assert_eq!(complete(6).num_edges(), 15);
        let s = star(5);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(3), 1);
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
        // Degenerate sizes.
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(cycle(1).num_edges(), 0);
        assert_eq!(star(0).num_vertices(), 0);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn edgeless_is_classical_mab() {
        let g = edgeless(12);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_closed_neighborhood(), 1);
    }

    #[test]
    fn disjoint_cliques_structure() {
        let g = disjoint_cliques(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 6);
        assert!(g.is_clique(&[0, 1, 2, 3]));
        assert!(g.is_clique(&[4, 5, 6, 7]));
        assert!(!g.has_edge(0, 4));
        assert_eq!(g.connected_components().len(), 3);
    }

    #[test]
    fn random_geometric_radius_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g_all = random_geometric(15, 2.0, &mut rng);
        assert_eq!(g_all.num_edges(), 15 * 14 / 2);
        let g_none = random_geometric(15, 0.0, &mut rng);
        assert_eq!(g_none.num_edges(), 0);
    }

    #[test]
    fn barabasi_albert_connects_and_grows_hubs() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = barabasi_albert(60, 2, &mut rng);
        assert_eq!(g.num_vertices(), 60);
        assert!(g.is_connected());
        // Preferential attachment should produce at least one hub vertex.
        assert!(g.max_degree() >= 5, "max degree {}", g.max_degree());
    }

    #[test]
    fn barabasi_albert_degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(barabasi_albert(0, 2, &mut rng).num_vertices(), 0);
        assert_eq!(barabasi_albert(1, 2, &mut rng).num_edges(), 0);
        let g = barabasi_albert(2, 3, &mut rng);
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn planted_partition_prefers_intra_community_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = planted_partition(60, 3, 0.9, 0.05, &mut rng);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if u / 20 == v / 20 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 2, "intra={intra} inter={inter}");
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gnm(20, 30, &mut rng);
        assert_eq!(g.num_edges(), 30);
        // Requesting more edges than possible saturates.
        let g_full = gnm(5, 1000, &mut rng);
        assert_eq!(g_full.num_edges(), 10);
    }
}
