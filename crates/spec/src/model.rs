//! The spec types: one declarative, versioned description of everything the
//! paper's configuration space contains.
//!
//! A [`ScenarioSpec`] names a point in the space *graph model × arm
//! distributions × strategy family × policy × horizon/feedback schedule* —
//! exactly the space the paper's evaluation (Section VII) and its motivating
//! applications (Section I: advertising, social promotion, channel access)
//! range over. Specs are plain data: they can be written as JSON (see
//! [`crate::codec`]), stored, diffed, and replayed, and `build()` factories
//! turn them into runnable instances deterministically (a spec plus its seeds
//! pins the sample path bit for bit).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use netband_baselines as baselines;
use netband_core as core_policies;
use netband_env::feasible::FeasibleSet;
use netband_env::workloads::Workload;
use netband_env::{
    ArmSet, ChangePoint, ChurnWindow, DriftSchedule, GradualDrift, NetworkedBandit, StrategyFamily,
};
use netband_graph::{generators, RelationGraph};

use crate::error::SpecError;
use crate::policy::AnyPolicy;
use crate::ArmId;

/// The spec schema version this build reads and writes.
///
/// Documents declaring any other `version` are rejected with
/// [`SpecError::UnsupportedVersion`] — schema evolution is explicit, never
/// silent.
pub const SPEC_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// GraphSpec
// ---------------------------------------------------------------------------

/// A relation-graph model (Section II: arms are vertices; an edge means
/// pulling one arm reveals a side bonus for the other).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphSpec {
    /// Erdős–Rényi `G(K, p)` — the paper's Section VII simulation setup
    /// ("arms are uniformly and randomly connected with probability p").
    ErdosRenyi {
        /// Number of arms `K`.
        num_arms: usize,
        /// Connection probability `p`.
        edge_prob: f64,
    },
    /// Barabási–Albert preferential attachment — the heavy-tailed audience
    /// graph of the online-advertising application (Section I).
    PreferentialAttachment {
        /// Number of arms `K`.
        num_arms: usize,
        /// Edges attached per new vertex.
        edges_per_node: usize,
    },
    /// Planted-partition community graph — the online social network of the
    /// social-promotion application (Section I): dense inside communities,
    /// sparse across.
    PlantedPartition {
        /// Number of arms `K`.
        num_arms: usize,
        /// Number of planted communities.
        communities: usize,
        /// Within-community edge probability.
        p_in: f64,
        /// Cross-community edge probability.
        p_out: f64,
    },
    /// Random geometric graph — the interference graph of the opportunistic
    /// channel-access application (Section I): channels conflict when their
    /// receivers are within radio range.
    RandomGeometric {
        /// Number of arms `K`.
        num_arms: usize,
        /// Connection radius in the unit square.
        radius: f64,
    },
    /// An explicit undirected edge list — for measured production graphs and
    /// hand-crafted instances (e.g. the paper's Fig. 1/Fig. 2 examples).
    Explicit {
        /// Number of arms `K` (isolated vertices allowed).
        num_arms: usize,
        /// Undirected edges as `(u, v)` pairs, `u, v < num_arms`.
        edges: Vec<(ArmId, ArmId)>,
    },
}

impl GraphSpec {
    /// Number of arms the graph will have.
    pub fn num_arms(&self) -> usize {
        match self {
            GraphSpec::ErdosRenyi { num_arms, .. }
            | GraphSpec::PreferentialAttachment { num_arms, .. }
            | GraphSpec::PlantedPartition { num_arms, .. }
            | GraphSpec::RandomGeometric { num_arms, .. }
            | GraphSpec::Explicit { num_arms, .. } => *num_arms,
        }
    }

    /// Materialises the relation graph, consuming randomness from `rng` for
    /// the random models (the explicit model consumes none).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<RelationGraph, SpecError> {
        match self {
            GraphSpec::ErdosRenyi {
                num_arms,
                edge_prob,
            } => Ok(generators::erdos_renyi(*num_arms, *edge_prob, rng)),
            GraphSpec::PreferentialAttachment {
                num_arms,
                edges_per_node,
            } => Ok(generators::barabasi_albert(*num_arms, *edges_per_node, rng)),
            GraphSpec::PlantedPartition {
                num_arms,
                communities,
                p_in,
                p_out,
            } => Ok(generators::planted_partition(
                *num_arms,
                (*communities).max(1),
                *p_in,
                *p_out,
                rng,
            )),
            GraphSpec::RandomGeometric { num_arms, radius } => {
                Ok(generators::random_geometric(*num_arms, *radius, rng))
            }
            GraphSpec::Explicit { num_arms, edges } => {
                RelationGraph::try_from_edges(*num_arms, edges).map_err(|e| SpecError::Invalid {
                    context: "GraphSpec::Explicit",
                    message: e.to_string(),
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ArmsSpec
// ---------------------------------------------------------------------------

/// An arm bank: the reward distribution of every arm (all supported in
/// `[0, 1]`, the paper's Section II assumption).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArmsSpec {
    /// Explicit Bernoulli arms with the given success probabilities.
    Bernoulli {
        /// Success probability of each arm.
        means: Vec<f64>,
    },
    /// Bernoulli arms whose means are drawn i.i.d. uniform from `[0, 1]` —
    /// the paper's Section VII setup ("the mean of each process is randomly
    /// generated from `[0, 1]`").
    UniformMeanBernoulli {
        /// Number of arms `K`.
        num_arms: usize,
    },
    /// Explicit Beta arms with the given `(alpha, beta)` shape pairs.
    Beta {
        /// Shape parameters per arm.
        shapes: Vec<(f64, f64)>,
    },
    /// Beta click-through-rate arms with a heavy right tail: each arm's mean
    /// is drawn as `clamp(floor + spread · U², 0.01, 0.95)` with `U ~ U[0,1]`
    /// and the distribution is `Beta(mean·c, (1−mean)·c)` — the advertising
    /// workload of the paper's introduction (mostly low CTRs, a few high).
    ClickThroughBeta {
        /// Number of arms `K`.
        num_arms: usize,
        /// Lowest achievable raw mean.
        floor: f64,
        /// Spread of the quadratically-skewed mean draw.
        spread: f64,
        /// Beta concentration `c = alpha + beta`.
        concentration: f64,
    },
    /// Explicit continuous-uniform arms on the given `[lo, hi] ⊆ [0, 1]`
    /// intervals.
    Uniform {
        /// `(lo, hi)` support per arm.
        ranges: Vec<(f64, f64)>,
    },
}

impl ArmsSpec {
    /// Number of arms the bank will have.
    pub fn num_arms(&self) -> usize {
        match self {
            ArmsSpec::Bernoulli { means } => means.len(),
            ArmsSpec::UniformMeanBernoulli { num_arms }
            | ArmsSpec::ClickThroughBeta { num_arms, .. } => *num_arms,
            ArmsSpec::Beta { shapes } => shapes.len(),
            ArmsSpec::Uniform { ranges } => ranges.len(),
        }
    }

    /// Materialises the arm bank, consuming randomness from `rng` for the
    /// randomly-parameterised banks (the explicit banks consume none).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> ArmSet {
        use netband_env::distributions::Distribution;
        match self {
            ArmsSpec::Bernoulli { means } => ArmSet::bernoulli(means),
            ArmsSpec::UniformMeanBernoulli { num_arms } => ArmSet::random_bernoulli(*num_arms, rng),
            ArmsSpec::Beta { shapes } => shapes
                .iter()
                .map(|&(alpha, beta)| Distribution::beta(alpha, beta))
                .collect(),
            ArmsSpec::ClickThroughBeta {
                num_arms,
                floor,
                spread,
                concentration,
            } => (0..*num_arms)
                .map(|_| {
                    let mean: f64 = (floor + spread * rng.gen::<f64>().powi(2)).clamp(0.01, 0.95);
                    Distribution::beta(mean * concentration, (1.0 - mean) * concentration)
                })
                .collect(),
            ArmsSpec::Uniform { ranges } => ranges
                .iter()
                .map(|&(lo, hi)| Distribution::uniform(lo, hi))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// FamilySpec
// ---------------------------------------------------------------------------

/// A feasible strategy family `F` for combinatorial play (Sections IV / VI).
/// `None` in a [`WorkloadSpec`] means single-play only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FamilySpec {
    /// All non-empty subsets of at most `m` arms — "an advertiser can only
    /// place up to m advertisements on his website" (Section I).
    AtMostM {
        /// Cardinality cap `M`.
        m: usize,
    },
    /// All subsets of exactly `m` arms (Anantharam et al.'s classical
    /// multiple-play setting, cited in the paper's related work).
    ExactlyM {
        /// Exact cardinality `M`.
        m: usize,
    },
    /// All non-empty independent sets of the relation graph with at most
    /// `max_size` arms — the paper's Fig. 2 example (maximum weighted
    /// independent set) and the channel-access constraint.
    IndependentSets {
        /// Cardinality cap `M`.
        max_size: usize,
    },
    /// An explicitly enumerated feasible set — the regime of Algorithm 2
    /// (DFL-CSO), which keeps one estimator per feasible strategy.
    Explicit {
        /// The feasible strategies (normalised at build time).
        strategies: Vec<Vec<ArmId>>,
    },
}

impl FamilySpec {
    /// Materialises the family over a `num_arms`-vertex relation graph.
    pub fn build(&self, num_arms: usize) -> StrategyFamily {
        match self {
            FamilySpec::AtMostM { m } => StrategyFamily::at_most_m(num_arms, *m),
            FamilySpec::ExactlyM { m } => StrategyFamily::exactly_m(num_arms, *m),
            FamilySpec::IndependentSets { max_size } => StrategyFamily::independent_sets(*max_size),
            FamilySpec::Explicit { strategies } => StrategyFamily::explicit(strategies.clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// PolicySpec
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// EstimatorSpec
// ---------------------------------------------------------------------------

/// Which evidence estimator a nonstationarity-aware policy keeps per arm —
/// the serializable counterpart of `netband_core::EstimatorKind`.
///
/// The stationary estimator is the plain running mean every DFL policy uses;
/// the discounted and sliding-window estimators forget old evidence, which is
/// what lets a policy track the drifting worlds described by [`DriftSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorSpec {
    /// Plain running means over all history (the stationary default).
    Stationary,
    /// Exponentially discounted means (D-UCB style): every round multiplies
    /// the accumulated evidence weight by `gamma`, so an observation made `d`
    /// rounds ago carries weight `gamma^d`. `gamma = 1.0` is bit-identical to
    /// [`EstimatorSpec::Stationary`].
    Discounted {
        /// Per-round discount factor `γ ∈ (0, 1]`.
        gamma: f64,
    },
    /// Sliding-window means: only each arm's last `window` observations count.
    SlidingWindow {
        /// Window length (≥ 1).
        window: usize,
    },
}

impl EstimatorSpec {
    /// Checks the parameters (`gamma ∈ (0, 1]`, `window ≥ 1`).
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            EstimatorSpec::Discounted { gamma } if !(*gamma > 0.0 && *gamma <= 1.0) => {
                Err(SpecError::Invalid {
                    context: "EstimatorSpec::Discounted",
                    message: format!("gamma must lie in (0, 1], got {gamma}"),
                })
            }
            EstimatorSpec::SlidingWindow { window: 0 } => Err(SpecError::Invalid {
                context: "EstimatorSpec::SlidingWindow",
                message: "window must be at least 1".into(),
            }),
            _ => Ok(()),
        }
    }

    /// The `netband_core` estimator kind this spec describes.
    pub fn build(&self) -> core_policies::EstimatorKind {
        match self {
            EstimatorSpec::Stationary => core_policies::EstimatorKind::Stationary,
            EstimatorSpec::Discounted { gamma } => {
                core_policies::EstimatorKind::Discounted { gamma: *gamma }
            }
            EstimatorSpec::SlidingWindow { window } => {
                core_policies::EstimatorKind::SlidingWindow { window: *window }
            }
        }
    }
}

/// A learning policy plus its hyperparameters.
///
/// Every policy in `netband-core` (the paper's four DFL algorithms and the
/// Section IX heuristics) and every baseline in `netband-baselines` is
/// constructible from a variant of this enum; structural inputs (the relation
/// graph, the strategy family, the arm count) come from the workload at build
/// time, so a `PolicySpec` carries only the knobs a human would tune.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// DFL-SSO (Algorithm 1): single-play, learns from side observations via
    /// a MOSS-style index over observation counts.
    DflSso,
    /// DFL-SSR (Algorithm 3): single-play, maximises the neighbourhood-sum
    /// reward `B_{i,t}` (Equation 3's benchmark).
    DflSsr,
    /// DFL-CSO (Algorithm 2): combinatorial play reduced to single play over
    /// com-arms on the strategy relation graph `SG(F, L)`. Needs an
    /// enumerable family.
    DflCso,
    /// DFL-CSR (Algorithm 4): combinatorial play maximising the coverage sum
    /// `CB_{I_t,t}` through the neighbourhood-weight oracle (Equation 47).
    DflCsr,
    /// The Section IX greedy-neighbour heuristic layered on DFL-SSO.
    DflSsoGreedyNeighbor,
    /// The Section IX greedy-neighbour heuristic layered on DFL-SSR.
    DflSsrGreedyNeighbor,
    /// MOSS (Audibert & Bubeck) — the paper's Fig. 3 comparator; ignores side
    /// observations.
    Moss {
        /// Optional known horizon (anytime variant when `None`).
        horizon: Option<usize>,
    },
    /// UCB1 (Auer et al.) — classic index baseline.
    Ucb1,
    /// UCB-Tuned (Auer et al.) — variance-aware UCB variant.
    UcbTuned,
    /// KL-UCB (Garivier & Cappé) — Bernoulli KL index baseline.
    KlUcb {
        /// Optional exploration constant `c`.
        c: Option<f64>,
    },
    /// UCB-V (Audibert, Munos & Szepesvári) — empirical-variance index.
    /// Either both constants or neither (defaults) must be given.
    UcbV {
        /// Optional exploration weight `zeta`.
        zeta: Option<f64>,
        /// Optional bias constant `c`.
        c: Option<f64>,
    },
    /// ε-greedy with a fixed exploration rate.
    EpsilonGreedy {
        /// Exploration probability `ε`.
        epsilon: f64,
        /// RNG seed of the exploration coin.
        seed: u64,
    },
    /// ε-greedy with the decaying schedule `ε_t = min(1, c·K/t)`.
    DecayingEpsilonGreedy {
        /// Decay constant `c`.
        c: f64,
        /// RNG seed of the exploration coin.
        seed: u64,
    },
    /// Softmax / Boltzmann exploration with temperature `tau`.
    Softmax {
        /// Temperature `τ`.
        tau: f64,
        /// RNG seed.
        seed: u64,
    },
    /// EXP3 (Auer et al.) — the adversarial-bandit baseline.
    Exp3 {
        /// Exploration mixture `γ`.
        gamma: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Beta–Bernoulli Thompson sampling (the Bayesian comparator family of
    /// Hüyük & Tekin's combinatorial Thompson analysis).
    ThompsonBernoulli {
        /// RNG seed of the posterior sampler.
        seed: u64,
    },
    /// Uniform random single-arm play (sanity floor).
    RandomSingle {
        /// RNG seed.
        seed: u64,
    },
    /// CUCB (Chen et al., "Combinatorial multi-armed bandit") — per-arm UCB1
    /// indices fed to the exact arm-weight oracle.
    Cucb,
    /// LLR (Gai, Krishnamachari & Jain, "Combinatorial network optimization
    /// with unknown variables") — Learning with Linear Rewards.
    Llr,
    /// Combinatorial ε-greedy with the decaying schedule.
    CombEpsilonGreedy {
        /// Decay constant `c`.
        c: f64,
        /// RNG seed of the exploration coin.
        seed: u64,
    },
    /// The "exponential regret" strawman of Section VII: every feasible
    /// strategy is an independent MOSS arm, all structure ignored. Needs an
    /// enumerable family.
    NaiveComArmMoss,
    /// Uniform random feasible strategy (sanity floor). Needs an enumerable
    /// family.
    RandomCombinatorial {
        /// RNG seed.
        seed: u64,
    },
    /// Combinatorial Thompson sampling (Hüyük & Tekin): per-arm Beta
    /// posteriors sampled each round and handed to the strategy oracle.
    /// With a [`EstimatorSpec::Discounted`] or [`EstimatorSpec::SlidingWindow`]
    /// estimator it becomes the nonstationary CTS-D / CTS-SW variant that
    /// tracks [`DriftSpec`] worlds.
    Cts {
        /// RNG seed of the posterior sampler.
        seed: u64,
        /// Evidence estimator behind the posteriors; `None` means stationary.
        estimator: Option<EstimatorSpec>,
    },
}

impl PolicySpec {
    /// `true` when the policy pulls a super-arm per slot (CSO/CSR scenarios).
    pub fn is_combinatorial(&self) -> bool {
        matches!(
            self,
            PolicySpec::DflCso
                | PolicySpec::DflCsr
                | PolicySpec::Cucb
                | PolicySpec::Llr
                | PolicySpec::CombEpsilonGreedy { .. }
                | PolicySpec::NaiveComArmMoss
                | PolicySpec::RandomCombinatorial { .. }
                | PolicySpec::Cts { .. }
        )
    }

    /// The policy's report name (matches `SinglePlayPolicy::name` /
    /// `CombinatorialPolicy::name` of the built instance).
    pub fn display_name(&self) -> &'static str {
        match self {
            PolicySpec::DflSso => "DFL-SSO",
            PolicySpec::DflSsr => "DFL-SSR",
            PolicySpec::DflCso => "DFL-CSO",
            PolicySpec::DflCsr => "DFL-CSR",
            PolicySpec::DflSsoGreedyNeighbor => "DFL-SSO+GN",
            PolicySpec::DflSsrGreedyNeighbor => "DFL-SSR+GN",
            PolicySpec::Moss { .. } => "MOSS",
            PolicySpec::Ucb1 => "UCB1",
            PolicySpec::UcbTuned => "UCB-Tuned",
            PolicySpec::KlUcb { .. } => "KL-UCB",
            PolicySpec::UcbV { .. } => "UCB-V",
            PolicySpec::EpsilonGreedy { .. } | PolicySpec::DecayingEpsilonGreedy { .. } => {
                "EpsilonGreedy"
            }
            PolicySpec::Softmax { .. } => "Softmax",
            PolicySpec::Exp3 { .. } => "EXP3",
            PolicySpec::ThompsonBernoulli { .. } => "Thompson",
            PolicySpec::RandomSingle { .. } => "Random",
            PolicySpec::Cucb => "CUCB",
            PolicySpec::Llr => "LLR",
            PolicySpec::CombEpsilonGreedy { .. } => "CombEpsilonGreedy",
            PolicySpec::NaiveComArmMoss => "NaiveComArm-MOSS",
            PolicySpec::RandomCombinatorial { .. } => "RandomCombinatorial",
            PolicySpec::Cts { estimator, .. } => match estimator {
                Some(EstimatorSpec::Discounted { .. }) => "CTS-D",
                Some(EstimatorSpec::SlidingWindow { .. }) => "CTS-SW",
                None | Some(EstimatorSpec::Stationary) => "CTS",
            },
        }
    }

    /// Checks the policy's hyperparameters without building anything
    /// (currently the CTS estimator: `gamma ∈ (0, 1]`, `window ≥ 1`).
    pub fn validate(&self) -> Result<(), SpecError> {
        if let PolicySpec::Cts {
            estimator: Some(estimator),
            ..
        } = self
        {
            estimator.validate()?;
        }
        Ok(())
    }

    /// Builds the policy against a concrete environment.
    ///
    /// Combinatorial policies require `family`; policies that keep one
    /// estimator per strategy additionally require the family to be
    /// enumerable within the default budget.
    ///
    /// # Errors
    ///
    /// [`SpecError::MissingFamily`], [`SpecError::NotEnumerable`], or
    /// [`SpecError::Invalid`] for inconsistent hyperparameters.
    pub fn build(
        &self,
        bandit: &NetworkedBandit,
        family: Option<&StrategyFamily>,
    ) -> Result<AnyPolicy, SpecError> {
        let graph = bandit.graph();
        let k = bandit.num_arms();
        let need_family = || {
            family.ok_or(SpecError::MissingFamily {
                policy: self.display_name(),
            })
        };
        let enumerate = |family: &StrategyFamily| {
            family.enumerate(graph).ok_or(SpecError::NotEnumerable {
                policy: self.display_name(),
            })
        };
        Ok(match self {
            PolicySpec::DflSso => AnyPolicy::single(core_policies::DflSso::new(graph.clone())),
            PolicySpec::DflSsr => AnyPolicy::single(core_policies::DflSsr::new(graph.clone())),
            PolicySpec::DflSsoGreedyNeighbor => {
                AnyPolicy::single(core_policies::DflSsoGreedyNeighbor::new(graph.clone()))
            }
            PolicySpec::DflSsrGreedyNeighbor => {
                AnyPolicy::single(core_policies::DflSsrGreedyNeighbor::new(graph.clone()))
            }
            PolicySpec::DflCso => {
                let strategies = enumerate(need_family()?)?;
                AnyPolicy::combinatorial(core_policies::DflCso::from_strategies(graph, strategies))
            }
            PolicySpec::DflCsr => AnyPolicy::combinatorial(core_policies::DflCsr::new(
                graph.clone(),
                need_family()?.clone(),
            )),
            PolicySpec::Moss { horizon } => AnyPolicy::single(match horizon {
                Some(n) => baselines::Moss::with_horizon(k, *n),
                None => baselines::Moss::new(k),
            }),
            PolicySpec::Ucb1 => AnyPolicy::single(baselines::Ucb1::new(k)),
            PolicySpec::UcbTuned => AnyPolicy::single(baselines::UcbTuned::new(k)),
            PolicySpec::KlUcb { c } => AnyPolicy::single(match c {
                Some(c) => baselines::KlUcb::with_constant(k, *c),
                None => baselines::KlUcb::new(k),
            }),
            PolicySpec::UcbV { zeta, c } => AnyPolicy::single(match (zeta, c) {
                (Some(zeta), Some(c)) => baselines::UcbV::with_constants(k, *zeta, *c),
                (None, None) => baselines::UcbV::new(k),
                _ => {
                    return Err(SpecError::Invalid {
                        context: "PolicySpec::UcbV",
                        message: "zeta and c must be given together (or both omitted)".into(),
                    })
                }
            }),
            PolicySpec::EpsilonGreedy { epsilon, seed } => {
                AnyPolicy::single(baselines::EpsilonGreedy::new(k, *epsilon, *seed))
            }
            PolicySpec::DecayingEpsilonGreedy { c, seed } => {
                AnyPolicy::single(baselines::EpsilonGreedy::decaying(k, *c, *seed))
            }
            PolicySpec::Softmax { tau, seed } => {
                AnyPolicy::single(baselines::Softmax::new(k, *tau, *seed))
            }
            PolicySpec::Exp3 { gamma, seed } => {
                AnyPolicy::single(baselines::Exp3::new(k, *gamma, *seed))
            }
            PolicySpec::ThompsonBernoulli { seed } => {
                AnyPolicy::single(baselines::ThompsonBernoulli::new(k, *seed))
            }
            PolicySpec::RandomSingle { seed } => {
                AnyPolicy::single(baselines::RandomSingle::new(k, *seed))
            }
            PolicySpec::Cucb => AnyPolicy::combinatorial(baselines::Cucb::new(
                graph.clone(),
                need_family()?.clone(),
            )),
            PolicySpec::Llr => {
                AnyPolicy::combinatorial(baselines::Llr::new(graph.clone(), need_family()?.clone()))
            }
            PolicySpec::CombEpsilonGreedy { c, seed } => AnyPolicy::combinatorial(
                baselines::CombEpsilonGreedy::new(graph.clone(), need_family()?.clone(), *c, *seed),
            ),
            PolicySpec::NaiveComArmMoss => {
                let strategies = enumerate(need_family()?)?;
                AnyPolicy::combinatorial(baselines::NaiveComArmMoss::new(strategies))
            }
            PolicySpec::RandomCombinatorial { seed } => {
                let strategies = enumerate(need_family()?)?;
                AnyPolicy::combinatorial(baselines::RandomCombinatorial::new(strategies, *seed))
            }
            PolicySpec::Cts { seed, estimator } => {
                let kind = match estimator {
                    Some(spec) => {
                        spec.validate()?;
                        spec.build()
                    }
                    None => core_policies::EstimatorKind::Stationary,
                };
                AnyPolicy::combinatorial(core_policies::CombinatorialThompson::with_estimator(
                    graph.clone(),
                    need_family()?.clone(),
                    kind,
                    *seed,
                ))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Side bonus, feedback schedule
// ---------------------------------------------------------------------------

/// Which side bonus neighbours yield (Section II): crossing it with the
/// policy's play mode selects one of the paper's four scenarios
/// (SSO / SSR / CSO / CSR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SideBonus {
    /// Side **observation**: neighbours' samples are revealed, only the pulled
    /// arm's (or strategy's) direct reward is collected (Equations 1–2).
    Observation,
    /// Side **reward**: the whole neighbourhood's reward is collected
    /// (Equations 3–4).
    Reward,
}

/// When a hosted tenant folds delivered feedback into its estimators — the
/// serializable counterpart of `netband_serve::FlushPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedbackSpec {
    /// Apply every event as soon as it arrives, and flush before every decide
    /// (the regime under which a single-shard engine reproduces the batch
    /// simulation bit for bit).
    Immediate,
    /// Let events accumulate and apply them in round-ordered batches of up to
    /// `max_pending`; decides may run on stale estimators in between (the
    /// delayed-feedback regime). `max_pending` must be at least 1.
    Batched {
        /// Flush threshold (≥ 1).
        max_pending: usize,
    },
}

impl FeedbackSpec {
    /// Validates the schedule (rejects `Batched { max_pending: 0 }`).
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            FeedbackSpec::Batched { max_pending: 0 } => Err(SpecError::Invalid {
                context: "FeedbackSpec::Batched",
                message: "max_pending must be at least 1".into(),
            }),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// DriftSpec
// ---------------------------------------------------------------------------

/// Gradual sinusoidal mean drift: arm `i`'s mean is offset by
/// `amplitude · sin(2π · (round/period + i/K))` before clamping to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradualDriftSpec {
    /// Peak mean offset (`|amplitude|` should stay well below 1).
    pub amplitude: f64,
    /// Oscillation period in rounds (≥ 1).
    pub period: u64,
}

/// An abrupt change point: from `round` on, the base mean vector is rotated
/// by a further `rotation` positions (rotations accumulate across change
/// points), so the identity of the best arm moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangePointSpec {
    /// First round the rotation applies to.
    pub round: u64,
    /// Additional rotation applied from `round` on.
    pub rotation: usize,
}

/// Arm churn: `arm` is dead (mean forced to 0) for every round in
/// `[from, to)` — e.g. an ad creative paused, a channel jammed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnWindowSpec {
    /// The churned arm.
    pub arm: ArmId,
    /// First dead round (inclusive).
    pub from: u64,
    /// First live round again (exclusive end).
    pub to: u64,
}

/// Deterministic nonstationarity for a workload — the serializable
/// counterpart of [`netband_env::DriftSchedule`].
///
/// Drift is a pure function of the round number (it consumes no randomness),
/// so a drifting world snapshots and restores bit-exactly: the serialized
/// round counter alone pins the mean vector. All three ingredients compose:
/// change-point rotation is applied first, then gradual drift, then churn,
/// then the result is clamped to `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DriftSpec {
    /// Gradual sinusoidal drift, if any.
    pub gradual: Option<GradualDriftSpec>,
    /// Abrupt change points, in increasing round order.
    pub change_points: Vec<ChangePointSpec>,
    /// Arm churn windows.
    pub churn: Vec<ChurnWindowSpec>,
}

impl DriftSpec {
    /// Checks the schedule against a workload with `num_arms` arms.
    pub fn validate(&self, num_arms: usize) -> Result<(), SpecError> {
        if let Some(gradual) = &self.gradual {
            if !gradual.amplitude.is_finite() || gradual.amplitude.abs() > 1.0 {
                return Err(SpecError::Invalid {
                    context: "DriftSpec",
                    message: format!(
                        "gradual amplitude must be finite with |amplitude| <= 1, got {}",
                        gradual.amplitude
                    ),
                });
            }
            if gradual.period == 0 {
                return Err(SpecError::Invalid {
                    context: "DriftSpec",
                    message: "gradual period must be at least 1".into(),
                });
            }
        }
        for pair in self.change_points.windows(2) {
            if pair[1].round <= pair[0].round {
                return Err(SpecError::Invalid {
                    context: "DriftSpec",
                    message: format!(
                        "change points must have strictly increasing rounds, got {} then {}",
                        pair[0].round, pair[1].round
                    ),
                });
            }
        }
        for window in &self.churn {
            if window.from >= window.to {
                return Err(SpecError::Invalid {
                    context: "DriftSpec",
                    message: format!(
                        "churn window must have from < to, got [{}, {})",
                        window.from, window.to
                    ),
                });
            }
            if window.arm >= num_arms {
                return Err(SpecError::Invalid {
                    context: "DriftSpec",
                    message: format!(
                        "churn arm {} out of range for {} arms",
                        window.arm, num_arms
                    ),
                });
            }
        }
        Ok(())
    }

    /// `true` when the schedule changes nothing (no gradual term, no change
    /// points, no churn) — building it still yields a schedule, but runners
    /// may take the stationary fast path.
    pub fn is_trivial(&self) -> bool {
        self.gradual.is_none() && self.change_points.is_empty() && self.churn.is_empty()
    }

    /// The `netband_env` drift schedule this spec describes.
    pub fn build(&self) -> DriftSchedule {
        DriftSchedule {
            gradual: self.gradual.map(|g| GradualDrift {
                amplitude: g.amplitude,
                period: g.period,
            }),
            change_points: self
                .change_points
                .iter()
                .map(|cp| ChangePoint {
                    round: cp.round,
                    rotation: cp.rotation,
                })
                .collect(),
            churn: self
                .churn
                .iter()
                .map(|w| ChurnWindow {
                    arm: w.arm,
                    from: w.from,
                    to: w.to,
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// WorkloadSpec
// ---------------------------------------------------------------------------

/// A complete environment description: graph model, arm bank, optional
/// feasible family, and the seed that materialises the random parts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The relation-graph model.
    pub graph: GraphSpec,
    /// The arm bank.
    pub arms: ArmsSpec,
    /// The feasible strategy family, if the workload supports combinatorial
    /// play.
    pub family: Option<FamilySpec>,
    /// Deterministic nonstationarity; `None` (the default, and the only value
    /// the presets use) means the arm means never move.
    pub drift: Option<DriftSpec>,
    /// Seed of the instance RNG. The graph is drawn first, then the arm bank,
    /// from one `StdRng` stream — the same order as the hand-written workload
    /// presets, so spec-built instances are bit-identical to them.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Checks internal consistency (graph and arm bank agree on `K`).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.graph.num_arms() != self.arms.num_arms() {
            return Err(SpecError::Invalid {
                context: "WorkloadSpec",
                message: format!(
                    "graph has {} arms but the arm bank has {}",
                    self.graph.num_arms(),
                    self.arms.num_arms()
                ),
            });
        }
        if let Some(drift) = &self.drift {
            drift.validate(self.graph.num_arms())?;
        }
        Ok(())
    }

    /// A short human-readable description used as the built workload's name.
    pub fn describe(&self) -> String {
        let graph = match &self.graph {
            GraphSpec::ErdosRenyi {
                num_arms,
                edge_prob,
            } => format!("er(K={num_arms}, p={edge_prob})"),
            GraphSpec::PreferentialAttachment {
                num_arms,
                edges_per_node,
            } => format!("ba(K={num_arms}, m={edges_per_node})"),
            GraphSpec::PlantedPartition {
                num_arms,
                communities,
                ..
            } => format!("pp(K={num_arms}, c={communities})"),
            GraphSpec::RandomGeometric { num_arms, radius } => {
                format!("rgg(K={num_arms}, r={radius})")
            }
            GraphSpec::Explicit { num_arms, edges } => {
                format!("explicit(K={num_arms}, |E|={})", edges.len())
            }
        };
        format!("spec-workload {graph} seed={}", self.seed)
    }

    /// Materialises the workload: seeds one RNG, draws the graph, then the
    /// arm bank, and attaches the family.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] on inconsistent sizes or a malformed explicit
    /// edge list; [`SpecError::Env`] if the environment rejects the instance.
    pub fn build(&self) -> Result<Workload, SpecError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let graph = self.graph.build(&mut rng)?;
        let arms = self.arms.build(&mut rng);
        let num_arms = graph.num_vertices();
        let bandit = NetworkedBandit::new(graph, arms)?;
        Ok(Workload {
            name: self.describe(),
            bandit,
            family: self.family.as_ref().map(|f| f.build(num_arms)),
            drift: self.drift.as_ref().map(|d| d.build()),
        })
    }
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

/// One fully declared experiment: workload × policy × scenario × schedule.
///
/// This is the unit the whole workspace consumes — `netband_sim::run_spec`
/// simulates it, `netband_serve` hosts it as a tenant, `netband-experiments`
/// declares its figure grids with it, and `netband-bench` tracks its build
/// cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Schema version; must equal [`SPEC_VERSION`].
    pub version: u64,
    /// Human-readable scenario name, used in reports.
    pub name: String,
    /// The environment.
    pub workload: WorkloadSpec,
    /// The learning policy.
    pub policy: PolicySpec,
    /// Side observation vs side reward; with the policy's play mode this
    /// selects SSO, SSR, CSO, or CSR.
    pub side_bonus: SideBonus,
    /// Number of time slots `n` per run.
    pub horizon: usize,
    /// Number of independent replications (≥ 1) for `replicate_spec`-style
    /// consumers; plain `run_spec` runs replication 0 only.
    pub replications: usize,
    /// Base seed of the reward sample path (replication `r` uses `seed + r`,
    /// and regenerates the workload with `workload.seed + r`).
    pub seed: u64,
    /// Feedback schedule for serving-side consumers; the batch simulator
    /// always behaves as [`FeedbackSpec::Immediate`].
    pub feedback: FeedbackSpec,
}

impl ScenarioSpec {
    /// Checks internal consistency without building anything.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.version != SPEC_VERSION {
            return Err(SpecError::UnsupportedVersion {
                found: self.version,
                supported: SPEC_VERSION,
            });
        }
        self.workload.validate()?;
        self.policy.validate()?;
        self.feedback.validate()?;
        if self.replications == 0 {
            return Err(SpecError::Invalid {
                context: "ScenarioSpec",
                message: "replications must be at least 1".into(),
            });
        }
        if self.policy.is_combinatorial() && self.workload.family.is_none() {
            return Err(SpecError::MissingFamily {
                policy: self.policy.display_name(),
            });
        }
        Ok(())
    }

    /// Builds the scenario into a runnable instance: environment, family,
    /// and policy.
    pub fn build(&self) -> Result<BuiltScenario, SpecError> {
        self.build_replication(0)
    }

    /// Builds replication `r`: the workload is regenerated with
    /// `workload.seed + r` and the run seed is `seed + r` (replications are
    /// independent instances, matching the paper's averaged curves).
    pub fn build_replication(&self, r: u64) -> Result<BuiltScenario, SpecError> {
        self.validate()?;
        let workload = WorkloadSpec {
            seed: self.workload.seed.wrapping_add(r),
            ..self.workload.clone()
        }
        .build()?;
        let policy = self
            .policy
            .build(&workload.bandit, workload.family.as_ref())?;
        Ok(BuiltScenario {
            name: self.name.clone(),
            bandit: workload.bandit,
            family: workload.family,
            policy,
            side_bonus: self.side_bonus,
            horizon: self.horizon,
            seed: self.seed.wrapping_add(r),
            drift: workload.drift,
        })
    }
}

/// A built, runnable scenario: the product of [`ScenarioSpec::build`].
#[derive(Debug, Clone)]
pub struct BuiltScenario {
    /// Scenario name (from the spec).
    pub name: String,
    /// The environment instance.
    pub bandit: NetworkedBandit,
    /// The feasible family, if the workload is combinatorial.
    pub family: Option<StrategyFamily>,
    /// The built policy.
    pub policy: AnyPolicy,
    /// Side observation vs side reward.
    pub side_bonus: SideBonus,
    /// Time slots per run.
    pub horizon: usize,
    /// Seed of the reward sample path.
    pub seed: u64,
    /// Deterministic drift schedule; `None` (or a trivial schedule) means the
    /// world is stationary and runners take the classic fast path.
    pub drift: Option<DriftSchedule>,
}

// ---------------------------------------------------------------------------
// FleetSpec
// ---------------------------------------------------------------------------

/// One tenant of a serving fleet: an id plus the scenario it hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTenant {
    /// Tenant id (routes the tenant to a shard).
    pub id: String,
    /// The scenario the tenant hosts.
    pub scenario: ScenarioSpec,
}

/// A whole multi-tenant serving fleet declared as one document —
/// `netband_serve::ServeEngine::register_fleet` boots every tenant from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Schema version; must equal [`SPEC_VERSION`].
    pub version: u64,
    /// Fleet name, for reports.
    pub name: String,
    /// The tenants to register.
    pub tenants: Vec<FleetTenant>,
}

impl FleetSpec {
    /// Checks the fleet: version, per-scenario validity, and unique ids.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.version != SPEC_VERSION {
            return Err(SpecError::UnsupportedVersion {
                found: self.version,
                supported: SPEC_VERSION,
            });
        }
        for (i, tenant) in self.tenants.iter().enumerate() {
            if self.tenants[..i].iter().any(|t| t.id == tenant.id) {
                return Err(SpecError::Invalid {
                    context: "FleetSpec",
                    message: format!("duplicate tenant id {:?}", tenant.id),
                });
            }
            tenant.scenario.validate()?;
        }
        Ok(())
    }
}
