//! [`AnyPolicy`] — one value type over both policy traits.
//!
//! The workspace has two policy traits ([`SinglePlayPolicy`] for SSO/SSR and
//! [`CombinatorialPolicy`] for CSO/CSR); spec documents must be able to name
//! any of them. `AnyPolicy` is the unified build product: a clone-able boxed
//! policy tagged by play mode, which the simulation runners and the serving
//! engine dispatch on.

use std::fmt;

use netband_core::{
    CombinatorialPolicy, DynCombinatorialPolicy, DynSinglePolicy, SinglePlayPolicy,
};

/// A built policy of either play mode.
///
/// Produced by [`PolicySpec::build`](crate::PolicySpec::build); consumed by
/// `netband_sim::run_built` and `netband_serve`'s spec-driven tenant
/// registration. Cloning clones the policy's learned state.
pub enum AnyPolicy {
    /// A single-play policy (pulls one arm per time slot).
    Single(Box<dyn DynSinglePolicy>),
    /// A combinatorial policy (pulls a feasible super-arm per time slot).
    Combinatorial(Box<dyn DynCombinatorialPolicy>),
}

impl AnyPolicy {
    /// Wraps a concrete single-play policy.
    pub fn single(policy: impl SinglePlayPolicy + Clone + 'static) -> Self {
        AnyPolicy::Single(Box::new(policy))
    }

    /// Wraps a concrete combinatorial policy.
    pub fn combinatorial(policy: impl CombinatorialPolicy + Clone + 'static) -> Self {
        AnyPolicy::Combinatorial(Box::new(policy))
    }

    /// The policy's report name (e.g. `"DFL-SSO"`).
    pub fn name(&self) -> &'static str {
        match self {
            AnyPolicy::Single(p) => p.name(),
            AnyPolicy::Combinatorial(p) => p.name(),
        }
    }

    /// `true` when the policy pulls one arm per slot.
    pub fn is_single(&self) -> bool {
        matches!(self, AnyPolicy::Single(_))
    }

    /// Resets the policy to its initial state.
    pub fn reset(&mut self) {
        match self {
            AnyPolicy::Single(p) => p.reset(),
            AnyPolicy::Combinatorial(p) => p.reset(),
        }
    }

    /// The policy as a single-play trait object, if it is one.
    ///
    /// The returned reference is the boxed policy itself (boxes forward the
    /// trait), so it can slot straight into `run_single_coupled`-style drivers.
    pub fn as_single_mut(&mut self) -> Option<&mut dyn SinglePlayPolicy> {
        match self {
            AnyPolicy::Single(p) => Some(p),
            AnyPolicy::Combinatorial(_) => None,
        }
    }

    /// The policy as a combinatorial trait object, if it is one.
    pub fn as_combinatorial_mut(&mut self) -> Option<&mut dyn CombinatorialPolicy> {
        match self {
            AnyPolicy::Single(_) => None,
            AnyPolicy::Combinatorial(p) => Some(p),
        }
    }

    /// Unwraps into the boxed single-play policy, if it is one.
    pub fn into_single(self) -> Option<Box<dyn DynSinglePolicy>> {
        match self {
            AnyPolicy::Single(p) => Some(p),
            AnyPolicy::Combinatorial(_) => None,
        }
    }

    /// Unwraps into the boxed combinatorial policy, if it is one.
    pub fn into_combinatorial(self) -> Option<Box<dyn DynCombinatorialPolicy>> {
        match self {
            AnyPolicy::Single(_) => None,
            AnyPolicy::Combinatorial(p) => Some(p),
        }
    }
}

impl Clone for AnyPolicy {
    fn clone(&self) -> Self {
        match self {
            AnyPolicy::Single(p) => AnyPolicy::Single(p.clone_box()),
            AnyPolicy::Combinatorial(p) => AnyPolicy::Combinatorial(p.clone_box()),
        }
    }
}

/// `Debug` shows the play mode and report name; policy internals are opaque.
impl fmt::Debug for AnyPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyPolicy::Single(p) => write!(f, "AnyPolicy::Single({})", p.name()),
            AnyPolicy::Combinatorial(p) => {
                write!(f, "AnyPolicy::Combinatorial({})", p.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_baselines::{Moss, RandomCombinatorial};

    #[test]
    fn single_accessors_dispatch() {
        let mut any = AnyPolicy::single(Moss::new(4));
        assert!(any.is_single());
        assert_eq!(any.name(), "MOSS");
        assert!(any.as_combinatorial_mut().is_none());
        let policy = any.as_single_mut().expect("single");
        let first = policy.select_arm(1);
        assert!(first < 4);
        // Reset restores the initial state: the first decision repeats.
        any.reset();
        assert_eq!(any.as_single_mut().unwrap().select_arm(1), first);
        assert!(any.clone().into_single().is_some());
    }

    #[test]
    fn combinatorial_accessors_dispatch() {
        let strategies = vec![vec![0], vec![1, 2]];
        let mut any = AnyPolicy::combinatorial(RandomCombinatorial::new(strategies, 7));
        assert!(!any.is_single());
        assert!(any.as_single_mut().is_none());
        let s = any.as_combinatorial_mut().unwrap().select_strategy(1);
        assert!(s == vec![0] || s == vec![1, 2]);
        assert!(any.clone().into_combinatorial().is_some());
        assert!(any.into_single().is_none());
    }

    #[test]
    fn clone_copies_learned_state() {
        let mut original = AnyPolicy::single(Moss::new(3));
        let p = original.as_single_mut().unwrap();
        let arm = p.select_arm(1);
        p.update(
            1,
            &netband_env::SinglePlayFeedback {
                arm,
                direct_reward: 1.0,
                side_reward: 1.0,
                observations: vec![(arm, 1.0)],
            },
        );
        let mut cloned = original.clone();
        // Both continue identically from the same state.
        assert_eq!(
            original.as_single_mut().unwrap().select_arm(2),
            cloned.as_single_mut().unwrap().select_arm(2)
        );
    }
}
