//! Error type shared by the JSON codec and the build factories.

use std::fmt;

use netband_env::EnvError;

/// Everything that can go wrong between a spec document and a runnable
/// scenario: malformed JSON, schema violations (unknown fields, unknown enum
/// variants, missing fields, unsupported versions), semantically invalid
/// values, and environment construction failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not well-formed JSON.
    Json {
        /// Byte offset at which parsing failed.
        offset: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A required field is absent.
    MissingField {
        /// The object being decoded (e.g. `"ScenarioSpec"`).
        context: &'static str,
        /// The absent field.
        field: &'static str,
    },
    /// A field the schema does not define (specs are decoded strictly, so
    /// typos never pass silently).
    UnknownField {
        /// The object being decoded.
        context: &'static str,
        /// The unrecognised key.
        field: String,
    },
    /// A `"type"` tag (or bare enum string) that names no known variant.
    UnknownVariant {
        /// The enum being decoded (e.g. `"PolicySpec"`).
        context: &'static str,
        /// The unrecognised variant name.
        variant: String,
    },
    /// The document's `version` is not one this build understands.
    UnsupportedVersion {
        /// The version the document declared.
        found: u64,
        /// The version this build supports.
        supported: u64,
    },
    /// A field has the wrong JSON type or an out-of-domain value.
    Invalid {
        /// The object or field being decoded/built.
        context: &'static str,
        /// What is wrong with it.
        message: String,
    },
    /// A combinatorial policy was requested for a workload that declares no
    /// feasible strategy family.
    MissingFamily {
        /// The policy that needs the family.
        policy: &'static str,
    },
    /// A policy that operates on an explicitly enumerated feasible set was
    /// requested for a family too large to enumerate.
    NotEnumerable {
        /// The policy that needs the enumeration.
        policy: &'static str,
    },
    /// The environment rejected the built instance.
    Env(EnvError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json { offset, message } => {
                write!(f, "malformed JSON at byte {offset}: {message}")
            }
            SpecError::MissingField { context, field } => {
                write!(f, "{context}: missing required field {field:?}")
            }
            SpecError::UnknownField { context, field } => {
                write!(f, "{context}: unknown field {field:?}")
            }
            SpecError::UnknownVariant { context, variant } => {
                write!(f, "{context}: unknown variant {variant:?}")
            }
            SpecError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported spec version {found} (this build supports version {supported})"
                )
            }
            SpecError::Invalid { context, message } => write!(f, "{context}: {message}"),
            SpecError::MissingFamily { policy } => {
                write!(
                    f,
                    "policy {policy} is combinatorial but the workload declares no strategy family"
                )
            }
            SpecError::NotEnumerable { policy } => {
                write!(
                    f,
                    "policy {policy} needs an explicitly enumerated feasible set, but the family \
                     exceeds the enumeration budget"
                )
            }
            SpecError::Env(e) => write!(f, "environment error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<EnvError> for SpecError {
    fn from(e: EnvError) -> Self {
        SpecError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let cases: Vec<(SpecError, &str)> = vec![
            (
                SpecError::Json {
                    offset: 12,
                    message: "expected ':'".into(),
                },
                "byte 12",
            ),
            (
                SpecError::MissingField {
                    context: "ScenarioSpec",
                    field: "horizon",
                },
                "horizon",
            ),
            (
                SpecError::UnknownField {
                    context: "GraphSpec",
                    field: "edge_porb".into(),
                },
                "edge_porb",
            ),
            (
                SpecError::UnknownVariant {
                    context: "PolicySpec",
                    variant: "dfl_xyz".into(),
                },
                "dfl_xyz",
            ),
            (
                SpecError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (SpecError::MissingFamily { policy: "DFL-CSR" }, "DFL-CSR"),
            (SpecError::NotEnumerable { policy: "DFL-CSO" }, "DFL-CSO"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
