//! A minimal JSON value, parser, and writer.
//!
//! The workspace vendors an API-subset `serde` shim whose derives are no-ops
//! (see `vendor/README.md`), so spec documents are (de)serialised through this
//! hand-rolled codec instead. It is deliberately small and strict:
//!
//! * numbers keep their **raw lexeme** (`Json::Number` stores the token
//!   text), so `u64` seeds survive without passing through `f64`, and `f64`
//!   values round-trip exactly (Rust's `{}` formatting emits the shortest
//!   representation that re-parses to the same bits);
//! * duplicate object keys are a parse error (a spec with two `seed` fields is
//!   ambiguous, not "last one wins");
//! * strings follow RFC 8259 strictly: raw (unescaped) control characters and
//!   lone `\uXXXX` surrogates are parse errors, surrogate *pairs* decode to
//!   the astral-plane character; the writer emits UTF-8 with the mandatory
//!   escapes only. String round-tripping — including astral-plane and control
//!   characters — is proptest-pinned, since this codec is also the network
//!   wire format (`netband-spec::wire`).

use std::fmt::Write as _;

use crate::error::SpecError;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw (validated) lexeme.
    Number(String),
    /// A string (escapes already resolved).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order preserved, keys unique.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A number node from a `u64` (exact).
    pub fn from_u64(v: u64) -> Json {
        Json::Number(v.to_string())
    }

    /// A number node from a finite `f64` (shortest round-trip lexeme).
    ///
    /// # Panics
    ///
    /// Panics on non-finite input — specs never contain NaN/infinities.
    pub fn from_f64(v: f64) -> Json {
        assert!(v.is_finite(), "spec numbers must be finite, got {v}");
        Json::Number(format!("{v}"))
    }

    /// The value as `u64`, if it is an integral number lexeme in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(lexeme) => lexeme.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is an integral number lexeme in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(lexeme) => lexeme.parse::<usize>().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(lexeme) => lexeme.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialises the value to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialises the value to indented JSON text (2-space indent), for
    /// checked-in documents and examples.
    pub fn to_text_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Array(items) if !items.is_empty() => {
                // Scalar-only arrays stay on one line (e.g. an edge pair).
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Object(_) | Json::Array(_)))
                {
                    self.write(out);
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_string(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(lexeme) => out.push_str(lexeme),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, SpecError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> SpecError {
        SpecError::Json {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), SpecError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), SpecError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(format!("expected {keyword:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, SpecError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.expect_keyword("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.expect_keyword("null").map(|_| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, SpecError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| k == &key) {
                return Err(self.error(format!("duplicate object key {key:?}")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, SpecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                self.pos += 1; // consume the final hex digit position
                                self.expect_keyword("\\u")
                                    .map_err(|_| self.error("expected low surrogate"))?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    // `hex4` leaves `pos` on its last digit; single-char
                    // escapes leave it on the escape letter. Advance past it.
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    // RFC 8259 §7: control characters must be \u-escaped; a
                    // raw one is a malformed document, not data. (The writer
                    // always escapes them, so accepting raw ones would make
                    // the decoder accept documents the codec can never emit.)
                    return Err(self.error(format!(
                        "raw control character 0x{b:02x} in string (must be \\u-escaped)"
                    )));
                }
                Some(_) => {
                    // Consume the maximal run of unescaped bytes in one
                    // chunk. Runs break only at ASCII bytes (quote,
                    // backslash, control), which never occur inside a
                    // multi-byte UTF-8 sequence, so the slice sits on char
                    // boundaries of the (already valid UTF-8) input.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is &str and runs break at ASCII bytes");
                    out.push_str(run);
                }
            }
        }
    }

    /// Reads 4 hex digits starting at `pos` (the first digit); leaves `pos` on
    /// the **last** digit so the caller's uniform `pos += 1` steps past it.
    fn hex4(&mut self) -> Result<u32, SpecError> {
        let mut value = 0u32;
        for i in 0..4 {
            let digit = self
                .bytes
                .get(self.pos + i)
                .and_then(|b| (*b as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits in \\u escape"))?;
            value = value * 16 + digit;
        }
        self.pos += 3;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, SpecError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number lexemes are ASCII")
            .to_owned();
        // Every lexeme must parse to a *finite* f64: Rust parses exponent
        // overflow like `1e400` to infinity (not an error), and a non-finite
        // value would violate the writer's finiteness contract downstream.
        match lexeme.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Number(lexeme)),
            _ => Err(self.error(format!("invalid or non-finite number {lexeme:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        let fields = doc.as_object().unwrap();
        assert_eq!(fields.len(), 2);
        let items = fields[0].1.as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert!(items[2].as_object().unwrap()[0].1.is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "[1 2]",
            "01x",
            "\"\\q\"",
            "{\"a\":1} extra",
            "nan",
            "1.",
            "1e",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Exponent overflow parses to infinity in Rust, which would crash the
    /// writer's finiteness assert later; the decoder rejects it up front.
    #[test]
    fn rejects_non_finite_numbers() {
        for bad in ["1e400", "-1e999", "1e308001"] {
            let err = parse(bad).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
        // The largest finite values still pass.
        assert_eq!(
            parse("1.7976931348623157e308").unwrap().as_f64(),
            Some(f64::MAX)
        );
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse(r#"{"seed": 1, "seed": 2}"#).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{08}\u{0C}\r π \u{1}";
        let text = Json::String(original.to_owned()).to_text();
        assert_eq!(parse(&text).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""\u00e9""#).unwrap().as_str(), Some("é"));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 7;
        let text = Json::from_u64(seed).to_text();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn f64_values_round_trip_bit_exactly() {
        for v in [0.35, 1.0 / 3.0, 1e-308, 123456.789e12, 0.1 + 0.2] {
            let text = Json::from_f64(v).to_text();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn writer_output_reparses() {
        let doc = Json::Object(vec![
            ("k".into(), Json::Array(vec![Json::Null, Json::Bool(true)])),
            ("n".into(), Json::from_f64(0.25)),
            ("s".into(), Json::String("v\"w".into())),
        ]);
        assert_eq!(parse(&doc.to_text()).unwrap(), doc);
    }

    #[test]
    fn rejects_raw_control_characters_in_strings() {
        // RFC 8259 §7: U+0000..U+001F must appear escaped. The escaped forms
        // of the same strings stay accepted.
        for (raw, escaped) in [
            ("\"a\u{01}b\"", r#""a\u0001b""#),
            ("\"\n\"", r#""\n""#),
            ("\"\u{00}\"", r#""\u0000""#),
            ("\"x\ty\"", r#""x\ty""#),
            ("\"\u{1f}\"", r#""\u001f""#),
        ] {
            let err = parse(raw).unwrap_err();
            assert!(err.to_string().contains("control"), "{raw:?}: {err}");
            assert!(parse(escaped).is_ok(), "escaped form {escaped} rejected");
        }
        // 0x20 (space) and 0x7F (DEL) are not control characters per the
        // grammar and stay accepted raw.
        assert_eq!(parse("\" \u{7f} \"").unwrap().as_str(), Some(" \u{7f} "));
    }

    #[test]
    fn rejects_lone_and_malformed_surrogate_escapes() {
        for bad in [
            r#""\udc00""#,       // lone low surrogate
            r#""\ud83d""#,       // lone high surrogate at end of string
            r#""\ud83dx""#,      // high surrogate followed by a plain char
            r#""\ud83d\ud83d""#, // high surrogate followed by another high
            r#""\ud83d\n""#,     // high surrogate followed by a short escape
            r#""\u12""#,         // truncated hex
            r#""\uD8ZZ\uDE00""#, // non-hex digits
        ] {
            assert!(parse(bad).is_err(), "accepted {bad}");
        }
        // Case-insensitive hex in a valid pair still decodes.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    /// `\uXXXX`-escape every scalar value of `s`, using surrogate pairs for
    /// astral-plane characters — the adversarial encoding the writer never
    /// produces but the decoder must accept.
    fn fully_escaped(s: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("\"");
        for c in s.chars() {
            let cp = c as u32;
            if cp <= 0xFFFF {
                write!(out, "\\u{cp:04x}").unwrap();
            } else {
                let v = cp - 0x1_0000;
                write!(
                    out,
                    "\\u{:04x}\\u{:04x}",
                    0xD800 + (v >> 10),
                    0xDC00 + (v & 0x3FF)
                )
                .unwrap();
            }
        }
        out.push('"');
        out
    }

    /// Mix of ASCII/control, BMP, and full-range code points so control
    /// characters and astral-plane characters both appear often, not once in
    /// a million draws.
    fn arb_string() -> impl Strategy<Value = String> {
        (
            proptest::collection::vec(0u32..=0x7F, 0..=12),
            proptest::collection::vec(0u32..=0xFFFF, 0..=12),
            proptest::collection::vec(0u32..=0x0011_0000, 0..=12),
        )
            .prop_map(|(ascii, bmp, full)| {
                ascii
                    .into_iter()
                    .chain(bmp)
                    .chain(full)
                    // Drops surrogates (not Rust chars) and the one
                    // out-of-range value; everything else survives.
                    .filter_map(char::from_u32)
                    .collect()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn arbitrary_strings_round_trip_through_the_codec(s in arb_string()) {
            let compact = Json::String(s.clone()).to_text();
            prop_assert_eq!(parse(&compact).unwrap().as_str(), Some(s.as_str()));
            let pretty = Json::String(s.clone()).to_text_pretty();
            prop_assert_eq!(parse(pretty.trim_end()).unwrap().as_str(), Some(s.as_str()));
        }

        #[test]
        fn fully_escaped_strings_decode_to_the_original(s in arb_string()) {
            prop_assert_eq!(parse(&fully_escaped(&s)).unwrap().as_str(), Some(s.as_str()));
        }
    }
}
