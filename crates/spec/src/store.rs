//! Durable-state documents for the `netband-store` persistence layer.
//!
//! `netband-store` keeps a per-shard write-ahead log plus compacted snapshot
//! files on disk; the documents it frames are defined **here**, next to the
//! [`ScenarioSpec`] codec they embed, for the same reason the wire protocol
//! lives in this crate: the durable format inherits every property of the
//! spec codec —
//!
//! * **strict decoding** — unknown fields, unknown `"type"` tags, duplicate
//!   keys, and unsupported `version` numbers are hard errors, so a corrupted
//!   or future-format file fails loudly instead of half-restoring a tenant;
//! * **numeric exactness** — every `f64` (estimator means, window rings,
//!   regret traces, reward sums) travels as a shortest round-trip lexeme
//!   ([`Json::from_f64`]) and re-parses bit-identically, which is what lets
//!   crash recovery resume the exact learning trajectory;
//! * **no new dependencies** — the hand-rolled [`crate::json`] codec over
//!   `std` only.
//!
//! Framing (length prefixes, CRCs, fsync batching, torn-tail handling) is
//! storage business and lives in `netband-store`; this module is just the
//! payload model:
//!
//! | document                 | role                                         |
//! |--------------------------|----------------------------------------------|
//! | [`WalRecord`]            | one logged engine mutation (append-only log) |
//! | [`StoredTenantSnapshot`] | one tenant's complete durable state          |
//! | [`ShardSnapshot`]        | a compacted checkpoint of one shard          |
//!
//! The **structure/state split**: a snapshot never serializes policy
//! structure (graphs, enumerated feasible sets, oracle scratch). It stores
//! the originating [`ScenarioSpec`] — from which the structure is rebuilt
//! deterministically — plus the learned [`PolicyState`] arrays, the tenant
//! RNG words, and the serving counters. Restore = build from scenario, then
//! load the state on top.

use netband_core::PolicyState;

use crate::codec::{
    get_f64, get_str, get_u64, scenario_from_json, scenario_to_json, tag_of, tagged, Obj,
};
use crate::error::SpecError;
use crate::json::{parse, Json};
use crate::model::ScenarioSpec;
use crate::wire::{event_from_json, event_to_json, WireEvent};

/// Version stamp of the durable-state document format. Bump when a field
/// changes meaning; decoding any other version is a hard error
/// ([`SpecError::UnsupportedVersion`]), never a silent best-effort read.
pub const STORE_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// model types
// ---------------------------------------------------------------------------

/// A tenant's serving counters, persisted so a recovered engine reports the
/// same metrics it would have reported without the crash. Mirrors
/// `netband-serve`'s `TenantMetrics` (which this crate cannot name without a
/// dependency cycle).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoredTenantMetrics {
    /// Decisions served.
    pub decides: u64,
    /// Feedback events accepted into the pending queue.
    pub feedback_events: u64,
    /// Feedback batches flushed into the policy.
    pub batches_flushed: u64,
    /// Feedback events applied by those flushes.
    pub events_applied: u64,
    /// Largest batch applied by a single flush.
    pub max_batch: u64,
}

/// One tenant's complete durable state: everything needed to resume the
/// tenant bit-exactly that is not derivable from its scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTenantSnapshot {
    /// Document format version; must equal [`STORE_VERSION`].
    pub version: u64,
    /// Tenant id.
    pub id: String,
    /// The originating scenario. The bandit environment, policy structure,
    /// drift schedule, and benchmark optimum are all rebuilt from this
    /// document on restore; only learned/served state is stored explicitly.
    pub scenario: Box<ScenarioSpec>,
    /// Rounds served so far.
    pub round: u64,
    /// Running sum of per-round optima (the regret baseline).
    pub optimal_sum: f64,
    /// Cumulative realised reward.
    pub total_reward: f64,
    /// Flush trigger: apply pending feedback once this many events queue up.
    pub flush_max_pending: u64,
    /// Whether every decide flushes pending feedback first.
    pub flush_before_decide: bool,
    /// Whether each decide applies its own feedback immediately.
    pub auto_feedback: bool,
    /// Whether decide replies echo the revealed feedback event.
    pub echo_feedback: bool,
    /// The tenant RNG's raw xoshiro256++ state words.
    pub rng: [u64; 4],
    /// The hosted policy's learned state (estimator arrays, policy RNG, …).
    pub policy: PolicyState,
    /// Per-round realised regret, one entry per served round.
    pub realised: Vec<f64>,
    /// Per-round pseudo-regret, one entry per served round.
    pub pseudo: Vec<f64>,
    /// Feedback events queued but not yet flushed, in **arrival order** (the
    /// order that, re-queued on restore, reproduces the eventual flush's
    /// stable sort exactly).
    pub pending: Vec<(u64, WireEvent)>,
    /// Serving counters.
    pub metrics: StoredTenantMetrics,
}

/// A compacted checkpoint of one shard: every resident (and evicted) tenant
/// at a single logical point, superseding the WAL prefix it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Document format version; must equal [`STORE_VERSION`].
    pub version: u64,
    /// Compaction epoch. Snapshot epoch `E` pairs with WAL epoch `E`: the
    /// snapshot captures everything up to the rotation point, the matching
    /// WAL holds only mutations after it.
    pub epoch: u64,
    /// All tenants of the shard, in stable (registration) order.
    pub tenants: Vec<StoredTenantSnapshot>,
}

/// One logged engine mutation. A shard's WAL replays, in order, on top of
/// the latest [`ShardSnapshot`] to reconstruct the exact pre-crash state.
///
/// Only **successful** mutations are logged, after they execute; commands
/// the shard rejected never reach the log, so replay cannot fail where the
/// original run succeeded.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A tenant was registered from a scenario document. The serving knobs a
    /// caller may customise *after* building the spec from its document
    /// (flush policy, auto-feedback, echo) are logged alongside, so replay
    /// reproduces the tenant exactly as registered.
    Register {
        /// Tenant id.
        id: String,
        /// The full scenario. Boxed so the rare registration record doesn't
        /// inflate every hot-path `WalRecord`.
        scenario: Box<ScenarioSpec>,
        /// Flush trigger: apply pending feedback once this many events queue.
        flush_max_pending: u64,
        /// Whether every decide flushes pending feedback first.
        flush_before_decide: bool,
        /// Whether each decide applies its own feedback immediately.
        auto_feedback: bool,
        /// Whether decide replies echo the revealed feedback event.
        echo_feedback: bool,
    },
    /// A tenant was restored from an in-memory snapshot (the engine's
    /// `restore_tenant` path). The full durable state is logged because the
    /// restored tenant's history is not reachable from this shard's log.
    Restore {
        /// The restored tenant's complete durable state.
        snapshot: Box<StoredTenantSnapshot>,
    },
    /// `count` consecutive decisions were served to a tenant. The decisions
    /// themselves are not logged: the tenant's RNG and policy state
    /// regenerate them bit-exactly on replay.
    Decide {
        /// Tenant id.
        tenant: String,
        /// Number of decisions served.
        count: u64,
    },
    /// One feedback event was accepted into a tenant's pending queue.
    Feedback {
        /// Tenant id.
        tenant: String,
        /// The round the event answers.
        round: u64,
        /// The event body.
        event: WireEvent,
    },
    /// A tenant's pending feedback was explicitly flushed into its policy.
    /// (Threshold-triggered flushes are implied by the `Feedback` records
    /// that caused them and are not logged separately.)
    Flush {
        /// Tenant id.
        tenant: String,
    },
    /// A tenant was removed from the engine (`evict_tenant`): its state left
    /// the serving fleet entirely, so replay drops it too.
    Removed {
        /// Tenant id.
        tenant: String,
    },
    /// Every tenant's pending feedback was flushed (`drain`).
    Drain,
}

// ---------------------------------------------------------------------------
// scalar helpers on top of the codec's strict-object reader
// ---------------------------------------------------------------------------

fn get_bool(value: &Json, ctx: &'static str) -> Result<bool, SpecError> {
    value.as_bool().ok_or(SpecError::Invalid {
        context: ctx,
        message: format!("expected a boolean, got {}", value.to_text()),
    })
}

fn u64_array_json(values: &[u64]) -> Json {
    Json::Array(values.iter().map(|&v| Json::from_u64(v)).collect())
}

fn f64_array_json(values: &[f64]) -> Json {
    Json::Array(values.iter().map(|&v| Json::from_f64(v)).collect())
}

fn get_u64_array(value: &Json, ctx: &'static str) -> Result<Vec<u64>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of non-negative integers".into(),
    })?;
    items.iter().map(|item| get_u64(item, ctx)).collect()
}

fn get_f64_array(value: &Json, ctx: &'static str) -> Result<Vec<f64>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of numbers".into(),
    })?;
    items.iter().map(|item| get_f64(item, ctx)).collect()
}

fn nested_u64_json(rows: &[Vec<u64>]) -> Json {
    Json::Array(rows.iter().map(|row| u64_array_json(row)).collect())
}

fn nested_f64_json(rows: &[Vec<f64>]) -> Json {
    Json::Array(rows.iter().map(|row| f64_array_json(row)).collect())
}

fn get_nested_u64(value: &Json, ctx: &'static str) -> Result<Vec<Vec<u64>>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of integer arrays".into(),
    })?;
    items.iter().map(|item| get_u64_array(item, ctx)).collect()
}

fn get_nested_f64(value: &Json, ctx: &'static str) -> Result<Vec<Vec<f64>>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of number arrays".into(),
    })?;
    items.iter().map(|item| get_f64_array(item, ctx)).collect()
}

fn rng_json(words: &[u64; 4]) -> Json {
    u64_array_json(words)
}

fn get_rng(value: &Json, ctx: &'static str) -> Result<[u64; 4], SpecError> {
    let words = get_u64_array(value, ctx)?;
    <[u64; 4]>::try_from(words).map_err(|words| SpecError::Invalid {
        context: ctx,
        message: format!("rng state must be 4 words, got {}", words.len()),
    })
}

fn check_version(found: u64) -> Result<(), SpecError> {
    if found != STORE_VERSION {
        return Err(SpecError::UnsupportedVersion {
            found,
            supported: STORE_VERSION,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// PolicyState
// ---------------------------------------------------------------------------

/// Encodes a policy's learned-state bag. The `rng` key is omitted entirely
/// (not emitted as `null`) when the policy keeps no generator, so re-encoding
/// a decoded document is byte-identical.
pub fn policy_state_to_json(state: &PolicyState) -> Json {
    let mut fields = vec![
        ("counts".into(), nested_u64_json(&state.counts)),
        ("floats".into(), nested_f64_json(&state.floats)),
        ("windows".into(), nested_f64_json(&state.windows)),
    ];
    if let Some(rng) = &state.rng {
        fields.push(("rng".into(), rng_json(rng)));
    }
    Json::Object(fields)
}

/// Decodes a policy's learned-state bag (strict).
pub fn policy_state_from_json(value: &Json) -> Result<PolicyState, SpecError> {
    const CTX: &str = "PolicyState";
    let mut obj = Obj::new(value, CTX)?;
    let state = PolicyState {
        counts: get_nested_u64(obj.req("counts")?, CTX)?,
        floats: get_nested_f64(obj.req("floats")?, CTX)?,
        windows: get_nested_f64(obj.req("windows")?, CTX)?,
        rng: obj.opt("rng").map(|v| get_rng(v, CTX)).transpose()?,
    };
    obj.finish()?;
    Ok(state)
}

// ---------------------------------------------------------------------------
// StoredTenantMetrics
// ---------------------------------------------------------------------------

fn metrics_to_json(metrics: &StoredTenantMetrics) -> Json {
    Json::Object(vec![
        ("decides".into(), Json::from_u64(metrics.decides)),
        (
            "feedback_events".into(),
            Json::from_u64(metrics.feedback_events),
        ),
        (
            "batches_flushed".into(),
            Json::from_u64(metrics.batches_flushed),
        ),
        (
            "events_applied".into(),
            Json::from_u64(metrics.events_applied),
        ),
        ("max_batch".into(), Json::from_u64(metrics.max_batch)),
    ])
}

fn metrics_from_json(value: &Json) -> Result<StoredTenantMetrics, SpecError> {
    const CTX: &str = "StoredTenantMetrics";
    let mut obj = Obj::new(value, CTX)?;
    let metrics = StoredTenantMetrics {
        decides: get_u64(obj.req("decides")?, CTX)?,
        feedback_events: get_u64(obj.req("feedback_events")?, CTX)?,
        batches_flushed: get_u64(obj.req("batches_flushed")?, CTX)?,
        events_applied: get_u64(obj.req("events_applied")?, CTX)?,
        max_batch: get_u64(obj.req("max_batch")?, CTX)?,
    };
    obj.finish()?;
    Ok(metrics)
}

// ---------------------------------------------------------------------------
// StoredTenantSnapshot
// ---------------------------------------------------------------------------

/// Encodes one tenant's durable state.
pub fn snapshot_to_json(snapshot: &StoredTenantSnapshot) -> Json {
    Json::Object(vec![
        ("version".into(), Json::from_u64(snapshot.version)),
        ("id".into(), Json::String(snapshot.id.clone())),
        ("scenario".into(), scenario_to_json(&snapshot.scenario)),
        ("round".into(), Json::from_u64(snapshot.round)),
        ("optimal_sum".into(), Json::from_f64(snapshot.optimal_sum)),
        ("total_reward".into(), Json::from_f64(snapshot.total_reward)),
        (
            "flush_max_pending".into(),
            Json::from_u64(snapshot.flush_max_pending),
        ),
        (
            "flush_before_decide".into(),
            Json::Bool(snapshot.flush_before_decide),
        ),
        ("auto_feedback".into(), Json::Bool(snapshot.auto_feedback)),
        ("echo_feedback".into(), Json::Bool(snapshot.echo_feedback)),
        ("rng".into(), rng_json(&snapshot.rng)),
        ("policy".into(), policy_state_to_json(&snapshot.policy)),
        ("realised".into(), f64_array_json(&snapshot.realised)),
        ("pseudo".into(), f64_array_json(&snapshot.pseudo)),
        (
            "pending".into(),
            Json::Array(
                snapshot
                    .pending
                    .iter()
                    .map(|(round, event)| {
                        Json::Object(vec![
                            ("round".into(), Json::from_u64(*round)),
                            ("event".into(), event_to_json(event)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("metrics".into(), metrics_to_json(&snapshot.metrics)),
    ])
}

/// Decodes one tenant's durable state (strict). Beyond schema checks, the
/// cross-field invariants a well-formed snapshot always satisfies are
/// enforced here, so silent corruption that survives the CRC (e.g. a
/// truncated trace array inside an otherwise valid document) still fails
/// loudly: the regret trace must hold exactly one entry per served round,
/// and every pending event must quote a served round.
pub fn snapshot_from_json(value: &Json) -> Result<StoredTenantSnapshot, SpecError> {
    const CTX: &str = "StoredTenantSnapshot";
    let mut obj = Obj::new(value, CTX)?;
    // The version gate comes first so documents from a future schema fail
    // with `UnsupportedVersion` before any stricter field check confuses
    // the matter.
    let version = get_u64(obj.req("version")?, CTX)?;
    check_version(version)?;
    let id = get_str(obj.req("id")?, CTX)?.to_owned();
    let scenario = Box::new(scenario_from_json(obj.req("scenario")?)?);
    let round = get_u64(obj.req("round")?, CTX)?;
    let snapshot = StoredTenantSnapshot {
        version,
        id,
        scenario,
        round,
        optimal_sum: get_f64(obj.req("optimal_sum")?, CTX)?,
        total_reward: get_f64(obj.req("total_reward")?, CTX)?,
        flush_max_pending: get_u64(obj.req("flush_max_pending")?, CTX)?,
        flush_before_decide: get_bool(obj.req("flush_before_decide")?, CTX)?,
        auto_feedback: get_bool(obj.req("auto_feedback")?, CTX)?,
        echo_feedback: get_bool(obj.req("echo_feedback")?, CTX)?,
        rng: get_rng(obj.req("rng")?, CTX)?,
        policy: policy_state_from_json(obj.req("policy")?)?,
        realised: get_f64_array(obj.req("realised")?, CTX)?,
        pseudo: get_f64_array(obj.req("pseudo")?, CTX)?,
        pending: {
            let items = obj.req("pending")?.as_array().ok_or(SpecError::Invalid {
                context: CTX,
                message: "expected an array of pending feedback entries".into(),
            })?;
            items
                .iter()
                .map(|item| {
                    let mut entry = Obj::new(item, "stored pending entry")?;
                    let round = get_u64(entry.req("round")?, "stored pending entry")?;
                    let event = event_from_json(entry.req("event")?)?;
                    entry.finish()?;
                    Ok((round, event))
                })
                .collect::<Result<Vec<_>, SpecError>>()?
        },
        metrics: metrics_from_json(obj.req("metrics")?)?,
    };
    obj.finish()?;
    let served = usize::try_from(snapshot.round).map_err(|_| SpecError::Invalid {
        context: CTX,
        message: format!("round {} exceeds the platform's usize", snapshot.round),
    })?;
    if snapshot.realised.len() != served || snapshot.pseudo.len() != served {
        return Err(SpecError::Invalid {
            context: CTX,
            message: format!(
                "regret trace holds {} realised / {} pseudo entries for {} served rounds",
                snapshot.realised.len(),
                snapshot.pseudo.len(),
                snapshot.round
            ),
        });
    }
    for &(round, _) in &snapshot.pending {
        if round == 0 || round > snapshot.round {
            return Err(SpecError::Invalid {
                context: CTX,
                message: format!(
                    "pending feedback quotes round {round}, but only {} rounds were served",
                    snapshot.round
                ),
            });
        }
    }
    Ok(snapshot)
}

// ---------------------------------------------------------------------------
// ShardSnapshot
// ---------------------------------------------------------------------------

/// Encodes a shard checkpoint.
pub fn shard_snapshot_to_json(snapshot: &ShardSnapshot) -> Json {
    Json::Object(vec![
        ("version".into(), Json::from_u64(snapshot.version)),
        ("epoch".into(), Json::from_u64(snapshot.epoch)),
        (
            "tenants".into(),
            Json::Array(snapshot.tenants.iter().map(snapshot_to_json).collect()),
        ),
    ])
}

/// Decodes a shard checkpoint (strict).
pub fn shard_snapshot_from_json(value: &Json) -> Result<ShardSnapshot, SpecError> {
    const CTX: &str = "ShardSnapshot";
    let mut obj = Obj::new(value, CTX)?;
    let version = get_u64(obj.req("version")?, CTX)?;
    check_version(version)?;
    let epoch = get_u64(obj.req("epoch")?, CTX)?;
    let items = obj.req("tenants")?.as_array().ok_or(SpecError::Invalid {
        context: CTX,
        message: "expected an array of tenant snapshots".into(),
    })?;
    let tenants = items
        .iter()
        .map(snapshot_from_json)
        .collect::<Result<Vec<_>, SpecError>>()?;
    obj.finish()?;
    Ok(ShardSnapshot {
        version,
        epoch,
        tenants,
    })
}

// ---------------------------------------------------------------------------
// WalRecord
// ---------------------------------------------------------------------------

/// Encodes one WAL record.
pub fn wal_record_to_json(record: &WalRecord) -> Json {
    match record {
        WalRecord::Register {
            id,
            scenario,
            flush_max_pending,
            flush_before_decide,
            auto_feedback,
            echo_feedback,
        } => tagged(
            "register",
            vec![
                ("id".into(), Json::String(id.clone())),
                ("scenario".into(), scenario_to_json(scenario)),
                (
                    "flush_max_pending".into(),
                    Json::from_u64(*flush_max_pending),
                ),
                (
                    "flush_before_decide".into(),
                    Json::Bool(*flush_before_decide),
                ),
                ("auto_feedback".into(), Json::Bool(*auto_feedback)),
                ("echo_feedback".into(), Json::Bool(*echo_feedback)),
            ],
        ),
        WalRecord::Restore { snapshot } => tagged(
            "restore",
            vec![("snapshot".into(), snapshot_to_json(snapshot))],
        ),
        WalRecord::Decide { tenant, count } => tagged(
            "decide",
            vec![
                ("tenant".into(), Json::String(tenant.clone())),
                ("count".into(), Json::from_u64(*count)),
            ],
        ),
        WalRecord::Feedback {
            tenant,
            round,
            event,
        } => tagged(
            "feedback",
            vec![
                ("tenant".into(), Json::String(tenant.clone())),
                ("round".into(), Json::from_u64(*round)),
                ("event".into(), event_to_json(event)),
            ],
        ),
        WalRecord::Flush { tenant } => tagged(
            "flush",
            vec![("tenant".into(), Json::String(tenant.clone()))],
        ),
        WalRecord::Removed { tenant } => tagged(
            "removed",
            vec![("tenant".into(), Json::String(tenant.clone()))],
        ),
        WalRecord::Drain => tagged("drain", Vec::new()),
    }
}

/// Decodes one WAL record (strict).
pub fn wal_record_from_json(value: &Json) -> Result<WalRecord, SpecError> {
    const CTX: &str = "WalRecord";
    let mut obj = Obj::new(value, CTX)?;
    let record = match tag_of(&mut obj)? {
        "register" => WalRecord::Register {
            id: get_str(obj.req("id")?, CTX)?.to_owned(),
            scenario: Box::new(scenario_from_json(obj.req("scenario")?)?),
            flush_max_pending: get_u64(obj.req("flush_max_pending")?, CTX)?,
            flush_before_decide: get_bool(obj.req("flush_before_decide")?, CTX)?,
            auto_feedback: get_bool(obj.req("auto_feedback")?, CTX)?,
            echo_feedback: get_bool(obj.req("echo_feedback")?, CTX)?,
        },
        "restore" => WalRecord::Restore {
            snapshot: Box::new(snapshot_from_json(obj.req("snapshot")?)?),
        },
        "decide" => WalRecord::Decide {
            tenant: get_str(obj.req("tenant")?, CTX)?.to_owned(),
            count: get_u64(obj.req("count")?, CTX)?,
        },
        "feedback" => WalRecord::Feedback {
            tenant: get_str(obj.req("tenant")?, CTX)?.to_owned(),
            round: get_u64(obj.req("round")?, CTX)?,
            event: event_from_json(obj.req("event")?)?,
        },
        "flush" => WalRecord::Flush {
            tenant: get_str(obj.req("tenant")?, CTX)?.to_owned(),
        },
        "removed" => WalRecord::Removed {
            tenant: get_str(obj.req("tenant")?, CTX)?.to_owned(),
        },
        "drain" => WalRecord::Drain,
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(record)
}

// ---------------------------------------------------------------------------
// text entry points
// ---------------------------------------------------------------------------

impl StoredTenantSnapshot {
    /// Encodes the snapshot to a compact JSON document.
    pub fn to_json_text(&self) -> String {
        snapshot_to_json(self).to_text()
    }

    /// Decodes a snapshot from JSON text (strict).
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        snapshot_from_json(&parse(text)?)
    }
}

impl ShardSnapshot {
    /// Encodes the checkpoint to a compact JSON document.
    pub fn to_json_text(&self) -> String {
        shard_snapshot_to_json(self).to_text()
    }

    /// Decodes a checkpoint from JSON text (strict).
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        shard_snapshot_from_json(&parse(text)?)
    }
}

impl WalRecord {
    /// Encodes the record to a compact JSON document.
    pub fn to_json_text(&self) -> String {
        wal_record_to_json(self).to_text()
    }

    /// Decodes a record from JSON text (strict).
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        wal_record_from_json(&parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::model::{
        ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, SideBonus, WorkloadSpec, SPEC_VERSION,
    };
    use netband_env::SinglePlayFeedback;

    fn sample_scenario() -> ScenarioSpec {
        ScenarioSpec {
            version: SPEC_VERSION,
            name: "store-demo".into(),
            workload: WorkloadSpec {
                graph: GraphSpec::ErdosRenyi {
                    num_arms: 6,
                    edge_prob: 0.3,
                },
                arms: ArmsSpec::UniformMeanBernoulli { num_arms: 6 },
                family: None,
                drift: None,
                seed: 42,
            },
            policy: PolicySpec::DflSso,
            side_bonus: SideBonus::Observation,
            horizon: 50,
            replications: 1,
            seed: 7,
            feedback: FeedbackSpec::Immediate,
        }
    }

    fn sample_event(arm: usize, reward: f64) -> WireEvent {
        WireEvent::Single(SinglePlayFeedback {
            arm,
            direct_reward: reward,
            side_reward: reward + 0.5,
            observations: vec![(arm, reward)],
        })
    }

    fn sample_snapshot() -> StoredTenantSnapshot {
        let mut policy = PolicyState::new();
        policy.counts.push(vec![3, 0, 7]);
        policy.floats.push(vec![0.1 + 0.2, 1.0 / 3.0, 0.0]);
        policy.windows.push(vec![0.25, 1.0]);
        policy.rng = Some([1, 2, 3, u64::MAX]);
        StoredTenantSnapshot {
            version: STORE_VERSION,
            id: "exp-0".into(),
            scenario: Box::new(sample_scenario()),
            round: 4,
            optimal_sum: 2.75,
            total_reward: 0.1 + 0.2,
            flush_max_pending: 1,
            flush_before_decide: true,
            auto_feedback: false,
            echo_feedback: true,
            rng: [9, 8, 7, 6],
            policy,
            realised: vec![0.5, -0.25, 0.0, 1.0 / 3.0],
            pseudo: vec![0.5, 0.5, 0.0, 0.0],
            pending: vec![(3, sample_event(1, 1.0)), (1, sample_event(0, 0.0))],
            metrics: StoredTenantMetrics {
                decides: 4,
                feedback_events: 2,
                batches_flushed: 1,
                events_applied: 2,
                max_batch: 2,
            },
        }
    }

    #[test]
    fn tenant_snapshots_round_trip_byte_stably() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_json_text();
        let back = StoredTenantSnapshot::from_json_text(&text).unwrap();
        assert_eq!(back, snapshot);
        // Byte stability: decode → re-encode is the identity on the text.
        assert_eq!(back.to_json_text(), text);
        // The floats survive bit-for-bit, not just approximately.
        assert_eq!(back.total_reward.to_bits(), snapshot.total_reward.to_bits());
        assert_eq!(back.realised[3].to_bits(), snapshot.realised[3].to_bits());
        assert_eq!(
            back.policy.floats[0][0].to_bits(),
            snapshot.policy.floats[0][0].to_bits()
        );
    }

    #[test]
    fn shard_snapshots_round_trip() {
        let shard = ShardSnapshot {
            version: STORE_VERSION,
            epoch: 12,
            tenants: vec![sample_snapshot()],
        };
        let text = shard.to_json_text();
        let back = ShardSnapshot::from_json_text(&text).unwrap();
        assert_eq!(back, shard);
        assert_eq!(back.to_json_text(), text);
    }

    #[test]
    fn wal_records_round_trip() {
        let records = [
            WalRecord::Register {
                id: "exp-0".into(),
                scenario: Box::new(sample_scenario()),
                flush_max_pending: 32,
                flush_before_decide: false,
                auto_feedback: true,
                echo_feedback: false,
            },
            WalRecord::Restore {
                snapshot: Box::new(sample_snapshot()),
            },
            WalRecord::Decide {
                tenant: "exp-0".into(),
                count: 32,
            },
            WalRecord::Feedback {
                tenant: "exp-0".into(),
                round: 2,
                event: sample_event(4, 0.1 + 0.2),
            },
            WalRecord::Flush {
                tenant: "exp-0".into(),
            },
            WalRecord::Removed {
                tenant: "exp-0".into(),
            },
            WalRecord::Drain,
        ];
        for record in records {
            let text = record.to_json_text();
            let back = WalRecord::from_json_text(&text).unwrap();
            assert_eq!(back, record, "{text}");
            assert_eq!(back.to_json_text(), text);
        }
    }

    #[test]
    fn policy_state_without_rng_omits_the_key() {
        let state = PolicyState {
            counts: vec![vec![1]],
            floats: vec![],
            windows: vec![],
            rng: None,
        };
        let text = policy_state_to_json(&state).to_text();
        assert!(!text.contains("rng"), "{text}");
        assert_eq!(
            policy_state_from_json(&parse(&text).unwrap()).unwrap(),
            state
        );
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.version = STORE_VERSION + 1;
        let err = StoredTenantSnapshot::from_json_text(&snapshot.to_json_text()).unwrap_err();
        assert!(
            matches!(err, SpecError::UnsupportedVersion { found, .. } if found == STORE_VERSION + 1),
            "{err}"
        );
        let shard = ShardSnapshot {
            version: 99,
            epoch: 0,
            tenants: vec![],
        };
        assert!(matches!(
            ShardSnapshot::from_json_text(&shard.to_json_text()).unwrap_err(),
            SpecError::UnsupportedVersion { found: 99, .. }
        ));
    }

    #[test]
    fn unknown_fields_and_tags_are_rejected() {
        for bad in [
            r#"{"type":"decide","tenant":"t","count":1,"extra":0}"#,
            r#"{"type":"decide_quickly","tenant":"t","count":1}"#,
            r#"{"type":"decide","tenant":"t"}"#,
            r#"{"type":"drain","hard":true}"#,
            r#"{"type":"flush"}"#,
        ] {
            assert!(WalRecord::from_json_text(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn trace_length_mismatches_are_rejected() {
        // A trace array shorter than the served-round counter is corruption
        // even when the document is schema-valid.
        let mut snapshot = sample_snapshot();
        snapshot.realised.pop();
        let err = StoredTenantSnapshot::from_json_text(&snapshot.to_json_text()).unwrap_err();
        assert!(err.to_string().contains("regret trace"), "{err}");
        let mut snapshot = sample_snapshot();
        snapshot.pseudo.push(0.0);
        assert!(StoredTenantSnapshot::from_json_text(&snapshot.to_json_text()).is_err());
    }

    #[test]
    fn pending_rounds_beyond_the_served_counter_are_rejected() {
        for bogus in [0, 5, 99] {
            let mut snapshot = sample_snapshot();
            snapshot.pending.push((bogus, sample_event(0, 1.0)));
            let err = StoredTenantSnapshot::from_json_text(&snapshot.to_json_text()).unwrap_err();
            assert!(err.to_string().contains("pending feedback"), "{err}");
        }
    }

    #[test]
    fn malformed_rng_states_are_rejected() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_json_text();
        let bad = text.replace("\"rng\":[9,8,7,6]", "\"rng\":[9,8,7]");
        assert_ne!(bad, text, "fixture rng words changed; update the test");
        let err = StoredTenantSnapshot::from_json_text(&bad).unwrap_err();
        assert!(err.to_string().contains("4 words"), "{err}");
    }

    #[test]
    fn truncated_documents_are_rejected() {
        let text = sample_snapshot().to_json_text();
        // Chop the document at a few byte offsets; every prefix must fail to
        // decode (this is the payload-level half of torn-tail handling — the
        // framing CRC in netband-store is the other half).
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 1] {
            let truncated = &text[..cut];
            assert!(
                StoredTenantSnapshot::from_json_text(truncated).is_err(),
                "accepted a {cut}-byte prefix"
            );
        }
    }

    /// Finite `f64` bit patterns (the codec refuses NaN/infinities by
    /// contract, so those draws fall back to the raw bits as a value —
    /// still an "awkward" float, just a finite one).
    fn arb_finite_f64() -> impl Strategy<Value = f64> {
        (0u64..=u64::MAX).prop_map(|bits| {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                v
            } else {
                bits as f64
            }
        })
    }

    /// Arbitrary xoshiro256++ state words.
    fn arb_rng_words() -> impl Strategy<Value = [u64; 4]> {
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
        )
            .prop_map(|(a, b, c, d)| [a, b, c, d])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The satellite contract: snapshot → bytes → snapshot → bytes is
        /// byte-stable and bit-exact for arbitrary finite float payloads and
        /// RNG words.
        #[test]
        fn arbitrary_snapshots_round_trip_byte_stably(
            rng_words in arb_rng_words(),
            policy_rng in arb_rng_words(),
            counts in proptest::collection::vec(0u64..=u64::MAX, 0..8),
            floats in proptest::collection::vec(arb_finite_f64(), 0..8),
            trace in proptest::collection::vec((arb_finite_f64(), arb_finite_f64()), 0..8),
            totals in (arb_finite_f64(), arb_finite_f64()),
        ) {
            let mut policy = PolicyState::new();
            policy.counts.push(counts);
            policy.floats.push(floats);
            policy.rng = Some(policy_rng);
            let snapshot = StoredTenantSnapshot {
                version: STORE_VERSION,
                id: "prop".into(),
                scenario: Box::new(sample_scenario()),
                round: trace.len() as u64,
                optimal_sum: totals.0,
                total_reward: totals.1,
                flush_max_pending: 1,
                flush_before_decide: true,
                auto_feedback: false,
                echo_feedback: true,
                rng: rng_words,
                policy,
                realised: trace.iter().map(|&(r, _)| r).collect(),
                pseudo: trace.iter().map(|&(_, p)| p).collect(),
                pending: Vec::new(),
                metrics: StoredTenantMetrics::default(),
            };
            let text = snapshot.to_json_text();
            let back = StoredTenantSnapshot::from_json_text(&text).unwrap();
            prop_assert_eq!(&back, &snapshot);
            prop_assert_eq!(back.to_json_text(), text);
        }
    }
}
