//! Named [`ScenarioSpec`] constructors for the applications the paper's
//! introduction motivates.
//!
//! These are the declarative counterparts of the hand-written workload
//! presets in `netband_env::workloads`: for equal parameters and seed, a
//! preset spec's built environment is **bit-identical** to the corresponding
//! `workloads::*` constructor driven by `StdRng::seed_from_u64(seed)` (both
//! draw the graph first, then the arm bank, from one stream). The spec adds
//! what the env preset cannot express — the policy, the scenario, and the
//! run schedule — and each constructor picks the policy the paper pairs with
//! the application. Every field of the returned spec is public: adjust
//! `horizon`, `seed`, `policy`, etc. freely before building.

use crate::model::{
    ArmsSpec, FamilySpec, FeedbackSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus,
    WorkloadSpec, SPEC_VERSION,
};

/// Paper-scale defaults shared by the presets: the Section VII horizon of
/// 10 000 slots and 20 replications.
fn scenario(
    name: String,
    workload: WorkloadSpec,
    policy: PolicySpec,
    side_bonus: SideBonus,
    seed: u64,
) -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name,
        workload,
        policy,
        side_bonus,
        horizon: 10_000,
        replications: 20,
        seed,
        feedback: FeedbackSpec::Immediate,
    }
}

/// The paper's Section VII workload: `G(K, p)` relation graph, Bernoulli arms
/// with uniform means, DFL-SSO (Algorithm 1) under side observation.
pub fn paper_simulation(num_arms: usize, edge_prob: f64, seed: u64) -> ScenarioSpec {
    scenario(
        format!("paper-simulation (K={num_arms}, p={edge_prob})"),
        WorkloadSpec {
            graph: GraphSpec::ErdosRenyi {
                num_arms,
                edge_prob,
            },
            arms: ArmsSpec::UniformMeanBernoulli { num_arms },
            family: None,
            drift: None,
            seed,
        },
        PolicySpec::DflSso,
        SideBonus::Observation,
        seed,
    )
}

/// Online advertising (Section I): place up to `slots` ads per round on a
/// preferential-attachment audience graph with Beta click-through rates;
/// DFL-CSO (Algorithm 2) under combinatorial side observation.
pub fn online_advertising(num_ads: usize, slots: usize, seed: u64) -> ScenarioSpec {
    scenario(
        format!("online-advertising (ads={num_ads}, slots={slots})"),
        WorkloadSpec {
            graph: GraphSpec::PreferentialAttachment {
                num_arms: num_ads,
                edges_per_node: 2,
            },
            // Click-through rates: mean ≈ 0.15 with a heavy right tail — the
            // same construction as `workloads::online_advertising`.
            arms: ArmsSpec::ClickThroughBeta {
                num_arms: num_ads,
                floor: 0.02,
                spread: 0.3,
                concentration: 10.0,
            },
            family: Some(FamilySpec::AtMostM { m: slots }),
            drift: None,
            seed,
        },
        PolicySpec::DflCso,
        SideBonus::Observation,
        seed,
    )
}

/// Social promotion (Section I): promote to one user per round in a
/// community-structured social network, collecting the whole friend
/// neighbourhood's purchases; DFL-SSR (Algorithm 3) under side reward.
pub fn social_promotion(num_users: usize, communities: usize, seed: u64) -> ScenarioSpec {
    scenario(
        format!("social-promotion (users={num_users}, communities={communities})"),
        WorkloadSpec {
            graph: GraphSpec::PlantedPartition {
                num_arms: num_users,
                communities: communities.max(1),
                p_in: 0.3,
                p_out: 0.02,
            },
            arms: ArmsSpec::UniformMeanBernoulli {
                num_arms: num_users,
            },
            family: None,
            drift: None,
            seed,
        },
        PolicySpec::DflSsr,
        SideBonus::Reward,
        seed,
    )
}

/// Opportunistic channel access (Section I): transmit on up to `max_channels`
/// mutually non-interfering channels of a random-geometric interference
/// graph; DFL-CSR (Algorithm 4) under combinatorial side reward.
pub fn channel_access(
    num_channels: usize,
    max_channels: usize,
    interference_radius: f64,
    seed: u64,
) -> ScenarioSpec {
    scenario(
        format!(
            "channel-access (channels={num_channels}, max={max_channels}, \
             r={interference_radius})"
        ),
        WorkloadSpec {
            graph: GraphSpec::RandomGeometric {
                num_arms: num_channels,
                radius: interference_radius,
            },
            arms: ArmsSpec::UniformMeanBernoulli {
                num_arms: num_channels,
            },
            family: Some(FamilySpec::IndependentSets {
                max_size: max_channels,
            }),
            drift: None,
            seed,
        },
        PolicySpec::DflCsr,
        SideBonus::Reward,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::workloads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every preset spec builds the *same environment* (graph, arm
    /// distributions, family) as the corresponding hand-written env preset.
    #[test]
    fn preset_specs_match_the_env_presets_bit_for_bit() {
        for seed in [1u64, 11, 42] {
            let spec = paper_simulation(20, 0.3, seed).workload.build().unwrap();
            let env = workloads::paper_simulation(20, 0.3, &mut StdRng::seed_from_u64(seed));
            assert_eq!(spec.bandit, env.bandit, "paper_simulation seed {seed}");
            assert_eq!(spec.family, env.family);

            let spec = online_advertising(18, 3, seed).workload.build().unwrap();
            let env = workloads::online_advertising(18, 3, &mut StdRng::seed_from_u64(seed));
            assert_eq!(spec.bandit, env.bandit, "online_advertising seed {seed}");
            assert_eq!(spec.family, env.family);

            let spec = social_promotion(24, 3, seed).workload.build().unwrap();
            let env = workloads::social_promotion(24, 3, &mut StdRng::seed_from_u64(seed));
            assert_eq!(spec.bandit, env.bandit, "social_promotion seed {seed}");
            assert_eq!(spec.family, env.family);

            let spec = channel_access(20, 3, 0.3, seed).workload.build().unwrap();
            let env = workloads::channel_access(20, 3, 0.3, &mut StdRng::seed_from_u64(seed));
            assert_eq!(spec.bandit, env.bandit, "channel_access seed {seed}");
            assert_eq!(spec.family, env.family);
        }
    }

    /// Every preset builds end-to-end: environment, family, and its default
    /// policy.
    #[test]
    fn presets_build_their_default_policies() {
        let cases = vec![
            (paper_simulation(15, 0.3, 5), "DFL-SSO", false),
            (online_advertising(12, 3, 5), "DFL-CSO", true),
            (social_promotion(16, 4, 5), "DFL-SSR", false),
            (channel_access(14, 3, 0.35, 5), "DFL-CSR", true),
        ];
        for (spec, expected_policy, combinatorial) in cases {
            spec.validate().expect("preset validates");
            let built = spec
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(built.policy.name(), expected_policy, "{}", spec.name);
            assert_eq!(built.family.is_some(), combinatorial, "{}", spec.name);
            assert_eq!(built.horizon, 10_000);
        }
    }

    /// Presets round-trip through JSON unchanged.
    #[test]
    fn presets_round_trip_through_json() {
        for spec in [
            paper_simulation(10, 0.3, 1),
            online_advertising(10, 2, 2),
            social_promotion(12, 3, 3),
            channel_access(10, 2, 0.3, 4),
        ] {
            let text = spec.to_json_text();
            let back = ScenarioSpec::from_json_text(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(back, spec);
        }
    }
}
