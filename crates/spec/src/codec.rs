//! JSON encoding/decoding of the spec types.
//!
//! Decoding is **strict**: unknown object fields, unknown `"type"` tags, and
//! unsupported `version` numbers are hard errors, so typos in hand-written
//! documents fail loudly instead of silently configuring the wrong scenario.
//! Encoding always emits the canonical field order, so re-encoding a decoded
//! document is stable.

use crate::error::SpecError;
use crate::json::{parse, Json};
use crate::model::{
    ArmsSpec, ChangePointSpec, ChurnWindowSpec, DriftSpec, EstimatorSpec, FamilySpec, FeedbackSpec,
    FleetSpec, FleetTenant, GradualDriftSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus,
    WorkloadSpec,
};

// ---------------------------------------------------------------------------
// strict object reader
// ---------------------------------------------------------------------------

/// Tracks which keys of an object a decoder consumed; [`Obj::finish`] rejects
/// everything left over.
pub(crate) struct Obj<'a> {
    ctx: &'static str,
    fields: &'a [(String, Json)],
    used: Vec<bool>,
}

impl<'a> Obj<'a> {
    pub(crate) fn new(value: &'a Json, ctx: &'static str) -> Result<Self, SpecError> {
        let fields = value.as_object().ok_or(SpecError::Invalid {
            context: ctx,
            message: "expected a JSON object".into(),
        })?;
        Ok(Obj {
            ctx,
            fields,
            used: vec![false; fields.len()],
        })
    }

    /// The field, if present (marks it consumed). `null` counts as absent for
    /// optional fields, so callers see `None` either way.
    pub(crate) fn opt(&mut self, name: &str) -> Option<&'a Json> {
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if key == name {
                self.used[i] = true;
                return if value.is_null() { None } else { Some(value) };
            }
        }
        None
    }

    pub(crate) fn req(&mut self, name: &'static str) -> Result<&'a Json, SpecError> {
        self.opt(name).ok_or(SpecError::MissingField {
            context: self.ctx,
            field: name,
        })
    }

    pub(crate) fn finish(self) -> Result<(), SpecError> {
        for (i, (key, _)) in self.fields.iter().enumerate() {
            if !self.used[i] {
                return Err(SpecError::UnknownField {
                    context: self.ctx,
                    field: key.clone(),
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// scalar helpers
// ---------------------------------------------------------------------------

pub(crate) fn get_u64(value: &Json, ctx: &'static str) -> Result<u64, SpecError> {
    value.as_u64().ok_or(SpecError::Invalid {
        context: ctx,
        message: format!("expected a non-negative integer, got {}", value.to_text()),
    })
}

pub(crate) fn get_usize(value: &Json, ctx: &'static str) -> Result<usize, SpecError> {
    value.as_usize().ok_or(SpecError::Invalid {
        context: ctx,
        message: format!("expected a non-negative integer, got {}", value.to_text()),
    })
}

pub(crate) fn get_f64(value: &Json, ctx: &'static str) -> Result<f64, SpecError> {
    value.as_f64().ok_or(SpecError::Invalid {
        context: ctx,
        message: format!("expected a number, got {}", value.to_text()),
    })
}

pub(crate) fn get_str<'a>(value: &'a Json, ctx: &'static str) -> Result<&'a str, SpecError> {
    value.as_str().ok_or(SpecError::Invalid {
        context: ctx,
        message: format!("expected a string, got {}", value.to_text()),
    })
}

fn get_pairs_f64(value: &Json, ctx: &'static str) -> Result<Vec<(f64, f64)>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of [a, b] pairs".into(),
    })?;
    items
        .iter()
        .map(|item| {
            let pair =
                item.as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| SpecError::Invalid {
                        context: ctx,
                        message: format!("expected a 2-element array, got {}", item.to_text()),
                    })?;
            Ok((get_f64(&pair[0], ctx)?, get_f64(&pair[1], ctx)?))
        })
        .collect()
}

fn get_f64_array(value: &Json, ctx: &'static str) -> Result<Vec<f64>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of numbers".into(),
    })?;
    items.iter().map(|item| get_f64(item, ctx)).collect()
}

fn get_strategies(value: &Json, ctx: &'static str) -> Result<Vec<Vec<usize>>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of arm-id arrays".into(),
    })?;
    items
        .iter()
        .map(|item| {
            let inner = item.as_array().ok_or_else(|| SpecError::Invalid {
                context: ctx,
                message: format!("expected an array of arm ids, got {}", item.to_text()),
            })?;
            inner.iter().map(|id| get_usize(id, ctx)).collect()
        })
        .collect()
}

fn pairs_f64_json(pairs: &[(f64, f64)]) -> Json {
    Json::Array(
        pairs
            .iter()
            .map(|&(a, b)| Json::Array(vec![Json::from_f64(a), Json::from_f64(b)]))
            .collect(),
    )
}

pub(crate) fn tagged(tag: &str, mut fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("type".to_owned(), Json::String(tag.to_owned()))];
    all.append(&mut fields);
    Json::Object(all)
}

pub(crate) fn tag_of<'a>(obj: &mut Obj<'a>) -> Result<&'a str, SpecError> {
    let ctx = obj.ctx;
    get_str(obj.req("type")?, ctx)
}

// ---------------------------------------------------------------------------
// GraphSpec
// ---------------------------------------------------------------------------

pub(crate) fn graph_to_json(spec: &GraphSpec) -> Json {
    match spec {
        GraphSpec::ErdosRenyi {
            num_arms,
            edge_prob,
        } => tagged(
            "erdos_renyi",
            vec![
                ("num_arms".into(), Json::from_u64(*num_arms as u64)),
                ("edge_prob".into(), Json::from_f64(*edge_prob)),
            ],
        ),
        GraphSpec::PreferentialAttachment {
            num_arms,
            edges_per_node,
        } => tagged(
            "preferential_attachment",
            vec![
                ("num_arms".into(), Json::from_u64(*num_arms as u64)),
                (
                    "edges_per_node".into(),
                    Json::from_u64(*edges_per_node as u64),
                ),
            ],
        ),
        GraphSpec::PlantedPartition {
            num_arms,
            communities,
            p_in,
            p_out,
        } => tagged(
            "planted_partition",
            vec![
                ("num_arms".into(), Json::from_u64(*num_arms as u64)),
                ("communities".into(), Json::from_u64(*communities as u64)),
                ("p_in".into(), Json::from_f64(*p_in)),
                ("p_out".into(), Json::from_f64(*p_out)),
            ],
        ),
        GraphSpec::RandomGeometric { num_arms, radius } => tagged(
            "random_geometric",
            vec![
                ("num_arms".into(), Json::from_u64(*num_arms as u64)),
                ("radius".into(), Json::from_f64(*radius)),
            ],
        ),
        GraphSpec::Explicit { num_arms, edges } => tagged(
            "explicit",
            vec![
                ("num_arms".into(), Json::from_u64(*num_arms as u64)),
                (
                    "edges".into(),
                    Json::Array(
                        edges
                            .iter()
                            .map(|&(u, v)| {
                                Json::Array(vec![
                                    Json::from_u64(u as u64),
                                    Json::from_u64(v as u64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
        ),
    }
}

pub(crate) fn graph_from_json(value: &Json) -> Result<GraphSpec, SpecError> {
    const CTX: &str = "GraphSpec";
    let mut obj = Obj::new(value, CTX)?;
    let spec = match tag_of(&mut obj)? {
        "erdos_renyi" => GraphSpec::ErdosRenyi {
            num_arms: get_usize(obj.req("num_arms")?, CTX)?,
            edge_prob: get_f64(obj.req("edge_prob")?, CTX)?,
        },
        "preferential_attachment" => GraphSpec::PreferentialAttachment {
            num_arms: get_usize(obj.req("num_arms")?, CTX)?,
            edges_per_node: get_usize(obj.req("edges_per_node")?, CTX)?,
        },
        "planted_partition" => GraphSpec::PlantedPartition {
            num_arms: get_usize(obj.req("num_arms")?, CTX)?,
            communities: get_usize(obj.req("communities")?, CTX)?,
            p_in: get_f64(obj.req("p_in")?, CTX)?,
            p_out: get_f64(obj.req("p_out")?, CTX)?,
        },
        "random_geometric" => GraphSpec::RandomGeometric {
            num_arms: get_usize(obj.req("num_arms")?, CTX)?,
            radius: get_f64(obj.req("radius")?, CTX)?,
        },
        "explicit" => {
            let num_arms = get_usize(obj.req("num_arms")?, CTX)?;
            let edges_value = obj.req("edges")?;
            let pairs = edges_value.as_array().ok_or(SpecError::Invalid {
                context: CTX,
                message: "edges must be an array of [u, v] pairs".into(),
            })?;
            let mut edges = Vec::with_capacity(pairs.len());
            for pair in pairs {
                let uv =
                    pair.as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| SpecError::Invalid {
                            context: CTX,
                            message: format!("edge must be a [u, v] pair, got {}", pair.to_text()),
                        })?;
                edges.push((get_usize(&uv[0], CTX)?, get_usize(&uv[1], CTX)?));
            }
            GraphSpec::Explicit { num_arms, edges }
        }
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// ArmsSpec
// ---------------------------------------------------------------------------

pub(crate) fn arms_to_json(spec: &ArmsSpec) -> Json {
    match spec {
        ArmsSpec::Bernoulli { means } => tagged(
            "bernoulli",
            vec![(
                "means".into(),
                Json::Array(means.iter().map(|&m| Json::from_f64(m)).collect()),
            )],
        ),
        ArmsSpec::UniformMeanBernoulli { num_arms } => tagged(
            "uniform_mean_bernoulli",
            vec![("num_arms".into(), Json::from_u64(*num_arms as u64))],
        ),
        ArmsSpec::Beta { shapes } => {
            tagged("beta", vec![("shapes".into(), pairs_f64_json(shapes))])
        }
        ArmsSpec::ClickThroughBeta {
            num_arms,
            floor,
            spread,
            concentration,
        } => tagged(
            "click_through_beta",
            vec![
                ("num_arms".into(), Json::from_u64(*num_arms as u64)),
                ("floor".into(), Json::from_f64(*floor)),
                ("spread".into(), Json::from_f64(*spread)),
                ("concentration".into(), Json::from_f64(*concentration)),
            ],
        ),
        ArmsSpec::Uniform { ranges } => {
            tagged("uniform", vec![("ranges".into(), pairs_f64_json(ranges))])
        }
    }
}

pub(crate) fn arms_from_json(value: &Json) -> Result<ArmsSpec, SpecError> {
    const CTX: &str = "ArmsSpec";
    let mut obj = Obj::new(value, CTX)?;
    let spec = match tag_of(&mut obj)? {
        "bernoulli" => ArmsSpec::Bernoulli {
            means: get_f64_array(obj.req("means")?, CTX)?,
        },
        "uniform_mean_bernoulli" => ArmsSpec::UniformMeanBernoulli {
            num_arms: get_usize(obj.req("num_arms")?, CTX)?,
        },
        "beta" => ArmsSpec::Beta {
            shapes: get_pairs_f64(obj.req("shapes")?, CTX)?,
        },
        "click_through_beta" => ArmsSpec::ClickThroughBeta {
            num_arms: get_usize(obj.req("num_arms")?, CTX)?,
            floor: get_f64(obj.req("floor")?, CTX)?,
            spread: get_f64(obj.req("spread")?, CTX)?,
            concentration: get_f64(obj.req("concentration")?, CTX)?,
        },
        "uniform" => ArmsSpec::Uniform {
            ranges: get_pairs_f64(obj.req("ranges")?, CTX)?,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// FamilySpec
// ---------------------------------------------------------------------------

pub(crate) fn family_to_json(spec: &FamilySpec) -> Json {
    match spec {
        FamilySpec::AtMostM { m } => {
            tagged("at_most_m", vec![("m".into(), Json::from_u64(*m as u64))])
        }
        FamilySpec::ExactlyM { m } => {
            tagged("exactly_m", vec![("m".into(), Json::from_u64(*m as u64))])
        }
        FamilySpec::IndependentSets { max_size } => tagged(
            "independent_sets",
            vec![("max_size".into(), Json::from_u64(*max_size as u64))],
        ),
        FamilySpec::Explicit { strategies } => tagged(
            "explicit",
            vec![(
                "strategies".into(),
                Json::Array(
                    strategies
                        .iter()
                        .map(|s| Json::Array(s.iter().map(|&a| Json::from_u64(a as u64)).collect()))
                        .collect(),
                ),
            )],
        ),
    }
}

pub(crate) fn family_from_json(value: &Json) -> Result<FamilySpec, SpecError> {
    const CTX: &str = "FamilySpec";
    let mut obj = Obj::new(value, CTX)?;
    let spec = match tag_of(&mut obj)? {
        "at_most_m" => FamilySpec::AtMostM {
            m: get_usize(obj.req("m")?, CTX)?,
        },
        "exactly_m" => FamilySpec::ExactlyM {
            m: get_usize(obj.req("m")?, CTX)?,
        },
        "independent_sets" => FamilySpec::IndependentSets {
            max_size: get_usize(obj.req("max_size")?, CTX)?,
        },
        "explicit" => FamilySpec::Explicit {
            strategies: get_strategies(obj.req("strategies")?, CTX)?,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// EstimatorSpec, DriftSpec
// ---------------------------------------------------------------------------

pub(crate) fn estimator_to_json(spec: &EstimatorSpec) -> Json {
    match spec {
        EstimatorSpec::Stationary => tagged("stationary", vec![]),
        EstimatorSpec::Discounted { gamma } => {
            tagged("discounted", vec![("gamma".into(), Json::from_f64(*gamma))])
        }
        EstimatorSpec::SlidingWindow { window } => tagged(
            "sliding_window",
            vec![("window".into(), Json::from_u64(*window as u64))],
        ),
    }
}

pub(crate) fn estimator_from_json(value: &Json) -> Result<EstimatorSpec, SpecError> {
    const CTX: &str = "EstimatorSpec";
    let mut obj = Obj::new(value, CTX)?;
    let spec = match tag_of(&mut obj)? {
        "stationary" => EstimatorSpec::Stationary,
        "discounted" => EstimatorSpec::Discounted {
            gamma: get_f64(obj.req("gamma")?, CTX)?,
        },
        "sliding_window" => EstimatorSpec::SlidingWindow {
            window: get_usize(obj.req("window")?, CTX)?,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    spec.validate()?;
    Ok(spec)
}

pub(crate) fn drift_to_json(spec: &DriftSpec) -> Json {
    let mut fields = vec![];
    if let Some(gradual) = &spec.gradual {
        fields.push((
            "gradual".into(),
            Json::Object(vec![
                ("amplitude".into(), Json::from_f64(gradual.amplitude)),
                ("period".into(), Json::from_u64(gradual.period)),
            ]),
        ));
    }
    if !spec.change_points.is_empty() {
        fields.push((
            "change_points".into(),
            Json::Array(
                spec.change_points
                    .iter()
                    .map(|cp| {
                        Json::Object(vec![
                            ("round".into(), Json::from_u64(cp.round)),
                            ("rotation".into(), Json::from_u64(cp.rotation as u64)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !spec.churn.is_empty() {
        fields.push((
            "churn".into(),
            Json::Array(
                spec.churn
                    .iter()
                    .map(|w| {
                        Json::Object(vec![
                            ("arm".into(), Json::from_u64(w.arm as u64)),
                            ("from".into(), Json::from_u64(w.from)),
                            ("to".into(), Json::from_u64(w.to)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::Object(fields)
}

pub(crate) fn drift_from_json(value: &Json) -> Result<DriftSpec, SpecError> {
    const CTX: &str = "DriftSpec";
    let mut obj = Obj::new(value, CTX)?;
    let gradual = obj
        .opt("gradual")
        .map(|v| -> Result<GradualDriftSpec, SpecError> {
            let mut g = Obj::new(v, CTX)?;
            let spec = GradualDriftSpec {
                amplitude: get_f64(g.req("amplitude")?, CTX)?,
                period: get_u64(g.req("period")?, CTX)?,
            };
            g.finish()?;
            Ok(spec)
        })
        .transpose()?;
    let change_points = obj
        .opt("change_points")
        .map(|v| -> Result<Vec<ChangePointSpec>, SpecError> {
            let items = v.as_array().ok_or(SpecError::Invalid {
                context: CTX,
                message: "change_points must be an array".into(),
            })?;
            items
                .iter()
                .map(|item| {
                    let mut cp = Obj::new(item, CTX)?;
                    let spec = ChangePointSpec {
                        round: get_u64(cp.req("round")?, CTX)?,
                        rotation: get_usize(cp.req("rotation")?, CTX)?,
                    };
                    cp.finish()?;
                    Ok(spec)
                })
                .collect()
        })
        .transpose()?
        .unwrap_or_default();
    let churn = obj
        .opt("churn")
        .map(|v| -> Result<Vec<ChurnWindowSpec>, SpecError> {
            let items = v.as_array().ok_or(SpecError::Invalid {
                context: CTX,
                message: "churn must be an array".into(),
            })?;
            items
                .iter()
                .map(|item| {
                    let mut w = Obj::new(item, CTX)?;
                    let spec = ChurnWindowSpec {
                        arm: get_usize(w.req("arm")?, CTX)?,
                        from: get_u64(w.req("from")?, CTX)?,
                        to: get_u64(w.req("to")?, CTX)?,
                    };
                    w.finish()?;
                    Ok(spec)
                })
                .collect()
        })
        .transpose()?
        .unwrap_or_default();
    obj.finish()?;
    Ok(DriftSpec {
        gradual,
        change_points,
        churn,
    })
}

// ---------------------------------------------------------------------------
// PolicySpec
// ---------------------------------------------------------------------------

pub(crate) fn policy_to_json(spec: &PolicySpec) -> Json {
    let unit = |tag: &str| tagged(tag, vec![]);
    match spec {
        PolicySpec::DflSso => unit("dfl_sso"),
        PolicySpec::DflSsr => unit("dfl_ssr"),
        PolicySpec::DflCso => unit("dfl_cso"),
        PolicySpec::DflCsr => unit("dfl_csr"),
        PolicySpec::DflSsoGreedyNeighbor => unit("dfl_sso_greedy_neighbor"),
        PolicySpec::DflSsrGreedyNeighbor => unit("dfl_ssr_greedy_neighbor"),
        PolicySpec::Moss { horizon } => {
            let mut fields = vec![];
            if let Some(h) = horizon {
                fields.push(("horizon".into(), Json::from_u64(*h as u64)));
            }
            tagged("moss", fields)
        }
        PolicySpec::Ucb1 => unit("ucb1"),
        PolicySpec::UcbTuned => unit("ucb_tuned"),
        PolicySpec::KlUcb { c } => {
            let mut fields = vec![];
            if let Some(c) = c {
                fields.push(("c".into(), Json::from_f64(*c)));
            }
            tagged("kl_ucb", fields)
        }
        PolicySpec::UcbV { zeta, c } => {
            let mut fields = vec![];
            if let Some(zeta) = zeta {
                fields.push(("zeta".into(), Json::from_f64(*zeta)));
            }
            if let Some(c) = c {
                fields.push(("c".into(), Json::from_f64(*c)));
            }
            tagged("ucb_v", fields)
        }
        PolicySpec::EpsilonGreedy { epsilon, seed } => tagged(
            "epsilon_greedy",
            vec![
                ("epsilon".into(), Json::from_f64(*epsilon)),
                ("seed".into(), Json::from_u64(*seed)),
            ],
        ),
        PolicySpec::DecayingEpsilonGreedy { c, seed } => tagged(
            "decaying_epsilon_greedy",
            vec![
                ("c".into(), Json::from_f64(*c)),
                ("seed".into(), Json::from_u64(*seed)),
            ],
        ),
        PolicySpec::Softmax { tau, seed } => tagged(
            "softmax",
            vec![
                ("tau".into(), Json::from_f64(*tau)),
                ("seed".into(), Json::from_u64(*seed)),
            ],
        ),
        PolicySpec::Exp3 { gamma, seed } => tagged(
            "exp3",
            vec![
                ("gamma".into(), Json::from_f64(*gamma)),
                ("seed".into(), Json::from_u64(*seed)),
            ],
        ),
        PolicySpec::ThompsonBernoulli { seed } => tagged(
            "thompson_bernoulli",
            vec![("seed".into(), Json::from_u64(*seed))],
        ),
        PolicySpec::RandomSingle { seed } => tagged(
            "random_single",
            vec![("seed".into(), Json::from_u64(*seed))],
        ),
        PolicySpec::Cucb => unit("cucb"),
        PolicySpec::Llr => unit("llr"),
        PolicySpec::CombEpsilonGreedy { c, seed } => tagged(
            "comb_epsilon_greedy",
            vec![
                ("c".into(), Json::from_f64(*c)),
                ("seed".into(), Json::from_u64(*seed)),
            ],
        ),
        PolicySpec::NaiveComArmMoss => unit("naive_comarm_moss"),
        PolicySpec::RandomCombinatorial { seed } => tagged(
            "random_combinatorial",
            vec![("seed".into(), Json::from_u64(*seed))],
        ),
        PolicySpec::Cts { seed, estimator } => {
            let mut fields = vec![("seed".into(), Json::from_u64(*seed))];
            if let Some(estimator) = estimator {
                fields.push(("estimator".into(), estimator_to_json(estimator)));
            }
            tagged("cts", fields)
        }
    }
}

pub(crate) fn policy_from_json(value: &Json) -> Result<PolicySpec, SpecError> {
    const CTX: &str = "PolicySpec";
    let mut obj = Obj::new(value, CTX)?;
    let spec = match tag_of(&mut obj)? {
        "dfl_sso" => PolicySpec::DflSso,
        "dfl_ssr" => PolicySpec::DflSsr,
        "dfl_cso" => PolicySpec::DflCso,
        "dfl_csr" => PolicySpec::DflCsr,
        "dfl_sso_greedy_neighbor" => PolicySpec::DflSsoGreedyNeighbor,
        "dfl_ssr_greedy_neighbor" => PolicySpec::DflSsrGreedyNeighbor,
        "moss" => PolicySpec::Moss {
            horizon: obj.opt("horizon").map(|v| get_usize(v, CTX)).transpose()?,
        },
        "ucb1" => PolicySpec::Ucb1,
        "ucb_tuned" => PolicySpec::UcbTuned,
        "kl_ucb" => PolicySpec::KlUcb {
            c: obj.opt("c").map(|v| get_f64(v, CTX)).transpose()?,
        },
        "ucb_v" => PolicySpec::UcbV {
            zeta: obj.opt("zeta").map(|v| get_f64(v, CTX)).transpose()?,
            c: obj.opt("c").map(|v| get_f64(v, CTX)).transpose()?,
        },
        "epsilon_greedy" => PolicySpec::EpsilonGreedy {
            epsilon: get_f64(obj.req("epsilon")?, CTX)?,
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "decaying_epsilon_greedy" => PolicySpec::DecayingEpsilonGreedy {
            c: get_f64(obj.req("c")?, CTX)?,
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "softmax" => PolicySpec::Softmax {
            tau: get_f64(obj.req("tau")?, CTX)?,
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "exp3" => PolicySpec::Exp3 {
            gamma: get_f64(obj.req("gamma")?, CTX)?,
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "thompson_bernoulli" => PolicySpec::ThompsonBernoulli {
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "random_single" => PolicySpec::RandomSingle {
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "cucb" => PolicySpec::Cucb,
        "llr" => PolicySpec::Llr,
        "comb_epsilon_greedy" => PolicySpec::CombEpsilonGreedy {
            c: get_f64(obj.req("c")?, CTX)?,
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "naive_comarm_moss" => PolicySpec::NaiveComArmMoss,
        "random_combinatorial" => PolicySpec::RandomCombinatorial {
            seed: get_u64(obj.req("seed")?, CTX)?,
        },
        "cts" => PolicySpec::Cts {
            seed: get_u64(obj.req("seed")?, CTX)?,
            estimator: obj.opt("estimator").map(estimator_from_json).transpose()?,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// SideBonus, FeedbackSpec
// ---------------------------------------------------------------------------

pub(crate) fn side_bonus_to_json(spec: &SideBonus) -> Json {
    Json::String(
        match spec {
            SideBonus::Observation => "observation",
            SideBonus::Reward => "reward",
        }
        .to_owned(),
    )
}

pub(crate) fn side_bonus_from_json(value: &Json) -> Result<SideBonus, SpecError> {
    const CTX: &str = "SideBonus";
    match get_str(value, CTX)? {
        "observation" => Ok(SideBonus::Observation),
        "reward" => Ok(SideBonus::Reward),
        other => Err(SpecError::UnknownVariant {
            context: CTX,
            variant: other.to_owned(),
        }),
    }
}

pub(crate) fn feedback_to_json(spec: &FeedbackSpec) -> Json {
    match spec {
        FeedbackSpec::Immediate => tagged("immediate", vec![]),
        FeedbackSpec::Batched { max_pending } => tagged(
            "batched",
            vec![("max_pending".into(), Json::from_u64(*max_pending as u64))],
        ),
    }
}

pub(crate) fn feedback_from_json(value: &Json) -> Result<FeedbackSpec, SpecError> {
    const CTX: &str = "FeedbackSpec";
    let mut obj = Obj::new(value, CTX)?;
    let spec = match tag_of(&mut obj)? {
        "immediate" => FeedbackSpec::Immediate,
        "batched" => FeedbackSpec::Batched {
            max_pending: get_usize(obj.req("max_pending")?, CTX)?,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    spec.validate()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// WorkloadSpec, ScenarioSpec, FleetSpec
// ---------------------------------------------------------------------------

pub(crate) fn workload_to_json(spec: &WorkloadSpec) -> Json {
    let mut fields = vec![
        ("graph".into(), graph_to_json(&spec.graph)),
        ("arms".into(), arms_to_json(&spec.arms)),
        (
            "family".into(),
            spec.family
                .as_ref()
                .map(family_to_json)
                .unwrap_or(Json::Null),
        ),
    ];
    // The drift key is omitted entirely (not emitted as null) when absent, so
    // documents written before the key existed re-encode byte-identically.
    if let Some(drift) = &spec.drift {
        fields.push(("drift".into(), drift_to_json(drift)));
    }
    fields.push(("seed".into(), Json::from_u64(spec.seed)));
    Json::Object(fields)
}

pub(crate) fn workload_from_json(value: &Json) -> Result<WorkloadSpec, SpecError> {
    const CTX: &str = "WorkloadSpec";
    let mut obj = Obj::new(value, CTX)?;
    let spec = WorkloadSpec {
        graph: graph_from_json(obj.req("graph")?)?,
        arms: arms_from_json(obj.req("arms")?)?,
        family: obj.opt("family").map(family_from_json).transpose()?,
        drift: obj.opt("drift").map(drift_from_json).transpose()?,
        seed: get_u64(obj.req("seed")?, CTX)?,
    };
    obj.finish()?;
    Ok(spec)
}

pub(crate) fn scenario_to_json(spec: &ScenarioSpec) -> Json {
    Json::Object(vec![
        ("version".into(), Json::from_u64(spec.version)),
        ("name".into(), Json::String(spec.name.clone())),
        ("workload".into(), workload_to_json(&spec.workload)),
        ("policy".into(), policy_to_json(&spec.policy)),
        ("side_bonus".into(), side_bonus_to_json(&spec.side_bonus)),
        ("horizon".into(), Json::from_u64(spec.horizon as u64)),
        (
            "replications".into(),
            Json::from_u64(spec.replications as u64),
        ),
        ("seed".into(), Json::from_u64(spec.seed)),
        ("feedback".into(), feedback_to_json(&spec.feedback)),
    ])
}

pub(crate) fn scenario_from_json(value: &Json) -> Result<ScenarioSpec, SpecError> {
    const CTX: &str = "ScenarioSpec";
    let mut obj = Obj::new(value, CTX)?;
    // The version gate comes first so documents from a future schema fail
    // with `UnsupportedVersion` before any stricter field check confuses the
    // matter.
    let version = get_u64(obj.req("version")?, CTX)?;
    if version != crate::model::SPEC_VERSION {
        return Err(SpecError::UnsupportedVersion {
            found: version,
            supported: crate::model::SPEC_VERSION,
        });
    }
    let spec = ScenarioSpec {
        version,
        name: get_str(obj.req("name")?, CTX)?.to_owned(),
        workload: workload_from_json(obj.req("workload")?)?,
        policy: policy_from_json(obj.req("policy")?)?,
        side_bonus: side_bonus_from_json(obj.req("side_bonus")?)?,
        horizon: get_usize(obj.req("horizon")?, CTX)?,
        replications: get_usize(obj.req("replications")?, CTX)?,
        seed: get_u64(obj.req("seed")?, CTX)?,
        feedback: feedback_from_json(obj.req("feedback")?)?,
    };
    obj.finish()?;
    spec.validate()?;
    Ok(spec)
}

pub(crate) fn fleet_to_json(spec: &FleetSpec) -> Json {
    Json::Object(vec![
        ("version".into(), Json::from_u64(spec.version)),
        ("name".into(), Json::String(spec.name.clone())),
        (
            "tenants".into(),
            Json::Array(
                spec.tenants
                    .iter()
                    .map(|t| {
                        Json::Object(vec![
                            ("id".into(), Json::String(t.id.clone())),
                            ("scenario".into(), scenario_to_json(&t.scenario)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn fleet_from_json(value: &Json) -> Result<FleetSpec, SpecError> {
    const CTX: &str = "FleetSpec";
    let mut obj = Obj::new(value, CTX)?;
    let version = get_u64(obj.req("version")?, CTX)?;
    if version != crate::model::SPEC_VERSION {
        return Err(SpecError::UnsupportedVersion {
            found: version,
            supported: crate::model::SPEC_VERSION,
        });
    }
    let name = get_str(obj.req("name")?, CTX)?.to_owned();
    let tenants_value = obj.req("tenants")?;
    let items = tenants_value.as_array().ok_or(SpecError::Invalid {
        context: CTX,
        message: "tenants must be an array".into(),
    })?;
    let mut tenants = Vec::with_capacity(items.len());
    for item in items {
        let mut tenant = Obj::new(item, "FleetTenant")?;
        let id = get_str(tenant.req("id")?, "FleetTenant")?.to_owned();
        let scenario = scenario_from_json(tenant.req("scenario")?)?;
        tenant.finish()?;
        tenants.push(FleetTenant { id, scenario });
    }
    obj.finish()?;
    let spec = FleetSpec {
        version,
        name,
        tenants,
    };
    spec.validate()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// text entry points on the public types
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Serialises the scenario to compact JSON.
    pub fn to_json_text(&self) -> String {
        scenario_to_json(self).to_text()
    }

    /// Serialises the scenario to indented JSON.
    pub fn to_json_pretty(&self) -> String {
        scenario_to_json(self).to_text_pretty()
    }

    /// Parses a scenario from JSON text (strict: unknown fields, unknown
    /// variants, and unsupported versions are errors).
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        scenario_from_json(&parse(text)?)
    }
}

impl FleetSpec {
    /// Serialises the fleet to compact JSON.
    pub fn to_json_text(&self) -> String {
        fleet_to_json(self).to_text()
    }

    /// Serialises the fleet to indented JSON.
    pub fn to_json_pretty(&self) -> String {
        fleet_to_json(self).to_text_pretty()
    }

    /// Parses a fleet from JSON text (strict).
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        fleet_from_json(&parse(text)?)
    }
}
