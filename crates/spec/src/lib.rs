//! # netband-spec — one declarative ScenarioSpec API for the whole workspace
//!
//! The paper's evaluation (Section VII) and its motivating applications
//! (Section I: advertising, social promotion, channel access) are all points
//! in one configuration space — *graph model × arm distributions × strategy
//! family × policy × horizon/feedback schedule*. This crate makes that space
//! a typed, versioned, serializable value: a [`ScenarioSpec`] is **data**, so
//! new scenarios need a JSON document, not new code.
//!
//! ```text
//!   JSON document ──ScenarioSpec::from_json_text──► ScenarioSpec (typed, versioned)
//!                                                        │ build()
//!                                                        ▼
//!                            BuiltScenario { NetworkedBandit, StrategyFamily?, AnyPolicy }
//!                          ┌─────────────────────────────┼───────────────────────────┐
//!                          ▼                             ▼                           ▼
//!               netband_sim::run_spec          netband_serve fleet boot     experiment grids
//!               (golden-trace–equal to         (RegisterTenantSpec /        (fig3–fig6 and the
//!                the hand-wired runners)        register_fleet)              ablations)
//! ```
//!
//! ## The pieces
//!
//! * [`GraphSpec`] — Erdős–Rényi, preferential attachment, planted
//!   partition, random geometric, or an explicit edge list.
//! * [`ArmsSpec`] — Bernoulli / Beta / uniform arm banks, explicit or
//!   randomly parameterised.
//! * [`FamilySpec`] — at-most-`M`, exactly-`M`, bounded independent sets, or
//!   an explicit feasible set.
//! * [`PolicySpec`] — all four DFL algorithms, the Section IX heuristics,
//!   and every `netband-baselines` policy, with their hyperparameters.
//! * [`ScenarioSpec`] — workload + policy + side bonus + horizon /
//!   replications / seeds + a [`FeedbackSpec`] flush schedule.
//! * [`FleetSpec`] — a whole multi-tenant serving fleet in one document.
//! * [`AnyPolicy`] — the unified build product over both policy traits.
//!
//! Determinism is part of the contract: a spec plus its seeds pins the built
//! instance and the sample path bit for bit, which is what lets the golden
//! equivalence suite hold spec-built runs to the committed DFL traces.
//!
//! ## Example
//!
//! ```
//! use netband_spec::{ScenarioSpec, SpecError};
//!
//! let text = r#"{
//!   "version": 1,
//!   "name": "demo",
//!   "workload": {
//!     "graph": {"type": "erdos_renyi", "num_arms": 10, "edge_prob": 0.3},
//!     "arms": {"type": "uniform_mean_bernoulli", "num_arms": 10},
//!     "family": null,
//!     "seed": 42
//!   },
//!   "policy": {"type": "dfl_sso"},
//!   "side_bonus": "observation",
//!   "horizon": 200,
//!   "replications": 1,
//!   "seed": 7,
//!   "feedback": {"type": "immediate"}
//! }"#;
//! let spec = ScenarioSpec::from_json_text(text)?;
//! let built = spec.build()?;
//! assert_eq!(built.policy.name(), "DFL-SSO");
//! assert_eq!(built.bandit.num_arms(), 10);
//! // Round trip: re-encoding and re-decoding is the identity.
//! assert_eq!(ScenarioSpec::from_json_text(&spec.to_json_text())?, spec);
//! # Ok::<(), SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod json;
pub mod model;
pub mod policy;
pub mod presets;
pub mod store;
pub mod wire;

pub use error::SpecError;
pub use model::{
    ArmsSpec, BuiltScenario, ChangePointSpec, ChurnWindowSpec, DriftSpec, EstimatorSpec,
    FamilySpec, FeedbackSpec, FleetSpec, FleetTenant, GradualDriftSpec, GraphSpec, PolicySpec,
    ScenarioSpec, SideBonus, WorkloadSpec, SPEC_VERSION,
};
pub use policy::AnyPolicy;
pub use store::{
    ShardSnapshot, StoredTenantMetrics, StoredTenantSnapshot, WalRecord, STORE_VERSION,
};
pub use wire::{
    WireArmStat, WireDecision, WireErrorCode, WireEvent, WireFeedback, WireLatency, WireMetrics,
    WireReply, WireRequest, WireResponse, WireTelemetry,
};

/// Identifier of an arm; re-exported from `netband-graph`.
pub type ArmId = netband_graph::ArmId;
