//! Request/response model for the framed TCP wire protocol.
//!
//! `netband-net` puts a server in front of `netband-serve`; the documents it
//! exchanges are defined **here**, next to the [`ScenarioSpec`] codec they
//! embed, so the wire format inherits every property of the spec codec:
//!
//! * **strict decoding** — unknown fields, unknown `"type"` tags, and
//!   duplicate keys are hard errors (a typo'd request fails loudly instead of
//!   silently decoding to something else);
//! * **numeric exactness** — `f64` rewards travel as shortest round-trip
//!   lexemes ([`Json::from_f64`]) and therefore arrive bit-identical, which
//!   is what lets `tests/net_equivalence.rs` hold a TCP client to the golden
//!   DFL traces bit for bit;
//! * **no new dependencies** — the same hand-rolled [`crate::json`] codec,
//!   over `std` only.
//!
//! One request document maps to exactly one response document. Framing
//! (length prefixes, size limits, connection lifecycle) is transport business
//! and lives in `netband-net`; this module is just the payload model:
//!
//! | request                        | success response                  |
//! |--------------------------------|-----------------------------------|
//! | [`WireRequest::DecideMany`]    | [`WireResponse::Decisions`]       |
//! | [`WireRequest::FeedbackMany`]  | [`WireResponse::Accepted`]        |
//! | [`WireRequest::RegisterTenant`]| [`WireResponse::Ok`]              |
//! | [`WireRequest::Metrics`]       | [`WireResponse::Metrics`]         |
//! | [`WireRequest::Telemetry`]     | [`WireResponse::Telemetry`]       |
//!
//! Any request can instead draw [`WireResponse::Error`]; an
//! [`WireErrorCode::Overloaded`] error means the engine's bounded shard queue
//! was full and the request was **not** enqueued — the client should back off
//! and retry, exactly like an HTTP 503.

use netband_env::{CombinatorialFeedback, SinglePlayFeedback};

use crate::codec::{
    get_f64, get_str, get_u64, get_usize, scenario_from_json, scenario_to_json, tag_of, tagged, Obj,
};
use crate::error::SpecError;
use crate::json::{parse, Json};
use crate::model::ScenarioSpec;
use crate::ArmId;

// ---------------------------------------------------------------------------
// model types
// ---------------------------------------------------------------------------

/// A client → server document.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Serve `count` consecutive decisions for one tenant (one batched
    /// `decide_many` on the engine — never `count` per-call round trips).
    DecideMany {
        /// Tenant id.
        tenant: String,
        /// Number of decisions to serve (must be ≥ 1; servers may cap it).
        count: u32,
    },
    /// Ingest a window of feedback events for one tenant, possibly delayed
    /// and out of round order.
    FeedbackMany {
        /// Tenant id.
        tenant: String,
        /// The events, each quoting the round of the decision it answers.
        events: Vec<WireFeedback>,
    },
    /// Create a tenant from a declarative scenario document.
    RegisterTenant {
        /// Tenant id (must not collide with a live tenant).
        id: String,
        /// The full scenario (workload, policy, seeds, flush schedule).
        /// Boxed so the rare registration document doesn't inflate every
        /// hot-path `WireRequest` by the size of a `ScenarioSpec`.
        scenario: Box<ScenarioSpec>,
    },
    /// Ask for an engine-wide metrics snapshot.
    Metrics,
    /// Ask for one tenant's learning-telemetry snapshot (per-arm pulls and
    /// means, cumulative realised/oracle reward, pending feedback). Read-only:
    /// the server must not flush the tenant to answer this.
    Telemetry {
        /// Tenant id.
        tenant: String,
    },
}

/// One feedback event in a [`WireRequest::FeedbackMany`] window.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFeedback {
    /// The tenant-local round (1-based) of the decision this answers.
    pub round: u64,
    /// The revealed observations.
    pub event: WireEvent,
}

/// A feedback event body — mirrors `netband-serve`'s `FeedbackEvent` (which
/// this crate cannot name without a dependency cycle) over the shared
/// `netband-env` payload structs.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// Feedback for a single-play decision.
    Single(SinglePlayFeedback),
    /// Feedback for a combinatorial decision.
    Combinatorial(CombinatorialFeedback),
}

/// A server → client document.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Reply to [`WireRequest::DecideMany`].
    Decisions {
        /// Tenant id, echoed.
        tenant: String,
        /// One entry per served decision, in round order.
        replies: Vec<WireReply>,
    },
    /// Reply to [`WireRequest::RegisterTenant`].
    Ok,
    /// Reply to [`WireRequest::FeedbackMany`]: the window was enqueued.
    Accepted {
        /// Number of events accepted.
        count: u64,
    },
    /// Reply to [`WireRequest::Metrics`].
    Metrics(WireMetrics),
    /// Reply to [`WireRequest::Telemetry`]. Boxed: the snapshot is by far
    /// the largest response body and would otherwise dominate the enum size.
    Telemetry(Box<WireTelemetry>),
    /// Any request may fail; the code is machine-readable, the message is
    /// for humans.
    Error {
        /// What went wrong.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One served decision — mirrors `netband-serve`'s `DecideReply`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReply {
    /// The tenant-local round (1-based) of this decision.
    pub round: u64,
    /// The chosen arm or super-arm.
    pub decision: WireDecision,
    /// The realised reward, bit-exact across the wire.
    pub reward: f64,
    /// The revealed feedback to route back later; `None` when the tenant is
    /// configured without feedback echo.
    pub feedback: Option<WireEvent>,
}

/// The chosen arm or super-arm — mirrors `netband-serve`'s `Decision`.
#[derive(Debug, Clone, PartialEq)]
pub enum WireDecision {
    /// A single-play tenant pulled one arm.
    Arm(ArmId),
    /// A combinatorial tenant pulled a super-arm (sorted, deduplicated).
    Strategy(Vec<ArmId>),
}

/// A latency quantile summary read off the engine's fixed-bucket histograms.
///
/// `*_exact` is the exactness flag from `LatencyHistogram::quantile_bound`:
/// `true` means the quantile lies inside a closed bucket and `*_ns` is its
/// upper bound ("p99 ≤ 16µs"); `false` means the quantile fell in the final
/// open-ended bucket and `*_ns` is only a lower bound ("p99 > 512µs").
#[derive(Debug, Clone, PartialEq)]
pub struct WireLatency {
    /// Upper (or, if `!p50_exact`, lower) bound on the median, nanoseconds.
    pub p50_ns: u64,
    /// Whether `p50_ns` is a closed-bucket upper bound.
    pub p50_exact: bool,
    /// Upper (or, if `!p99_exact`, lower) bound on the 99th percentile.
    pub p99_ns: u64,
    /// Whether `p99_ns` is a closed-bucket upper bound.
    pub p99_exact: bool,
}

/// Engine-wide metrics snapshot, flattened for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMetrics {
    /// Number of shards in the engine.
    pub shards: u64,
    /// Number of live tenants.
    pub tenants: u64,
    /// Total decisions served since boot.
    pub total_decides: u64,
    /// Total feedback events ingested since boot.
    pub total_feedback_events: u64,
    /// Total commands the shards rejected (unknown tenant, bad feedback, …).
    pub rejected: u64,
    /// Commands refused engine-side because a shard queue was full (the
    /// requests that drew an `overloaded` error frame). Counted where the
    /// rejection happens — no shard ever saw these.
    pub overload_rejections: u64,
    /// Decide-path service latency (merged across shards).
    pub decide_latency: WireLatency,
    /// Feedback-ingestion service latency (merged across shards).
    pub feedback_latency: WireLatency,
}

/// One arm's learning statistics in a [`WireTelemetry`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WireArmStat {
    /// Dense arm id (for DFL-CSO, a dense *strategy* id).
    pub arm: ArmId,
    /// Number of times the estimator has been updated for this arm.
    pub pulls: u64,
    /// Empirical mean reward of this arm, bit-exact across the wire.
    pub mean: f64,
}

/// One tenant's learning-telemetry snapshot, flattened for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTelemetry {
    /// Tenant id, echoed.
    pub tenant: String,
    /// Name of the hosted policy (e.g. `"DFL-SSO"`).
    pub policy: String,
    /// Rounds served so far.
    pub round: u64,
    /// Feedback events queued but not yet flushed into the policy.
    pub pending_feedback: u64,
    /// Decisions served (the tenant's serving counter).
    pub decides: u64,
    /// Feedback events accepted (the tenant's serving counter).
    pub feedback_events: u64,
    /// Cumulative realised reward, bit-exact across the wire.
    pub total_reward: f64,
    /// Cumulative dynamic-oracle reward, bit-exact across the wire.
    pub optimal_reward: f64,
    /// Dynamic-oracle regret proxy (`optimal_reward - total_reward`).
    pub regret: f64,
    /// Per-arm statistics (empty when the policy keeps no per-arm
    /// estimators, e.g. EXP3).
    pub arms: Vec<WireArmStat>,
}

/// Machine-readable error codes for [`WireResponse::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorCode {
    /// A bounded shard queue was full; the request was **not** enqueued.
    /// Back off and retry — nothing was lost and nothing was applied.
    Overloaded,
    /// The request frame exceeded the server's size or batch limits.
    TooLarge,
    /// The tenant id names no live tenant.
    UnknownTenant,
    /// [`WireRequest::RegisterTenant`] with an id that is already live.
    DuplicateTenant,
    /// The embedded [`ScenarioSpec`] failed to decode or build.
    Spec,
    /// The request decoded but is semantically invalid (e.g. `count` 0).
    Invalid,
    /// The engine is shutting down; the connection is about to close.
    EngineDown,
    /// The frame was not a valid request document.
    Protocol,
}

impl WireErrorCode {
    /// The wire token for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            WireErrorCode::Overloaded => "overloaded",
            WireErrorCode::TooLarge => "too_large",
            WireErrorCode::UnknownTenant => "unknown_tenant",
            WireErrorCode::DuplicateTenant => "duplicate_tenant",
            WireErrorCode::Spec => "spec",
            WireErrorCode::Invalid => "invalid",
            WireErrorCode::EngineDown => "engine_down",
            WireErrorCode::Protocol => "protocol",
        }
    }

    fn from_str(token: &str) -> Result<Self, SpecError> {
        Ok(match token {
            "overloaded" => WireErrorCode::Overloaded,
            "too_large" => WireErrorCode::TooLarge,
            "unknown_tenant" => WireErrorCode::UnknownTenant,
            "duplicate_tenant" => WireErrorCode::DuplicateTenant,
            "spec" => WireErrorCode::Spec,
            "invalid" => WireErrorCode::Invalid,
            "engine_down" => WireErrorCode::EngineDown,
            "protocol" => WireErrorCode::Protocol,
            other => {
                return Err(SpecError::UnknownVariant {
                    context: "wire error code",
                    variant: other.to_owned(),
                })
            }
        })
    }
}

impl std::fmt::Display for WireErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// text entry points
// ---------------------------------------------------------------------------

impl WireRequest {
    /// Encodes the request to a compact JSON document.
    pub fn to_json_text(&self) -> String {
        request_to_json(self).to_text()
    }

    /// Decodes a request from JSON text (strict: unknown fields are errors).
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        request_from_json(&parse(text)?)
    }
}

impl WireResponse {
    /// Encodes the response to a compact JSON document.
    pub fn to_json_text(&self) -> String {
        response_to_json(self).to_text()
    }

    /// Decodes a response from JSON text (strict: unknown fields are errors).
    pub fn from_json_text(text: &str) -> Result<Self, SpecError> {
        response_from_json(&parse(text)?)
    }
}

// ---------------------------------------------------------------------------
// scalar helpers on top of the codec's strict-object reader
// ---------------------------------------------------------------------------

fn get_u32(value: &Json, ctx: &'static str) -> Result<u32, SpecError> {
    let v = get_u64(value, ctx)?;
    u32::try_from(v).map_err(|_| SpecError::Invalid {
        context: ctx,
        message: format!("{v} does not fit in u32"),
    })
}

fn get_bool(value: &Json, ctx: &'static str) -> Result<bool, SpecError> {
    value.as_bool().ok_or(SpecError::Invalid {
        context: ctx,
        message: format!("expected a boolean, got {}", value.to_text()),
    })
}

fn arms_json(arms: &[ArmId]) -> Json {
    Json::Array(arms.iter().map(|&a| Json::from_u64(a as u64)).collect())
}

fn get_arms(value: &Json, ctx: &'static str) -> Result<Vec<ArmId>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of arm ids".into(),
    })?;
    items.iter().map(|item| get_usize(item, ctx)).collect()
}

fn observations_json(observations: &[(ArmId, f64)]) -> Json {
    Json::Array(
        observations
            .iter()
            .map(|&(arm, x)| Json::Array(vec![Json::from_u64(arm as u64), Json::from_f64(x)]))
            .collect(),
    )
}

fn get_observations(value: &Json, ctx: &'static str) -> Result<Vec<(ArmId, f64)>, SpecError> {
    let items = value.as_array().ok_or(SpecError::Invalid {
        context: ctx,
        message: "expected an array of [arm, reward] pairs".into(),
    })?;
    items
        .iter()
        .map(|item| {
            let pair =
                item.as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| SpecError::Invalid {
                        context: ctx,
                        message: format!("expected a 2-element array, got {}", item.to_text()),
                    })?;
            Ok((get_usize(&pair[0], ctx)?, get_f64(&pair[1], ctx)?))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// events
// ---------------------------------------------------------------------------

/// Encodes one feedback event body.
pub fn event_to_json(event: &WireEvent) -> Json {
    match event {
        WireEvent::Single(f) => tagged(
            "single",
            vec![
                ("arm".into(), Json::from_u64(f.arm as u64)),
                ("direct_reward".into(), Json::from_f64(f.direct_reward)),
                ("side_reward".into(), Json::from_f64(f.side_reward)),
                ("observations".into(), observations_json(&f.observations)),
            ],
        ),
        WireEvent::Combinatorial(f) => tagged(
            "combinatorial",
            vec![
                ("strategy".into(), arms_json(&f.strategy)),
                ("observation_set".into(), arms_json(&f.observation_set)),
                ("direct_reward".into(), Json::from_f64(f.direct_reward)),
                ("side_reward".into(), Json::from_f64(f.side_reward)),
                ("observations".into(), observations_json(&f.observations)),
            ],
        ),
    }
}

/// Decodes one feedback event body (strict).
pub fn event_from_json(value: &Json) -> Result<WireEvent, SpecError> {
    const CTX: &str = "wire feedback event";
    let mut obj = Obj::new(value, CTX)?;
    let event = match tag_of(&mut obj)? {
        "single" => WireEvent::Single(SinglePlayFeedback {
            arm: get_usize(obj.req("arm")?, CTX)?,
            direct_reward: get_f64(obj.req("direct_reward")?, CTX)?,
            side_reward: get_f64(obj.req("side_reward")?, CTX)?,
            observations: get_observations(obj.req("observations")?, CTX)?,
        }),
        "combinatorial" => WireEvent::Combinatorial(CombinatorialFeedback {
            strategy: get_arms(obj.req("strategy")?, CTX)?,
            observation_set: get_arms(obj.req("observation_set")?, CTX)?,
            direct_reward: get_f64(obj.req("direct_reward")?, CTX)?,
            side_reward: get_f64(obj.req("side_reward")?, CTX)?,
            observations: get_observations(obj.req("observations")?, CTX)?,
        }),
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(event)
}

// ---------------------------------------------------------------------------
// requests
// ---------------------------------------------------------------------------

/// Encodes a request document.
pub fn request_to_json(request: &WireRequest) -> Json {
    match request {
        WireRequest::DecideMany { tenant, count } => tagged(
            "decide_many",
            vec![
                ("tenant".into(), Json::String(tenant.clone())),
                ("count".into(), Json::from_u64(u64::from(*count))),
            ],
        ),
        WireRequest::FeedbackMany { tenant, events } => tagged(
            "feedback_many",
            vec![
                ("tenant".into(), Json::String(tenant.clone())),
                (
                    "events".into(),
                    Json::Array(
                        events
                            .iter()
                            .map(|e| {
                                Json::Object(vec![
                                    ("round".into(), Json::from_u64(e.round)),
                                    ("event".into(), event_to_json(&e.event)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
        ),
        WireRequest::RegisterTenant { id, scenario } => tagged(
            "register_tenant",
            vec![
                ("id".into(), Json::String(id.clone())),
                ("scenario".into(), scenario_to_json(scenario)),
            ],
        ),
        WireRequest::Metrics => tagged("metrics", Vec::new()),
        WireRequest::Telemetry { tenant } => tagged(
            "telemetry",
            vec![("tenant".into(), Json::String(tenant.clone()))],
        ),
    }
}

/// Decodes a request document (strict).
pub fn request_from_json(value: &Json) -> Result<WireRequest, SpecError> {
    const CTX: &str = "wire request";
    let mut obj = Obj::new(value, CTX)?;
    let request = match tag_of(&mut obj)? {
        "decide_many" => WireRequest::DecideMany {
            tenant: get_str(obj.req("tenant")?, CTX)?.to_owned(),
            count: get_u32(obj.req("count")?, CTX)?,
        },
        "feedback_many" => {
            let tenant = get_str(obj.req("tenant")?, CTX)?.to_owned();
            let items = obj.req("events")?.as_array().ok_or(SpecError::Invalid {
                context: CTX,
                message: "expected an array of feedback events".into(),
            })?;
            let events = items
                .iter()
                .map(|item| {
                    let mut entry = Obj::new(item, "wire feedback entry")?;
                    let round = get_u64(entry.req("round")?, "wire feedback entry")?;
                    let event = event_from_json(entry.req("event")?)?;
                    entry.finish()?;
                    Ok(WireFeedback { round, event })
                })
                .collect::<Result<Vec<_>, SpecError>>()?;
            WireRequest::FeedbackMany { tenant, events }
        }
        "register_tenant" => WireRequest::RegisterTenant {
            id: get_str(obj.req("id")?, CTX)?.to_owned(),
            scenario: Box::new(scenario_from_json(obj.req("scenario")?)?),
        },
        "metrics" => WireRequest::Metrics,
        "telemetry" => WireRequest::Telemetry {
            tenant: get_str(obj.req("tenant")?, CTX)?.to_owned(),
        },
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(request)
}

// ---------------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------------

fn latency_json(latency: &WireLatency) -> Json {
    Json::Object(vec![
        ("p50_ns".into(), Json::from_u64(latency.p50_ns)),
        ("p50_exact".into(), Json::Bool(latency.p50_exact)),
        ("p99_ns".into(), Json::from_u64(latency.p99_ns)),
        ("p99_exact".into(), Json::Bool(latency.p99_exact)),
    ])
}

fn latency_from_json(value: &Json) -> Result<WireLatency, SpecError> {
    const CTX: &str = "wire latency";
    let mut obj = Obj::new(value, CTX)?;
    let latency = WireLatency {
        p50_ns: get_u64(obj.req("p50_ns")?, CTX)?,
        p50_exact: get_bool(obj.req("p50_exact")?, CTX)?,
        p99_ns: get_u64(obj.req("p99_ns")?, CTX)?,
        p99_exact: get_bool(obj.req("p99_exact")?, CTX)?,
    };
    obj.finish()?;
    Ok(latency)
}

fn decision_json(decision: &WireDecision) -> Json {
    match decision {
        WireDecision::Arm(arm) => tagged("arm", vec![("arm".into(), Json::from_u64(*arm as u64))]),
        WireDecision::Strategy(arms) => tagged("strategy", vec![("arms".into(), arms_json(arms))]),
    }
}

fn decision_from_json(value: &Json) -> Result<WireDecision, SpecError> {
    const CTX: &str = "wire decision";
    let mut obj = Obj::new(value, CTX)?;
    let decision = match tag_of(&mut obj)? {
        "arm" => WireDecision::Arm(get_usize(obj.req("arm")?, CTX)?),
        "strategy" => WireDecision::Strategy(get_arms(obj.req("arms")?, CTX)?),
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(decision)
}

fn reply_json(reply: &WireReply) -> Json {
    Json::Object(vec![
        ("round".into(), Json::from_u64(reply.round)),
        ("decision".into(), decision_json(&reply.decision)),
        ("reward".into(), Json::from_f64(reply.reward)),
        (
            "feedback".into(),
            match &reply.feedback {
                Some(event) => event_to_json(event),
                None => Json::Null,
            },
        ),
    ])
}

fn reply_from_json(value: &Json) -> Result<WireReply, SpecError> {
    const CTX: &str = "wire decide reply";
    let mut obj = Obj::new(value, CTX)?;
    let round = get_u64(obj.req("round")?, CTX)?;
    let decision = decision_from_json(obj.req("decision")?)?;
    let reward = get_f64(obj.req("reward")?, CTX)?;
    // `opt` treats JSON null as absent, which is exactly the encoding of
    // `feedback: None` — but the key itself stays mandatory in spirit; we
    // accept both null and omission for forward ergonomics.
    let feedback = obj.opt("feedback").map(event_from_json).transpose()?;
    obj.finish()?;
    Ok(WireReply {
        round,
        decision,
        reward,
        feedback,
    })
}

/// Encodes a response document.
pub fn response_to_json(response: &WireResponse) -> Json {
    match response {
        WireResponse::Decisions { tenant, replies } => tagged(
            "decisions",
            vec![
                ("tenant".into(), Json::String(tenant.clone())),
                (
                    "replies".into(),
                    Json::Array(replies.iter().map(reply_json).collect()),
                ),
            ],
        ),
        WireResponse::Ok => tagged("ok", Vec::new()),
        WireResponse::Accepted { count } => {
            tagged("accepted", vec![("count".into(), Json::from_u64(*count))])
        }
        WireResponse::Metrics(m) => tagged(
            "metrics",
            vec![
                ("shards".into(), Json::from_u64(m.shards)),
                ("tenants".into(), Json::from_u64(m.tenants)),
                ("total_decides".into(), Json::from_u64(m.total_decides)),
                (
                    "total_feedback_events".into(),
                    Json::from_u64(m.total_feedback_events),
                ),
                ("rejected".into(), Json::from_u64(m.rejected)),
                (
                    "overload_rejections".into(),
                    Json::from_u64(m.overload_rejections),
                ),
                ("decide_latency".into(), latency_json(&m.decide_latency)),
                ("feedback_latency".into(), latency_json(&m.feedback_latency)),
            ],
        ),
        WireResponse::Telemetry(t) => tagged(
            "telemetry",
            vec![
                ("tenant".into(), Json::String(t.tenant.clone())),
                ("policy".into(), Json::String(t.policy.clone())),
                ("round".into(), Json::from_u64(t.round)),
                (
                    "pending_feedback".into(),
                    Json::from_u64(t.pending_feedback),
                ),
                ("decides".into(), Json::from_u64(t.decides)),
                ("feedback_events".into(), Json::from_u64(t.feedback_events)),
                ("total_reward".into(), Json::from_f64(t.total_reward)),
                ("optimal_reward".into(), Json::from_f64(t.optimal_reward)),
                ("regret".into(), Json::from_f64(t.regret)),
                (
                    "arms".into(),
                    Json::Array(
                        t.arms
                            .iter()
                            .map(|a| {
                                Json::Object(vec![
                                    ("arm".into(), Json::from_u64(a.arm as u64)),
                                    ("pulls".into(), Json::from_u64(a.pulls)),
                                    ("mean".into(), Json::from_f64(a.mean)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
        ),
        WireResponse::Error { code, message } => tagged(
            "error",
            vec![
                ("code".into(), Json::String(code.as_str().to_owned())),
                ("message".into(), Json::String(message.clone())),
            ],
        ),
    }
}

/// Decodes a response document (strict).
pub fn response_from_json(value: &Json) -> Result<WireResponse, SpecError> {
    const CTX: &str = "wire response";
    let mut obj = Obj::new(value, CTX)?;
    let response = match tag_of(&mut obj)? {
        "decisions" => {
            let tenant = get_str(obj.req("tenant")?, CTX)?.to_owned();
            let items = obj.req("replies")?.as_array().ok_or(SpecError::Invalid {
                context: CTX,
                message: "expected an array of replies".into(),
            })?;
            let replies = items
                .iter()
                .map(reply_from_json)
                .collect::<Result<Vec<_>, SpecError>>()?;
            WireResponse::Decisions { tenant, replies }
        }
        "ok" => WireResponse::Ok,
        "accepted" => WireResponse::Accepted {
            count: get_u64(obj.req("count")?, CTX)?,
        },
        "metrics" => WireResponse::Metrics(WireMetrics {
            shards: get_u64(obj.req("shards")?, CTX)?,
            tenants: get_u64(obj.req("tenants")?, CTX)?,
            total_decides: get_u64(obj.req("total_decides")?, CTX)?,
            total_feedback_events: get_u64(obj.req("total_feedback_events")?, CTX)?,
            rejected: get_u64(obj.req("rejected")?, CTX)?,
            overload_rejections: get_u64(obj.req("overload_rejections")?, CTX)?,
            decide_latency: latency_from_json(obj.req("decide_latency")?)?,
            feedback_latency: latency_from_json(obj.req("feedback_latency")?)?,
        }),
        "telemetry" => {
            let tenant = get_str(obj.req("tenant")?, CTX)?.to_owned();
            let policy = get_str(obj.req("policy")?, CTX)?.to_owned();
            let round = get_u64(obj.req("round")?, CTX)?;
            let pending_feedback = get_u64(obj.req("pending_feedback")?, CTX)?;
            let decides = get_u64(obj.req("decides")?, CTX)?;
            let feedback_events = get_u64(obj.req("feedback_events")?, CTX)?;
            let total_reward = get_f64(obj.req("total_reward")?, CTX)?;
            let optimal_reward = get_f64(obj.req("optimal_reward")?, CTX)?;
            let regret = get_f64(obj.req("regret")?, CTX)?;
            let items = obj.req("arms")?.as_array().ok_or(SpecError::Invalid {
                context: CTX,
                message: "expected an array of arm stats".into(),
            })?;
            let arms = items
                .iter()
                .map(|item| {
                    let mut entry = Obj::new(item, "wire arm stat")?;
                    let stat = WireArmStat {
                        arm: get_usize(entry.req("arm")?, "wire arm stat")?,
                        pulls: get_u64(entry.req("pulls")?, "wire arm stat")?,
                        mean: get_f64(entry.req("mean")?, "wire arm stat")?,
                    };
                    entry.finish()?;
                    Ok(stat)
                })
                .collect::<Result<Vec<_>, SpecError>>()?;
            WireResponse::Telemetry(Box::new(WireTelemetry {
                tenant,
                policy,
                round,
                pending_feedback,
                decides,
                feedback_events,
                total_reward,
                optimal_reward,
                regret,
                arms,
            }))
        }
        "error" => WireResponse::Error {
            code: WireErrorCode::from_str(get_str(obj.req("code")?, CTX)?)?,
            message: get_str(obj.req("message")?, CTX)?.to_owned(),
        },
        other => {
            return Err(SpecError::UnknownVariant {
                context: CTX,
                variant: other.to_owned(),
            })
        }
    };
    obj.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{
        ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, SideBonus, WorkloadSpec, SPEC_VERSION,
    };

    fn sample_scenario() -> ScenarioSpec {
        ScenarioSpec {
            version: SPEC_VERSION,
            name: "wire-demo".into(),
            workload: WorkloadSpec {
                graph: GraphSpec::ErdosRenyi {
                    num_arms: 6,
                    edge_prob: 0.3,
                },
                arms: ArmsSpec::UniformMeanBernoulli { num_arms: 6 },
                family: None,
                drift: None,
                seed: 42,
            },
            policy: PolicySpec::DflSso,
            side_bonus: SideBonus::Observation,
            horizon: 50,
            replications: 1,
            seed: 7,
            feedback: FeedbackSpec::Immediate,
        }
    }

    fn single_event() -> WireEvent {
        WireEvent::Single(SinglePlayFeedback {
            arm: 3,
            direct_reward: 1.0,
            side_reward: 0.25 + 0.5,
            observations: vec![(1, 0.0), (3, 1.0), (4, 1.0 / 3.0)],
        })
    }

    fn combinatorial_event() -> WireEvent {
        WireEvent::Combinatorial(CombinatorialFeedback {
            strategy: vec![0, 2],
            observation_set: vec![0, 1, 2, 5],
            direct_reward: 2.0,
            side_reward: 3.0,
            observations: vec![(0, 1.0), (1, 0.0), (2, 1.0), (5, 0.1 + 0.2)],
        })
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            WireRequest::DecideMany {
                tenant: "exp-0".into(),
                count: 32,
            },
            WireRequest::FeedbackMany {
                tenant: "exp-0".into(),
                events: vec![
                    WireFeedback {
                        round: 2,
                        event: single_event(),
                    },
                    WireFeedback {
                        round: 1,
                        event: combinatorial_event(),
                    },
                ],
            },
            WireRequest::RegisterTenant {
                id: "exp-1".into(),
                scenario: Box::new(sample_scenario()),
            },
            WireRequest::Metrics,
            WireRequest::Telemetry {
                tenant: "exp-0".into(),
            },
        ];
        for request in requests {
            let text = request.to_json_text();
            assert_eq!(
                WireRequest::from_json_text(&text).unwrap(),
                request,
                "{text}"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            WireResponse::Decisions {
                tenant: "exp-0".into(),
                replies: vec![
                    WireReply {
                        round: 1,
                        decision: WireDecision::Arm(4),
                        reward: 0.1 + 0.2, // not representable exactly; must survive bit-for-bit
                        feedback: Some(single_event()),
                    },
                    WireReply {
                        round: 2,
                        decision: WireDecision::Strategy(vec![0, 3]),
                        reward: 2.0,
                        feedback: None,
                    },
                ],
            },
            WireResponse::Ok,
            WireResponse::Accepted { count: 17 },
            WireResponse::Metrics(WireMetrics {
                shards: 4,
                tenants: 9,
                total_decides: 123_456,
                total_feedback_events: 123_000,
                rejected: 3,
                overload_rejections: 2,
                decide_latency: WireLatency {
                    p50_ns: 4_000,
                    p50_exact: true,
                    p99_ns: 524_288_000,
                    p99_exact: false,
                },
                feedback_latency: WireLatency {
                    p50_ns: 2_000,
                    p50_exact: true,
                    p99_ns: 16_000,
                    p99_exact: true,
                },
            }),
            WireResponse::Telemetry(Box::new(WireTelemetry {
                tenant: "exp-0".into(),
                policy: "DFL-SSO".into(),
                round: 300,
                pending_feedback: 4,
                decides: 300,
                feedback_events: 296,
                total_reward: 123.5,
                optimal_reward: 150.25,
                regret: 150.25 - 123.5,
                arms: vec![
                    WireArmStat {
                        arm: 0,
                        pulls: 250,
                        mean: 0.1 + 0.2, // must survive bit-for-bit
                    },
                    WireArmStat {
                        arm: 1,
                        pulls: 46,
                        mean: 0.0,
                    },
                ],
            })),
            WireResponse::Error {
                code: WireErrorCode::Overloaded,
                message: "shard 2 queue full".into(),
            },
        ];
        for response in responses {
            let text = response.to_json_text();
            assert_eq!(
                WireResponse::from_json_text(&text).unwrap(),
                response,
                "{text}"
            );
        }
    }

    #[test]
    fn rewards_survive_bit_exactly() {
        let reward = 0.30000000000000004; // 0.1 + 0.2
        let response = WireResponse::Decisions {
            tenant: "t".into(),
            replies: vec![WireReply {
                round: 1,
                decision: WireDecision::Arm(0),
                reward,
                feedback: None,
            }],
        };
        let text = response.to_json_text();
        match WireResponse::from_json_text(&text).unwrap() {
            WireResponse::Decisions { replies, .. } => {
                assert_eq!(replies[0].reward.to_bits(), reward.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_and_tags_are_rejected() {
        for bad in [
            r#"{"type":"decide_many","tenant":"t","count":1,"extra":0}"#,
            r#"{"type":"decide_quickly","tenant":"t","count":1}"#,
            r#"{"type":"decide_many","tenant":"t"}"#,
            r#"{"type":"metrics","verbose":true}"#,
            r#"{"type":"telemetry"}"#,
            r#"{"type":"telemetry","tenant":"t","flush":true}"#,
        ] {
            assert!(WireRequest::from_json_text(bad).is_err(), "accepted {bad}");
        }
        for bad in [
            r#"{"type":"accepted"}"#,
            r#"{"type":"error","code":"not_a_code","message":"m"}"#,
            r#"{"type":"ok","status":200}"#,
        ] {
            assert!(WireResponse::from_json_text(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn all_error_codes_round_trip_through_their_tokens() {
        for code in [
            WireErrorCode::Overloaded,
            WireErrorCode::TooLarge,
            WireErrorCode::UnknownTenant,
            WireErrorCode::DuplicateTenant,
            WireErrorCode::Spec,
            WireErrorCode::Invalid,
            WireErrorCode::EngineDown,
            WireErrorCode::Protocol,
        ] {
            assert_eq!(WireErrorCode::from_str(code.as_str()).unwrap(), code);
        }
    }
}
