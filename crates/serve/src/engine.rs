//! The multi-tenant serving engine: shard spawning, routing, and the
//! synchronous client API.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::thread::JoinHandle;

use netband_obs::{TraceKind, TraceRing};
use netband_spec::FleetSpec;
use netband_store::{StoreConfig, StoreMetrics};

use crate::api::{DecideReply, FeedbackEvent, RegisterTenantSpec, ServeError};
use crate::durable;
use crate::metrics::{MetricsReport, TenantTelemetry, TraceReport};
use crate::shard::{shard_loop, Command, ShardBoot};
use crate::snapshot::TenantSnapshot;
use crate::tenant::TenantSpec;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The stable tenant-routing hash: 64-bit FNV-1a over the id's UTF-8 bytes.
///
/// The algorithm is spelled out here (offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`, xor-then-multiply per byte) precisely so the
/// tenant → shard assignment is a **documented constant of the system**, not
/// an artifact of the standard library: `std::hash::DefaultHasher` makes no
/// cross-release stability promise, and any persistence or eviction tier
/// keyed on shard assignment would silently scramble on a toolchain bump.
/// `tests/serve_engine.rs` and the unit fixture below pin known assignments.
pub fn stable_tenant_hash(id: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in id.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Engine sizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shard worker threads. Tenants are assigned to shards by
    /// [`stable_tenant_hash`] (an explicitly specified FNV-1a, stable across
    /// toolchains and releases), so the same id always routes to the same
    /// shard for a given shard count.
    pub shards: usize,
    /// Capacity of each shard's bounded command queue; a full queue blocks
    /// the sending client (backpressure).
    pub queue_capacity: usize,
    /// Capacity of each shard's (and the engine's) structured trace ring.
    /// When a ring is full the oldest events are overwritten; the number of
    /// overwritten events is reported by the drained ring's `dropped` count.
    pub trace_capacity: usize,
    /// Durable store configuration. `None` (the default) keeps the engine
    /// purely in-memory — no files are touched and behaviour is byte-for-byte
    /// identical to pre-store releases. `Some` gives every shard a write-ahead
    /// log plus snapshot store under `store.dir` and (optionally) a resident
    /// cap backed by the disk eviction tier; see
    /// [`ServeEngine::try_start`].
    pub store: Option<StoreConfig>,
}

impl EngineConfig {
    /// A config with `shards` workers and the default queue capacity.
    pub fn new(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            queue_capacity: 1024,
            trace_capacity: 256,
            store: None,
        }
    }

    /// Overrides the per-shard command queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the trace-ring capacity (per shard and for the engine ring).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity.max(1);
        self
    }

    /// Enables the durable store: per-shard write-ahead logs, compacted
    /// snapshots, and (when `store` carries a resident cap) the disk
    /// eviction tier, all under `store`'s directory. Start the engine with
    /// [`ServeEngine::try_start`] to surface recovery errors instead of
    /// panicking.
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = Some(store);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new(1)
    }
}

/// Holds a shard wedged — its worker blocked and its command queue full —
/// until dropped. Returned by [`ServeEngine::wedge_shard`] (test support).
#[doc(hidden)]
pub struct ShardWedge {
    releases: Vec<Receiver<()>>,
}

impl Drop for ShardWedge {
    fn drop(&mut self) {
        for release in &self.releases {
            // A panicked shard drops its ack sender; either way the shard is
            // no longer wedged once every receiver has been observed.
            let _ = release.recv();
        }
    }
}

/// A sharded multi-tenant serving engine.
///
/// The engine hosts independent bandit *tenants* (experiment id → policy +
/// environment), distributed across worker threads by tenant id. All methods
/// take `&self` and the engine is [`Sync`], so any number of client threads
/// can drive it concurrently (e.g. through [`std::thread::scope`]); commands
/// for the same tenant are serialised by its shard's FIFO queue.
///
/// See the [crate docs](crate) for a full walkthrough and the
/// delayed-feedback semantics.
pub struct ServeEngine {
    senders: Vec<SyncSender<Command>>,
    handles: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    /// Overload rejections happen on the *caller* side (`try_send` found the
    /// queue full; the shard never saw the command), so the engine — not a
    /// shard — keeps the count and the trace events. Cold path only: the
    /// atomic and the mutex are touched exclusively when a command is
    /// rejected or when observability is scraped.
    overload_rejections: AtomicU64,
    trace: Mutex<TraceRing>,
}

impl ServeEngine {
    /// Starts the shard worker threads.
    ///
    /// A literal-built config with `shards == 0` is treated as 1 (the
    /// constructors already clamp; this keeps a hand-built
    /// `EngineConfig { shards: 0, .. }` from producing an engine whose
    /// routing divides by zero).
    ///
    /// # Panics
    ///
    /// When the config carries a store and opening or recovering it fails
    /// (unreadable directory, corrupt snapshot/WAL, a log written by a
    /// different shard count). Use [`ServeEngine::try_start`] to handle
    /// those as errors.
    pub fn start(config: EngineConfig) -> Self {
        ServeEngine::try_start(config).expect("open and recover the engine's durable store")
    }

    /// Starts the shard worker threads, recovering each shard's durable
    /// state first when the config carries a store.
    ///
    /// Recovery runs serially on the calling thread *before* any worker is
    /// spawned: each shard's latest valid snapshot set is loaded and its WAL
    /// tail replayed through the ordinary decide/feedback paths, so a
    /// `kill -9` at any round resumes bit-exactly. Store-less configs never
    /// fail.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the store cannot be opened, a complete WAL
    /// record fails its CRC or decode (torn *tails* are truncated silently —
    /// that is the crash contract — but corruption mid-log is loud), or
    /// replay references state the log cannot reproduce.
    pub fn try_start(config: EngineConfig) -> Result<Self, ServeError> {
        let shards = config.shards.max(1);
        let trace_capacity = config.trace_capacity.max(1);
        let mut boots = Vec::with_capacity(shards);
        for shard in 0..shards {
            boots.push(match &config.store {
                Some(store) => durable::recover_shard(store, shard)?,
                None => ShardBoot::in_memory(),
            });
        }
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (shard, boot) in boots.into_iter().enumerate() {
            let (sender, receiver) = sync_channel(config.queue_capacity);
            let handle = std::thread::Builder::new()
                .name(format!("netband-shard-{shard}"))
                .spawn(move || shard_loop(receiver, trace_capacity, boot))
                .expect("spawn shard worker thread");
            senders.push(sender);
            handles.push(handle);
        }
        Ok(ServeEngine {
            senders,
            handles,
            queue_capacity: config.queue_capacity.max(1),
            overload_rejections: AtomicU64::new(0),
            trace: Mutex::new(TraceRing::new(trace_capacity)),
        })
    }

    /// Starts an engine with `shards` workers and default queue sizing.
    pub fn with_shards(shards: usize) -> Self {
        ServeEngine::start(EngineConfig::new(shards))
    }

    /// Number of shard worker threads.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Capacity of each shard's bounded command queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Test support: wedges `shard` so its command queue is observably full,
    /// returning a guard that releases the shard when dropped. While wedged,
    /// the `try_*` admission paths return
    /// [`ServeError::Overloaded`] deterministically — the wire-protocol suite
    /// uses this to exercise the overload error frame end to end without
    /// racing the shard's drain speed.
    #[doc(hidden)]
    pub fn wedge_shard(&self, shard: usize) -> ShardWedge {
        // The shard dequeues this drain and blocks sending the ack into a
        // rendezvous channel the guard has not read yet.
        let (ack, release) = sync_channel(0);
        self.send_to_shard(shard, Command::Drain { reply: ack })
            .expect("wedge a live shard");
        let mut releases = vec![release];
        // Fill every queue slot behind the wedged command. The sends block
        // until the wedge drain has been dequeued, so when the last one
        // returns the queue is exactly full.
        for _ in 0..self.queue_capacity {
            let (ack, release) = sync_channel(1);
            self.send_to_shard(shard, Command::Drain { reply: ack })
                .expect("fill a live shard queue");
            releases.push(release);
        }
        ShardWedge { releases }
    }

    /// The shard a tenant id routes to: [`stable_tenant_hash`] reduced modulo
    /// the shard count. Stable across processes, toolchains, and releases.
    pub fn shard_of(&self, tenant: &str) -> usize {
        (stable_tenant_hash(tenant) % self.senders.len() as u64) as usize
    }

    fn sender_for(&self, tenant: &str) -> &SyncSender<Command> {
        &self.senders[self.shard_of(tenant)]
    }

    /// Creates a batched client handle over this engine; see
    /// [`ServeClient`](crate::ServeClient). Cheap — intended usage is one
    /// client per driving thread.
    pub fn client(&self) -> crate::ServeClient<'_> {
        crate::ServeClient::new(self)
    }

    /// Enqueues a pre-built command on `shard` (the batched client path).
    pub(crate) fn send_to_shard(&self, shard: usize, command: Command) -> Result<(), ServeError> {
        self.senders[shard]
            .send(command)
            .map_err(|_| ServeError::EngineDown)
    }

    /// Non-blocking [`ServeEngine::send_to_shard`]: a full queue returns the
    /// command to the caller instead of blocking (the admission-control path
    /// of the network front end). The caller recovers its buffers from the
    /// returned command and surfaces [`ServeError::Overloaded`].
    // The Err variant deliberately carries the whole rejected command so the
    // caller can take its pooled buffers back — boxing it would trade one
    // cold-path copy for a hot-path allocation.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_send_to_shard(
        &self,
        shard: usize,
        command: Command,
    ) -> Result<(), TrySendError<Command>> {
        let result = self.senders[shard].try_send(command);
        if let Err(TrySendError::Full(_)) = &result {
            // Queue-full rejections never reach the shard, so they are
            // accounted here at the engine level.
            self.overload_rejections.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut ring) = self.trace.lock() {
                ring.record(
                    TraceKind::ShardOverloaded {
                        shard: shard as u32,
                    },
                    "",
                );
            }
        }
        result
    }

    /// Whether `shard`'s worker thread has exited (shutdown or panic). Used
    /// by the batched client to avoid waiting forever on a reply that can no
    /// longer arrive.
    pub(crate) fn shard_is_down(&self, shard: usize) -> bool {
        self.handles
            .get(shard)
            .map(std::thread::JoinHandle::is_finished)
            .unwrap_or(true)
    }

    /// Sends a command built around a fresh reply channel and waits for the
    /// answer.
    fn request<T>(
        &self,
        sender: &SyncSender<Command>,
        build: impl FnOnce(SyncSender<Result<T, ServeError>>) -> Command,
    ) -> Result<T, ServeError> {
        let (reply, response) = sync_channel(1);
        sender
            .send(build(reply))
            .map_err(|_| ServeError::EngineDown)?;
        response.recv().map_err(|_| ServeError::EngineDown)?
    }

    /// Registers a new tenant on the shard its id routes to.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateTenant`] if the id is taken,
    /// [`ServeError::EngineDown`] after shutdown.
    pub fn create_tenant(&self, spec: TenantSpec) -> Result<(), ServeError> {
        let sender = self.sender_for(spec.id());
        self.request(sender, |reply| Command::Create {
            spec: Box::new(spec),
            reply,
        })
    }

    /// Registers a tenant from a declarative scenario document (the
    /// [`RegisterTenantSpec`] command): the scenario is validated and built
    /// via `netband-spec`, then registered like any hand-constructed tenant.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spec`] when the scenario fails to validate or build,
    /// plus everything [`ServeEngine::create_tenant`] can return.
    pub fn register_tenant_spec(&self, request: &RegisterTenantSpec) -> Result<(), ServeError> {
        let spec = TenantSpec::from_scenario(request.id.clone(), &request.scenario)?;
        self.create_tenant(spec)
    }

    /// Boots a whole multi-tenant fleet from one declarative document:
    /// validates the fleet first (version, per-scenario validity, unique
    /// ids), then registers every tenant. Fails fast on the first
    /// registration error; previously registered tenants of the same call
    /// stay registered.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spec`] for an invalid fleet document, plus everything
    /// [`ServeEngine::register_tenant_spec`] can return.
    pub fn register_fleet(&self, fleet: &FleetSpec) -> Result<(), ServeError> {
        fleet.validate()?;
        for tenant in &fleet.tenants {
            let spec = TenantSpec::from_scenario(tenant.id.clone(), &tenant.scenario)?;
            self.create_tenant(spec)?;
        }
        Ok(())
    }

    /// Recreates a tenant from a checkpoint (same routing as
    /// [`ServeEngine::create_tenant`]). The environment's derived CSR state
    /// is rebuilt on restore, so snapshots taken before a shutdown resume
    /// bit-identically on a fresh engine.
    pub fn restore_tenant(&self, snapshot: TenantSnapshot) -> Result<(), ServeError> {
        let sender = self.sender_for(snapshot.id());
        self.request(sender, |reply| Command::Restore {
            snapshot: Box::new(snapshot),
            reply,
        })
    }

    /// Serves one decision for `tenant`, blocking until its shard answers.
    pub fn decide(&self, tenant: &str) -> Result<DecideReply, ServeError> {
        self.request(self.sender_for(tenant), |reply| Command::Decide {
            tenant: tenant.to_owned(),
            reply,
        })
    }

    /// Ingests one feedback event for `tenant`'s round `round`,
    /// fire-and-forget. Events may arrive delayed, in batches, and out of
    /// round order; each tenant applies its queue in round order at flush
    /// points (see [`crate::FlushPolicy`]).
    ///
    /// A full shard queue blocks the caller (backpressure). Feedback for an
    /// unknown tenant, of the wrong kind, or quoting a round the tenant never
    /// served is dropped and counted in [`crate::ShardMetrics::rejected`].
    /// Duplicate delivery of a served round is *not* detected — at-most-once
    /// delivery is the caller's responsibility.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineDown`] after shutdown.
    pub fn feedback(
        &self,
        tenant: &str,
        round: u64,
        event: FeedbackEvent,
    ) -> Result<(), ServeError> {
        self.sender_for(tenant)
            .send(Command::Feedback {
                tenant: tenant.to_owned(),
                round,
                event,
            })
            .map_err(|_| ServeError::EngineDown)
    }

    /// Asks `tenant` to apply its pending feedback now (fire-and-forget).
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineDown`] after shutdown.
    pub fn flush(&self, tenant: &str) -> Result<(), ServeError> {
        self.sender_for(tenant)
            .send(Command::Flush {
                tenant: tenant.to_owned(),
            })
            .map_err(|_| ServeError::EngineDown)
    }

    /// Checkpoints `tenant` (flushing its pending feedback first) without
    /// removing it.
    pub fn snapshot_tenant(&self, tenant: &str) -> Result<TenantSnapshot, ServeError> {
        self.request(self.sender_for(tenant), |reply| Command::Snapshot {
            tenant: tenant.to_owned(),
            reply,
        })
    }

    /// Removes `tenant` from the engine, returning its final checkpoint.
    pub fn evict_tenant(&self, tenant: &str) -> Result<TenantSnapshot, ServeError> {
        self.request(self.sender_for(tenant), |reply| Command::Evict {
            tenant: tenant.to_owned(),
            reply,
        })
    }

    /// Flushes every tenant's pending feedback on every shard and waits until
    /// all previously enqueued commands have been processed (a full-engine
    /// barrier).
    pub fn drain(&self) -> Result<(), ServeError> {
        let mut responses = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (reply, response) = sync_channel(1);
            sender
                .send(Command::Drain { reply })
                .map_err(|_| ServeError::EngineDown)?;
            responses.push(response);
        }
        for response in responses {
            response.recv().map_err(|_| ServeError::EngineDown)?;
        }
        Ok(())
    }

    /// Gathers a point-in-time metrics report from every shard. Like
    /// [`ServeEngine::drain`], acts as a queue barrier, so the report covers
    /// everything enqueued before the call.
    pub fn metrics(&self) -> Result<MetricsReport, ServeError> {
        let mut responses = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (reply, response) = sync_channel(1);
            sender
                .send(Command::Metrics { reply })
                .map_err(|_| ServeError::EngineDown)?;
            responses.push(response);
        }
        let mut report = MetricsReport::default();
        for response in responses {
            let shard = response.recv().map_err(|_| ServeError::EngineDown)?;
            report.shards.push(shard.metrics);
            report.tenants.extend(shard.tenants);
        }
        report.tenants.sort_by(|a, b| a.0.cmp(&b.0));
        report.overload_rejections = self.overload_rejections.load(Ordering::Relaxed);
        Ok(report)
    }

    /// A point-in-time learning-telemetry snapshot of one tenant: per-arm
    /// pull counts and empirical means, cumulative realised and oracle
    /// reward, and serving counters. Read-only — no flush is triggered, so
    /// the estimators reflect only feedback already applied at flush points
    /// (events still queued are counted in
    /// [`TenantTelemetry::pending_feedback`]).
    pub fn telemetry(&self, tenant: &str) -> Result<TenantTelemetry, ServeError> {
        self.request(self.sender_for(tenant), |reply| Command::Telemetry {
            tenant: tenant.to_owned(),
            reply,
        })
    }

    /// Telemetry snapshots for every tenant on every shard, sorted by tenant
    /// id. Acts as a queue barrier per shard, like [`ServeEngine::metrics`].
    pub fn telemetry_all(&self) -> Result<Vec<TenantTelemetry>, ServeError> {
        let mut responses = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (reply, response) = sync_channel(1);
            sender
                .send(Command::TelemetryAll { reply })
                .map_err(|_| ServeError::EngineDown)?;
            responses.push(response);
        }
        let mut all = Vec::new();
        for response in responses {
            all.extend(response.recv().map_err(|_| ServeError::EngineDown)?);
        }
        all.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(all)
    }

    /// The durable store's counters summed across every shard — WAL appends
    /// and fsyncs, the live WAL-size gauge, compactions, evictions and
    /// rehydrations, and what recovery replayed at boot. `Ok(None)` when the
    /// engine runs without a store. Acts as a queue barrier per shard, like
    /// [`ServeEngine::metrics`].
    pub fn store_metrics(&self) -> Result<Option<StoreMetrics>, ServeError> {
        let mut responses = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (reply, response) = sync_channel(1);
            sender
                .send(Command::StoreMetrics { reply })
                .map_err(|_| ServeError::EngineDown)?;
            responses.push(response);
        }
        let mut total: Option<StoreMetrics> = None;
        for response in responses {
            if let Some(shard) = response.recv().map_err(|_| ServeError::EngineDown)? {
                total
                    .get_or_insert_with(StoreMetrics::default)
                    .absorb(&shard);
            }
        }
        Ok(total)
    }

    /// Drains every trace ring — one per shard plus the engine-level ring
    /// that records caller-side overload rejections — into a
    /// [`TraceReport`]. Draining resets the rings (events are returned once);
    /// sequence numbers keep counting across drains.
    pub fn trace(&self) -> Result<TraceReport, ServeError> {
        let mut responses = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (reply, response) = sync_channel(1);
            sender
                .send(Command::Trace { reply })
                .map_err(|_| ServeError::EngineDown)?;
            responses.push(response);
        }
        let mut report = TraceReport::default();
        for response in responses {
            report
                .shards
                .push(response.recv().map_err(|_| ServeError::EngineDown)?);
        }
        if let Ok(mut ring) = self.trace.lock() {
            ring.drain_into(&mut report.engine);
        }
        Ok(report)
    }

    /// Stops every shard after it finishes its queued work, and joins the
    /// worker threads. Dropping the engine does the same implicitly.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        for sender in &self.senders {
            // A shard that already exited has dropped its receiver; fine.
            let _ = sender.send(Command::Shutdown);
        }
        // Senders are kept so later requests fail with `EngineDown` instead
        // of panicking on routing.
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_zero_shard_configs_still_route() {
        // Bypassing the constructors must not produce a divide-by-zero router.
        let engine = ServeEngine::start(EngineConfig {
            shards: 0,
            queue_capacity: 4,
            trace_capacity: 0,
            store: None,
        });
        assert_eq!(engine.num_shards(), 1);
        assert_eq!(engine.shard_of("any"), 0);
        engine.shutdown();
    }

    #[test]
    fn config_clamps_degenerate_sizes() {
        assert_eq!(EngineConfig::new(0).shards, 1);
        assert_eq!(EngineConfig::new(4).shards, 4);
        assert_eq!(
            EngineConfig::new(1).with_queue_capacity(0).queue_capacity,
            1
        );
        assert_eq!(
            EngineConfig::new(1).with_trace_capacity(0).trace_capacity,
            1
        );
        assert_eq!(EngineConfig::default(), EngineConfig::new(1));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let engine = ServeEngine::with_shards(4);
        assert_eq!(engine.num_shards(), 4);
        for id in ["a", "b", "exp-42", ""] {
            let shard = engine.shard_of(id);
            assert!(shard < 4);
            assert_eq!(shard, engine.shard_of(id), "routing must be stable");
        }
        engine.shutdown();
    }

    /// The routing hash is a documented constant of the system: these are the
    /// standard FNV-1a 64-bit test vectors plus this workspace's own ids. If
    /// this test ever fails, shard routing changed — which silently scrambles
    /// any persistence or eviction tier keyed on shard assignment. Do not
    /// update the constants; fix the hash.
    #[test]
    fn tenant_hash_matches_the_pinned_fnv1a_vectors() {
        assert_eq!(stable_tenant_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_tenant_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_tenant_hash("foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(stable_tenant_hash("exp-0"), 0xdb82_9312_96b1_d41d);
        assert_eq!(stable_tenant_hash("tenant-0"), 0xc2ef_b028_e3eb_eed8);
    }

    /// Known tenant → shard assignments on a 4-shard engine. Pinned so a
    /// refactor (or a toolchain bump) can never silently re-route tenants.
    #[test]
    fn tenant_to_shard_assignments_are_pinned() {
        let engine = ServeEngine::with_shards(4);
        let expected: &[(&str, usize)] = &[
            ("", 1),
            ("a", 0),
            ("exp-0", 1),
            ("tenant-0", 0),
            ("tenant-1", 3),
            ("tenant-2", 2),
            ("tenant-3", 1),
            ("tenant-4", 0),
            ("tenant-5", 3),
            ("tenant-6", 2),
            ("tenant-7", 1),
        ];
        for &(id, shard) in expected {
            assert_eq!(engine.shard_of(id), shard, "tenant {id:?} re-routed");
        }
        engine.shutdown();
    }

    #[test]
    fn tenants_register_from_scenario_specs() {
        use netband_spec::{presets, FleetSpec, FleetTenant, SPEC_VERSION};

        let engine = ServeEngine::with_shards(2);
        let mut scenario = presets::paper_simulation(10, 0.4, 11);
        scenario.horizon = 50;
        engine
            .register_tenant_spec(&RegisterTenantSpec::new("spec-0", scenario.clone()))
            .unwrap();
        // Same id twice: the duplicate is rejected by the shard, not the spec.
        assert_eq!(
            engine.register_tenant_spec(&RegisterTenantSpec::new("spec-0", scenario.clone())),
            Err(ServeError::DuplicateTenant("spec-0".into()))
        );
        let reply = engine.decide("spec-0").unwrap();
        assert_eq!(reply.round, 1);

        // A whole fleet from one document, including a combinatorial tenant.
        let mut comb = presets::channel_access(10, 2, 0.35, 4);
        comb.horizon = 50;
        let fleet = FleetSpec {
            version: SPEC_VERSION,
            name: "test-fleet".into(),
            tenants: vec![
                FleetTenant {
                    id: "fleet-a".into(),
                    scenario,
                },
                FleetTenant {
                    id: "fleet-b".into(),
                    scenario: comb,
                },
            ],
        };
        engine.register_fleet(&fleet).unwrap();
        for id in ["fleet-a", "fleet-b"] {
            assert_eq!(engine.decide(id).unwrap().round, 1, "{id}");
        }
        // An invalid fleet (duplicate ids) is rejected before registration.
        let mut bad = fleet.clone();
        bad.tenants[1].id = "fleet-a".into();
        assert!(matches!(
            engine.register_fleet(&bad),
            Err(ServeError::Spec(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn zero_flush_policies_are_rejected_at_registration() {
        use netband_core::DflSso;
        use netband_env::{ArmSet, NetworkedBandit};
        use netband_sim::SingleScenario;

        let engine = ServeEngine::with_shards(1);
        let graph = netband_graph::generators::path(4);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
        let spec = crate::TenantSpec::single(
            "zero",
            bandit,
            DflSso::new(graph),
            SingleScenario::SideObservation,
            1,
        )
        .with_flush(crate::FlushPolicy {
            max_pending: 0,
            flush_before_decide: false,
        });
        assert_eq!(
            engine.create_tenant(spec),
            Err(ServeError::InvalidFlushPolicy { max_pending: 0 })
        );
        // The rejected tenant never registered.
        assert!(matches!(
            engine.decide("zero"),
            Err(ServeError::UnknownTenant(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn requests_after_shutdown_report_engine_down() {
        let engine = ServeEngine::with_shards(2);
        let mut engine = engine;
        engine.shutdown_in_place();
        assert_eq!(engine.decide("x").unwrap_err(), ServeError::EngineDown);
        assert_eq!(engine.drain().unwrap_err(), ServeError::EngineDown);
    }
}
