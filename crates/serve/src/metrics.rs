//! Lightweight serving metrics: per-tenant counters, batch-size accounting,
//! latency histograms, and per-tenant learning telemetry.
//!
//! Every shard owns the metrics of its tenants — no cross-thread sharing, no
//! atomics on the hot path. The engine gathers a [`MetricsReport`] on demand
//! by round-tripping a command through every shard, which also acts as a
//! queue barrier (all previously enqueued work is reflected in the report).
//!
//! The latency histogram itself lives in `netband-obs` (the registry's text
//! exposition needs bucket-level access); it is re-exported here so existing
//! `netband_serve::metrics::LatencyHistogram` imports keep working.

pub use netband_obs::{
    DecideStage, LatencyHistogram, StageTimings, TraceEvent, TraceKind, DECIDE_STAGES,
    LATENCY_BUCKETS,
};

/// Stage-timing sample rate: one decide in this many records its per-stage
/// split (the rest record only the end-to-end decide latency). Keeps the
/// extra monotonic-clock reads off the common path.
pub const STAGE_SAMPLE_EVERY: u64 = 32;

/// Counters of one tenant's serving activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Decisions served.
    pub decides: u64,
    /// Feedback events accepted into the pending queue.
    pub feedback_events: u64,
    /// Feedback batches flushed into the policy.
    pub batches_flushed: u64,
    /// Feedback events applied by those flushes.
    pub events_applied: u64,
    /// Largest batch applied by a single flush.
    pub max_batch: u64,
}

impl TenantMetrics {
    /// Mean flushed-batch size (0 when nothing has been flushed).
    pub fn mean_batch(&self) -> f64 {
        if self.batches_flushed == 0 {
            0.0
        } else {
            self.events_applied as f64 / self.batches_flushed as f64
        }
    }

    /// Records one flush of `batch` events.
    pub fn record_flush(&mut self, batch: u64) {
        self.batches_flushed += 1;
        self.events_applied += batch;
        self.max_batch = self.max_batch.max(batch);
    }
}

/// Counters of one shard's command loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Commands processed (all kinds).
    pub commands: u64,
    /// Feedback or flush commands addressed to a tenant the shard does not
    /// host (fire-and-forget commands cannot return an error, so they are
    /// counted here instead).
    pub rejected: u64,
    /// Latency of `Decide` handling (select + pull + score + reply build).
    pub decide_latency: LatencyHistogram,
    /// Latency of feedback ingestion (queueing plus any triggered flush).
    pub feedback_latency: LatencyHistogram,
    /// Sampled per-stage decide timings (route → select → pull → score →
    /// reply). Only every [`STAGE_SAMPLE_EVERY`]-th decide is split into
    /// stages, so these histograms describe the *shape* of a decide, not the
    /// decide count.
    pub stages: StageTimings,
}

/// A point-in-time view of the whole engine's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Per-shard command-loop metrics, indexed by shard.
    pub shards: Vec<ShardMetrics>,
    /// Per-tenant counters of every hosted tenant, sorted by tenant id.
    pub tenants: Vec<(String, TenantMetrics)>,
    /// Commands the engine rejected because a shard's queue was full
    /// (counted engine-side at the `try_send` that failed — the shard never
    /// saw these, so they appear in no shard's counters).
    pub overload_rejections: u64,
}

impl MetricsReport {
    /// Total decisions served across all tenants.
    pub fn total_decides(&self) -> u64 {
        self.tenants.iter().map(|(_, m)| m.decides).sum()
    }

    /// Total feedback events accepted across all tenants.
    pub fn total_feedback_events(&self) -> u64 {
        self.tenants.iter().map(|(_, m)| m.feedback_events).sum()
    }

    /// All shards' decide latencies merged into one histogram.
    pub fn decide_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.shards {
            merged.merge(&shard.decide_latency);
        }
        merged
    }

    /// All shards' feedback latencies merged into one histogram.
    pub fn feedback_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.shards {
            merged.merge(&shard.feedback_latency);
        }
        merged
    }

    /// All shards' sampled stage timings merged into one set.
    pub fn stage_timings(&self) -> StageTimings {
        let mut merged = StageTimings::new();
        for shard in &self.shards {
            merged.merge(&shard.stages);
        }
        merged
    }
}

/// A point-in-time learning snapshot of one tenant: what the policy has
/// *learned*, not just how much traffic it served.
///
/// Gathered through the owning shard's command loop like
/// [`MetricsReport`], so reading telemetry is a queue barrier for that shard
/// but never perturbs the tenant (no flush is triggered — the estimator view
/// reflects **flushed** feedback only, pending events are counted but not
/// applied).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTelemetry {
    /// Tenant id.
    pub id: String,
    /// Name of the hosted policy (e.g. `"DFL-SSO"`).
    pub policy: String,
    /// Rounds served so far.
    pub round: u64,
    /// Feedback events queued but not yet flushed into the policy.
    pub pending_feedback: u64,
    /// Cumulative realised reward across all served rounds.
    pub total_reward: f64,
    /// Cumulative reward of the dynamic oracle (the per-round optimal play,
    /// tracking drift when the tenant drifts).
    pub optimal_reward: f64,
    /// The tenant's serving counters at the same instant.
    pub metrics: TenantMetrics,
    /// Per-arm pull counts from the policy's [`netband_core::estimator::ArmEstimators`]
    /// (empty when the policy keeps no per-arm estimators, e.g. EXP3).
    /// For DFL-CSO the "arms" are dense *strategy* ids, not base arms.
    pub arm_pulls: Vec<u64>,
    /// Per-arm empirical means, parallel to
    /// [`TenantTelemetry::arm_pulls`].
    pub arm_means: Vec<f64>,
}

impl TenantTelemetry {
    /// Dynamic-oracle regret proxy: cumulative optimal reward minus
    /// cumulative realised reward. "Proxy" because both sides are realised
    /// draws of a single run, not expectations.
    pub fn regret(&self) -> f64 {
        self.optimal_reward - self.total_reward
    }
}

/// The engine's drained trace rings: one event list per shard plus the
/// engine-level ring (caller-side overload rejections). Returned by
/// `ServeEngine::trace`; draining resets the rings, so each event is
/// delivered exactly once.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Per-shard trace events, oldest first, indexed by shard.
    pub shards: Vec<Vec<TraceEvent>>,
    /// Engine-level events (overload rejections recorded at `try_send`).
    pub engine: Vec<TraceEvent>,
}

impl TraceReport {
    /// Total number of events across every ring.
    pub fn total_events(&self) -> usize {
        self.engine.len() + self.shards.iter().map(Vec::len).sum::<usize>()
    }

    /// Iterates over all shard events followed by the engine events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.shards.iter().flatten().chain(self.engine.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tenant_metrics_batch_accounting() {
        let mut m = TenantMetrics::default();
        assert_eq!(m.mean_batch(), 0.0);
        m.record_flush(1);
        m.record_flush(31);
        assert_eq!(m.batches_flushed, 2);
        assert_eq!(m.events_applied, 32);
        assert_eq!(m.max_batch, 31);
        assert!((m.mean_batch() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn report_totals_sum_over_tenants() {
        let a = TenantMetrics {
            decides: 10,
            feedback_events: 7,
            ..TenantMetrics::default()
        };
        let b = TenantMetrics {
            decides: 5,
            ..TenantMetrics::default()
        };
        let report = MetricsReport {
            shards: vec![ShardMetrics::default()],
            tenants: vec![("a".into(), a), ("b".into(), b)],
            overload_rejections: 0,
        };
        assert_eq!(report.total_decides(), 15);
        assert_eq!(report.total_feedback_events(), 7);
        assert_eq!(report.decide_latency().count(), 0);
        assert_eq!(report.feedback_latency().count(), 0);
    }

    #[test]
    fn merged_latency_accessors_fold_all_shards() {
        let mut s0 = ShardMetrics::default();
        let mut s1 = ShardMetrics::default();
        s0.decide_latency.record(Duration::from_nanos(100));
        s1.decide_latency.record(Duration::from_nanos(100));
        s0.feedback_latency.record(Duration::from_micros(1));
        s1.feedback_latency.record(Duration::from_micros(2));
        s1.feedback_latency.record(Duration::from_micros(3));
        s0.stages
            .record(DecideStage::Select, Duration::from_nanos(50));
        let report = MetricsReport {
            shards: vec![s0, s1],
            tenants: Vec::new(),
            overload_rejections: 0,
        };
        assert_eq!(report.decide_latency().count(), 2);
        assert_eq!(report.feedback_latency().count(), 3);
        assert_eq!(report.stage_timings().get(DecideStage::Select).count(), 1);
    }

    #[test]
    fn telemetry_regret_is_optimal_minus_realised() {
        let t = TenantTelemetry {
            id: "t".into(),
            policy: "DFL-SSO".into(),
            round: 10,
            pending_feedback: 2,
            total_reward: 4.5,
            optimal_reward: 6.0,
            metrics: TenantMetrics::default(),
            arm_pulls: vec![3, 7],
            arm_means: vec![0.25, 0.75],
        };
        assert!((t.regret() - 1.5).abs() < 1e-12);
    }
}
