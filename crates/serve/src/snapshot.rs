//! Restartable tenant checkpoints.
//!
//! A [`TenantSnapshot`] captures everything a tenant needs to resume after an
//! engine restart: the environment's *serialized form* (relation graph + arm
//! set — deliberately **not** the derived CSR snapshot), the policy's learned
//! state, the RNG state, and the regret accounting. Restoring goes through
//! [`netband_env::NetworkedBandit::new`], which rebuilds the CSR snapshot —
//! the same refresh path a `serde`-deserialized environment takes — so a
//! restored tenant continues bit-identically to the original.
//!
//! The snapshot is an in-memory value (the vendored `serde` shim has no
//! serializer); the fields mirror the `serde` data model of the underlying
//! types, so wiring up a real on-disk format is a serializer choice, not a
//! redesign. Policies are captured as cloned boxes — a wire format would
//! enumerate the concrete policy types instead.

use rand::rngs::StdRng;

use netband_env::{ArmSet, DriftSchedule, StrategyFamily};
use netband_graph::RelationGraph;
use netband_sim::regret::RegretTrace;
use netband_sim::{CombinatorialScenario, RunResult, SingleScenario};

use crate::api::{FlushPolicy, TenantId};
use crate::metrics::TenantMetrics;
use crate::tenant::{DynCombinatorialPolicy, DynSinglePolicy};

/// Play-mode specific checkpoint state.
pub(crate) enum SnapshotKind {
    Single {
        policy: Box<dyn DynSinglePolicy>,
        scenario: SingleScenario,
    },
    Combinatorial {
        policy: Box<dyn DynCombinatorialPolicy>,
        family: StrategyFamily,
        scenario: CombinatorialScenario,
    },
}

impl Clone for SnapshotKind {
    fn clone(&self) -> Self {
        match self {
            SnapshotKind::Single { policy, scenario } => SnapshotKind::Single {
                policy: policy.clone_box(),
                scenario: *scenario,
            },
            SnapshotKind::Combinatorial {
                policy,
                family,
                scenario,
            } => SnapshotKind::Combinatorial {
                policy: policy.clone_box(),
                family: family.clone(),
                scenario: *scenario,
            },
        }
    }
}

/// A restartable checkpoint of one tenant. Produced by
/// [`ServeEngine::snapshot_tenant`](crate::ServeEngine::snapshot_tenant) /
/// [`ServeEngine::evict_tenant`](crate::ServeEngine::evict_tenant), consumed
/// by [`ServeEngine::restore_tenant`](crate::ServeEngine::restore_tenant).
#[derive(Clone)]
pub struct TenantSnapshot {
    pub(crate) id: TenantId,
    pub(crate) graph: RelationGraph,
    pub(crate) arms: ArmSet,
    pub(crate) kind: SnapshotKind,
    pub(crate) rng: StdRng,
    pub(crate) round: u64,
    pub(crate) optimal: f64,
    /// Running sum of the per-round dynamic optima (drifting tenants only;
    /// stays 0 for stationary tenants, whose benchmark is `optimal`).
    pub(crate) optimal_sum: f64,
    /// The tenant's drift schedule, if it hosts a drifting world. Drift is a
    /// pure function of the round counter, so the schedule plus `round` is
    /// all a restore needs to continue the drifting means bit-exactly.
    pub(crate) drift: Option<DriftSchedule>,
    pub(crate) total_reward: f64,
    pub(crate) trace: RegretTrace,
    pub(crate) flush: FlushPolicy,
    pub(crate) auto_feedback: bool,
    pub(crate) echo_feedback: bool,
    pub(crate) metrics: TenantMetrics,
    /// The scenario document the tenant was registered from, carried through
    /// snapshots so a restore onto a store-enabled engine can persist the
    /// tenant (durable recovery rebuilds structure from this document).
    pub(crate) origin: Option<Box<netband_spec::ScenarioSpec>>,
}

impl TenantSnapshot {
    /// The tenant id the snapshot restores under.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Rounds the tenant had served when the snapshot was taken.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Name of the checkpointed policy.
    pub fn policy_name(&self) -> &'static str {
        match &self.kind {
            SnapshotKind::Single { policy, .. } => policy.name(),
            SnapshotKind::Combinatorial { policy, .. } => policy.name(),
        }
    }

    /// The tenant's serving metrics at snapshot time.
    pub fn metrics(&self) -> &TenantMetrics {
        &self.metrics
    }

    /// The tenant's run so far, in the simulation engine's result format —
    /// the bridge the golden-trace equivalence suite compares through.
    pub fn run_result(&self) -> RunResult {
        // Drifting tenants report the horizon average of the per-round
        // dynamic optima — the same expression as the drifted simulation
        // runners, so the two results compare bit-for-bit.
        let optimal_mean = if self.drift.is_some() {
            if self.round == 0 {
                0.0
            } else {
                self.optimal_sum / self.round as f64
            }
        } else {
            self.optimal
        };
        RunResult {
            policy: self.policy_name().to_owned(),
            horizon: self.round as usize,
            optimal_mean,
            total_reward: self.total_reward,
            trace: self.trace.clone(),
        }
    }
}

impl std::fmt::Debug for TenantSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSnapshot")
            .field("id", &self.id)
            .field("policy", &self.policy_name())
            .field("round", &self.round)
            .field("arms", &self.arms.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{Tenant, TenantSpec};
    use netband_core::DflSso;
    use netband_env::NetworkedBandit;
    use netband_graph::generators;

    fn snapshot_fixture() -> TenantSnapshot {
        let graph = generators::path(5);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
        let spec = TenantSpec::single(
            "exp",
            bandit,
            DflSso::new(graph),
            SingleScenario::SideObservation,
            1,
        )
        .with_auto_feedback(true);
        let mut tenant = Tenant::new(spec).unwrap();
        for _ in 0..20 {
            tenant.decide().unwrap();
        }
        tenant.snapshot()
    }

    #[test]
    fn accessors_expose_checkpoint_summary() {
        let snap = snapshot_fixture();
        assert_eq!(snap.id(), "exp");
        assert_eq!(snap.round(), 20);
        assert_eq!(snap.policy_name(), "DFL-SSO");
        assert_eq!(snap.metrics().decides, 20);
        let result = snap.run_result();
        assert_eq!(result.horizon, 20);
        assert_eq!(result.trace.len(), 20);
        assert_eq!(result.policy, "DFL-SSO");
        let debug = format!("{snap:?}");
        assert!(
            debug.contains("exp") && debug.contains("DFL-SSO"),
            "{debug}"
        );
    }

    #[test]
    fn snapshots_clone_independently() {
        let snap = snapshot_fixture();
        let clone = snap.clone();
        let mut a = Tenant::from_snapshot(snap).unwrap();
        let mut b = Tenant::from_snapshot(clone).unwrap();
        for _ in 0..10 {
            assert_eq!(a.decide().unwrap(), b.decide().unwrap());
        }
    }
}
