//! The translation layer between live tenants and their durable documents,
//! plus shard recovery and the disk eviction tier's bookkeeping.
//!
//! `netband-store` owns files, framing, and fsync scheduling;
//! `netband_spec::store` owns the documents inside the frames. This module
//! owns the only part neither of them can: converting a live [`Tenant`] to a
//! [`StoredTenantSnapshot`] and back, bit-exactly.
//!
//! # The structure / state split
//!
//! A stored snapshot does **not** serialize the policy's structure (graph
//! wiring, exploration constants, strategy family) — it records the tenant's
//! originating [`ScenarioSpec`] and only the *learned* state on top: the
//! policy's [`PolicyState`](netband_core::PolicyState) bag, the tenant RNG's
//! raw words, the regret trace, the pending feedback queue, and the serving
//! counters. Restoring rebuilds the tenant from the document (the same path
//! registration took) and loads the learned state into it. This is why a
//! store-enabled engine rejects tenants that were not built from a scenario
//! document ([`ServeError::NotPersistable`]): without the document there is
//! nothing to rebuild from.
//!
//! # Capture never flushes
//!
//! [`Tenant::snapshot`] flushes pending feedback first (an in-memory
//! checkpoint wants complete policy state). Durable capture must not: the
//! flush would mutate the policy, so an engine with a store would diverge
//! from one without. [`capture_tenant`] therefore reads the pending queue
//! non-destructively (in arrival order, which reproduces the eventual
//! flush's stable sort) and stores it verbatim.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;

use netband_sim::regret::RegretTrace;
use netband_spec::{
    StoredTenantMetrics, StoredTenantSnapshot, WalRecord, WireEvent, STORE_VERSION,
};
use netband_store::{ShardStore, StoreConfig};

use crate::api::{FeedbackEvent, FlushPolicy, ServeError, TenantId};
use crate::metrics::TenantMetrics;
use crate::shard::ShardBoot;
use crate::tenant::{Tenant, TenantKind, TenantSpec};

/// Converts a client-facing feedback event into its wire/stored form.
pub(crate) fn event_to_wire(event: &FeedbackEvent) -> WireEvent {
    match event {
        FeedbackEvent::Single(fb) => WireEvent::Single(fb.clone()),
        FeedbackEvent::Combinatorial(fb) => WireEvent::Combinatorial(fb.clone()),
    }
}

/// Converts a stored feedback event back into its client-facing form.
pub(crate) fn wire_to_event(event: WireEvent) -> FeedbackEvent {
    match event {
        WireEvent::Single(fb) => FeedbackEvent::Single(fb),
        WireEvent::Combinatorial(fb) => FeedbackEvent::Combinatorial(fb),
    }
}

/// Captures a live tenant's complete durable state, without flushing its
/// pending feedback (see the module docs).
///
/// # Errors
///
/// [`ServeError::NotPersistable`] when the tenant has no originating scenario
/// document or its policy does not implement state capture.
pub(crate) fn capture_tenant(t: &Tenant) -> Result<StoredTenantSnapshot, ServeError> {
    let scenario = t
        .origin
        .clone()
        .ok_or_else(|| ServeError::NotPersistable(t.id.clone()))?;
    let (policy_state, pending) = match &t.kind {
        TenantKind::Single {
            policy, pending, ..
        } => (
            policy.save_state(),
            pending
                .iter()
                .map(|(round, fb)| (round, WireEvent::Single(fb.clone())))
                .collect::<Vec<_>>(),
        ),
        TenantKind::Combinatorial {
            policy, pending, ..
        } => (
            policy.save_state(),
            pending
                .iter()
                .map(|(round, fb)| (round, WireEvent::Combinatorial(fb.clone())))
                .collect(),
        ),
    };
    let policy = policy_state.ok_or_else(|| ServeError::NotPersistable(t.id.clone()))?;
    Ok(StoredTenantSnapshot {
        version: STORE_VERSION,
        id: t.id.clone(),
        scenario,
        round: t.round,
        optimal_sum: t.optimal_sum,
        total_reward: t.total_reward,
        flush_max_pending: t.flush.max_pending as u64,
        flush_before_decide: t.flush.flush_before_decide,
        auto_feedback: t.auto_feedback,
        echo_feedback: t.echo_feedback,
        rng: t.rng.to_state(),
        policy,
        realised: t.trace.realised().to_vec(),
        pseudo: t.trace.pseudo().to_vec(),
        pending,
        metrics: StoredTenantMetrics {
            decides: t.metrics.decides,
            feedback_events: t.metrics.feedback_events,
            batches_flushed: t.metrics.batches_flushed,
            events_applied: t.metrics.events_applied,
            max_batch: t.metrics.max_batch,
        },
    })
}

/// Rebuilds a live tenant from its durable state: the scenario document is
/// built exactly as registration built it, then the learned state is loaded
/// on top. The result continues the original's decision stream
/// f64-bit-identically.
pub(crate) fn restore_tenant(stored: StoredTenantSnapshot) -> Result<Tenant, ServeError> {
    let StoredTenantSnapshot {
        version: _,
        id,
        scenario,
        round,
        optimal_sum,
        total_reward,
        flush_max_pending,
        flush_before_decide,
        auto_feedback,
        echo_feedback,
        rng,
        policy: policy_state,
        realised,
        pseudo,
        pending,
        metrics,
    } = stored;
    let max_pending = usize::try_from(flush_max_pending).map_err(|_| {
        ServeError::Store(format!(
            "tenant {id:?}: flush_max_pending {flush_max_pending} does not fit this platform"
        ))
    })?;
    let spec = TenantSpec::from_scenario(id.clone(), &scenario)?
        .with_flush(FlushPolicy {
            max_pending,
            flush_before_decide,
        })
        .with_auto_feedback(auto_feedback)
        .with_echo_feedback(echo_feedback);
    let mut tenant = Tenant::new(spec)?;
    match &mut tenant.kind {
        TenantKind::Single {
            policy,
            pending: queue,
            ..
        } => {
            policy
                .load_state(&policy_state)
                .map_err(|e| ServeError::Store(format!("tenant {id:?}: {e}")))?;
            for (round, event) in pending {
                match event {
                    WireEvent::Single(fb) => queue.push(round, fb),
                    WireEvent::Combinatorial(_) => {
                        return Err(ServeError::FeedbackKindMismatch(id));
                    }
                }
            }
        }
        TenantKind::Combinatorial {
            policy,
            pending: queue,
            ..
        } => {
            policy
                .load_state(&policy_state)
                .map_err(|e| ServeError::Store(format!("tenant {id:?}: {e}")))?;
            for (round, event) in pending {
                match event {
                    WireEvent::Combinatorial(fb) => queue.push(round, fb),
                    WireEvent::Single(_) => {
                        return Err(ServeError::FeedbackKindMismatch(id));
                    }
                }
            }
        }
    }
    tenant.rng = StdRng::from_state(rng);
    tenant.round = round;
    tenant.optimal_sum = optimal_sum;
    tenant.total_reward = total_reward;
    // Lengths were validated against `round` by the document codec, so the
    // constructor's length panic is unreachable here.
    tenant.trace = RegretTrace::from_parts(realised, pseudo);
    tenant.metrics = TenantMetrics {
        decides: metrics.decides,
        feedback_events: metrics.feedback_events,
        batches_flushed: metrics.batches_flushed,
        events_applied: metrics.events_applied,
        max_batch: metrics.max_batch,
    };
    Ok(tenant)
}

/// One shard's durability state: its [`ShardStore`] plus the resident-set
/// bookkeeping of the disk eviction tier.
///
/// The eviction tier is a *cache*, not a log: moving a tenant to disk or
/// back is pure RAM management and is deliberately **not** WAL-logged —
/// recovery reconstructs every tenant (resident or evicted) from the
/// snapshot and WAL alone, and the store sweeps evict files at open so they
/// can never double-apply.
pub(crate) struct ShardDurability {
    pub(crate) store: ShardStore,
    /// Maximum tenants kept resident; `None` disables the eviction tier.
    pub(crate) resident_cap: Option<usize>,
    /// Tenants currently living in the disk tier (out of RAM).
    pub(crate) evicted: HashSet<TenantId>,
    /// Last-touch sequence number per *resident* tenant (the LRU order).
    last_touch: HashMap<TenantId, u64>,
    /// Monotonic touch clock.
    clock: u64,
}

impl ShardDurability {
    /// Marks a resident tenant as most recently used.
    pub(crate) fn touch(&mut self, id: &str) {
        self.clock += 1;
        match self.last_touch.get_mut(id) {
            Some(slot) => *slot = self.clock,
            None => {
                self.last_touch.insert(id.to_owned(), self.clock);
            }
        }
    }

    /// Drops all bookkeeping for a removed tenant.
    pub(crate) fn forget(&mut self, id: &str) {
        self.last_touch.remove(id);
        self.evicted.remove(id);
    }

    /// Moves a tenant's bookkeeping from resident to the disk tier.
    pub(crate) fn note_evicted(&mut self, id: &str) {
        self.last_touch.remove(id);
        self.evicted.insert(id.to_owned());
    }

    /// Moves a tenant's bookkeeping from the disk tier to resident.
    pub(crate) fn note_rehydrated(&mut self, id: &str) {
        self.evicted.remove(id);
        self.touch(id);
    }

    /// Whether a tenant exists on this shard at all (resident or on disk).
    pub(crate) fn knows(&self, id: &str) -> bool {
        self.last_touch.contains_key(id) || self.evicted.contains(id)
    }

    /// The least-recently-used resident tenant (ties broken by id, so the
    /// eviction order is deterministic).
    pub(crate) fn lru_victim(&self) -> Option<TenantId> {
        self.last_touch
            .iter()
            .min_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(b.0)))
            .map(|(id, _)| id.clone())
    }

    /// Whether `resident` tenants exceed the configured cap.
    pub(crate) fn over_cap(&self, resident: usize) -> bool {
        self.resident_cap.is_some_and(|cap| resident > cap)
    }
}

/// Opens one shard's store and replays its way back to the pre-crash state:
/// the latest committed snapshot's tenants are restored, then the WAL tail
/// is replayed through the same decide/feedback paths the live engine uses.
///
/// Every recovered tenant comes back *resident* regardless of where it lived
/// before the crash — the eviction tier re-forms as traffic arrives. Replay
/// ignores eviction entirely (it is not logged), which is exactly why it
/// cannot double-apply anything.
pub(crate) fn recover_shard(config: &StoreConfig, shard: usize) -> Result<ShardBoot, ServeError> {
    let (store, recovery) = ShardStore::open(config, shard)?;
    let mut durability = ShardDurability {
        store,
        resident_cap: config.resident_cap,
        evicted: HashSet::new(),
        last_touch: HashMap::new(),
        clock: 0,
    };
    let mut tenants = HashMap::new();
    for stored in recovery.tenants {
        let tenant = restore_tenant(stored)?;
        durability.touch(&tenant.id);
        tenants.insert(tenant.id.clone(), tenant);
    }
    for record in recovery.records {
        replay(record, &mut tenants, &mut durability)?;
    }
    Ok(ShardBoot {
        tenants,
        durable: Some(durability),
    })
}

/// Replays one WAL record onto the recovering tenant map. Only successful
/// mutations were logged, so any failure here means the files contradict
/// themselves — surfaced as [`ServeError::Store`], loudly.
fn replay(
    record: WalRecord,
    tenants: &mut HashMap<TenantId, Tenant>,
    durability: &mut ShardDurability,
) -> Result<(), ServeError> {
    fn known<'a>(
        tenants: &'a mut HashMap<TenantId, Tenant>,
        id: &str,
    ) -> Result<&'a mut Tenant, ServeError> {
        tenants.get_mut(id).ok_or_else(|| {
            ServeError::Store(format!("wal replays a mutation for unknown tenant {id:?}"))
        })
    }
    match record {
        WalRecord::Register {
            id,
            scenario,
            flush_max_pending,
            flush_before_decide,
            auto_feedback,
            echo_feedback,
        } => {
            let max_pending = usize::try_from(flush_max_pending).map_err(|_| {
                ServeError::Store(format!(
                    "tenant {id:?}: flush_max_pending {flush_max_pending} does not fit this \
                     platform"
                ))
            })?;
            let spec = TenantSpec::from_scenario(id.clone(), scenario.as_ref())?
                .with_flush(FlushPolicy {
                    max_pending,
                    flush_before_decide,
                })
                .with_auto_feedback(auto_feedback)
                .with_echo_feedback(echo_feedback);
            let tenant = Tenant::new(spec)?;
            durability.touch(&id);
            tenants.insert(id, tenant);
        }
        WalRecord::Restore { snapshot } => {
            let tenant = restore_tenant(*snapshot)?;
            durability.touch(&tenant.id);
            tenants.insert(tenant.id.clone(), tenant);
        }
        WalRecord::Decide { tenant, count } => {
            durability.touch(&tenant);
            let t = known(tenants, &tenant)?;
            for _ in 0..count {
                t.decide()?;
            }
        }
        WalRecord::Feedback {
            tenant,
            round,
            event,
        } => {
            durability.touch(&tenant);
            let t = known(tenants, &tenant)?;
            t.feedback(round, wire_to_event(event))?;
        }
        WalRecord::Flush { tenant } => {
            durability.touch(&tenant);
            let t = known(tenants, &tenant)?;
            t.flush_pending();
        }
        WalRecord::Removed { tenant } => {
            tenants.remove(&tenant);
            durability.forget(&tenant);
        }
        WalRecord::Drain => {
            // Same deterministic order as the live Drain command.
            let mut ids: Vec<TenantId> = tenants.keys().cloned().collect();
            ids.sort();
            for id in ids {
                if let Some(t) = tenants.get_mut(&id) {
                    t.flush_pending();
                }
            }
        }
    }
    Ok(())
}

/// Extracts the tenant id a WAL record is about (for trace-event context);
/// empty for shard-wide records.
pub(crate) fn record_tenant(record: &WalRecord) -> &str {
    match record {
        WalRecord::Register { id, .. } => id,
        WalRecord::Restore { snapshot } => &snapshot.id,
        WalRecord::Decide { tenant, .. }
        | WalRecord::Feedback { tenant, .. }
        | WalRecord::Flush { tenant }
        | WalRecord::Removed { tenant } => tenant,
        WalRecord::Drain => "",
    }
}
