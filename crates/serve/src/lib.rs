//! # netband-serve — sharded multi-tenant serving for networked bandits
//!
//! The simulation crates answer "how does a policy behave over a full
//! horizon?"; this crate answers "how do we *serve* those policies to live
//! traffic?". A [`ServeEngine`] hosts many independent bandit **tenants**
//! (experiment id → any policy from `netband-core`/`netband-baselines` over a
//! [`NetworkedBandit`](netband_env::NetworkedBandit) environment), sharded
//! across worker threads by [`stable_tenant_hash`] — an explicitly specified
//! FNV-1a over the tenant id, stable across toolchains and releases.
//!
//! ## Architecture
//!
//! ```text
//!  clients (any number of threads)
//!     │  decide("exp-7") / feedback("exp-7", round, event) / snapshot …
//!     ▼
//!  ServeEngine ──hash(tenant id)──► shard 0 ─┐   each shard: one std::thread
//!                                  shard 1 ─┤   draining a bounded command
//!                                  …        │   channel (backpressure), owning
//!                                  shard N ─┘   a disjoint set of tenants
//!                                      │
//!                                      ▼
//!                    Tenant { policy, environment, RNG, pending feedback,
//!                             regret trace, metrics }
//! ```
//!
//! Everything is `std`-only (no async runtime — the workspace's vendored
//! dependency set has none): a shard is a plain thread running an actor loop,
//! so the hot path takes no locks and tenant state never crosses threads.
//!
//! ## Delayed, out-of-order feedback
//!
//! Real deployments (ad placement, channel access) do not learn at decide
//! time: the reward for round `t` arrives later, interleaved with other
//! rounds' feedback. A tenant therefore splits serving into
//! *decide* (select + pull, allocation-free via the flat-core scratch
//! buffers) and *feedback ingestion* (events queue in a
//! [`FeedbackBatch`](netband_env::FeedbackBatch) and are folded into the
//! estimators **in round order** at flush points — see [`FlushPolicy`]).
//! With [`FlushPolicy::immediate`] a single-shard engine reproduces the batch
//! simulation bit for bit; the golden-trace equivalence suite in
//! `tests/serve_equivalence.rs` pins exactly that.
//!
//! ## Batched serving
//!
//! The per-call methods above pay one reply-channel construction and two
//! channel hops per decision. The hot path for real traffic is the
//! [`ServeClient`] handle ([`ServeEngine::client`]): one long-lived reply
//! channel per client, [`ServeClient::decide_many`] amortising a single
//! command/reply round-trip over `n` decisions, and
//! [`ServeClient::feedback_many`] ingesting a whole feedback window per
//! command — with every request/reply buffer (tenant-id strings, decision
//! vectors, echoed feedback) recycled, so a steady-state batched decide
//! allocates nothing on either side. Batching changes transport only: the
//! served trajectories, per-tenant metrics, and flush semantics are
//! bit-identical to the per-call sequence (pinned by
//! `tests/serve_equivalence.rs`). Shard-level command counts necessarily
//! differ — one `DecideMany` is one command however many decisions it
//! carries.
//!
//! ## Example
//!
//! Host an experiment, serve decisions from the engine, deliver the feedback
//! late and in reverse order, then checkpoint the tenant:
//!
//! ```
//! use netband_core::DflSso;
//! use netband_env::{ArmSet, NetworkedBandit};
//! use netband_graph::generators;
//! use netband_serve::{FlushPolicy, ServeEngine, TenantSpec};
//! use netband_sim::SingleScenario;
//!
//! let engine = ServeEngine::with_shards(2);
//! let graph = generators::path(6);
//! let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(6)).unwrap();
//! let spec = TenantSpec::single(
//!     "exp-0",
//!     bandit,
//!     DflSso::new(graph),
//!     SingleScenario::SideObservation,
//!     7,
//! )
//! .with_flush(FlushPolicy::batched(8));
//! engine.create_tenant(spec).unwrap();
//!
//! // Serve decisions now; the revealed feedback travels back whenever the
//! // client gets around to it — here: all at once, in reverse round order.
//! let mut pending = Vec::new();
//! for _ in 0..20 {
//!     let reply = engine.decide("exp-0").unwrap();
//!     pending.push((reply.round, reply.feedback.unwrap()));
//! }
//! for (round, event) in pending.into_iter().rev() {
//!     engine.feedback("exp-0", round, event).unwrap();
//! }
//! engine.drain().unwrap(); // apply everything queued (a full-engine barrier)
//!
//! let report = engine.metrics().unwrap();
//! assert_eq!(report.total_decides(), 20);
//! assert_eq!(report.total_feedback_events(), 20);
//!
//! let snapshot = engine.evict_tenant("exp-0").unwrap();
//! assert_eq!(snapshot.round(), 20);
//! engine.shutdown();
//! ```
//!
//! ## Spec-driven registration
//!
//! Tenants can also be registered from declarative `netband-spec` documents:
//! [`ServeEngine::register_tenant_spec`] hosts one
//! [`ScenarioSpec`](netband_spec::ScenarioSpec) (see [`RegisterTenantSpec`]),
//! and [`ServeEngine::register_fleet`] boots a whole multi-tenant fleet from
//! a single [`FleetSpec`](netband_spec::FleetSpec) JSON document — see
//! `examples/fleet.json` and `examples/live_service.rs`. A tenant registered
//! from a spec under [`FlushPolicy::immediate`] serves the same trajectory
//! as `netband_sim::run_spec` of the same document (pinned by
//! `tests/spec_golden.rs`).
//!
//! ## Snapshot / restore
//!
//! [`ServeEngine::snapshot_tenant`] (or [`ServeEngine::evict_tenant`])
//! captures a [`TenantSnapshot`] — environment in its serialized form
//! (graph and arms, *not* the derived CSR layout), policy state, RNG, regret
//! accounting. [`ServeEngine::restore_tenant`] rebuilds the tenant through
//! the same refresh path a `serde`-deserialized environment takes, so a
//! restored tenant continues **bit-identically** on a fresh engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
mod durable;
pub mod engine;
pub mod metrics;
mod shard;
pub mod snapshot;
pub mod tenant;

/// Dense arm identifier, shared with the whole workspace.
pub use netband_core::ArmId;

pub use api::{
    DecideReply, Decision, FeedbackEvent, FlushPolicy, RegisterTenantSpec, ServeError, TenantId,
};
pub use client::ServeClient;
#[doc(hidden)]
pub use engine::ShardWedge;
pub use engine::{stable_tenant_hash, EngineConfig, ServeEngine};
pub use metrics::{
    DecideStage, LatencyHistogram, MetricsReport, ShardMetrics, StageTimings, TenantMetrics,
    TenantTelemetry, TraceEvent, TraceKind, TraceReport, DECIDE_STAGES, LATENCY_BUCKETS,
    STAGE_SAMPLE_EVERY,
};
pub use snapshot::TenantSnapshot;
pub use tenant::{DynCombinatorialPolicy, DynSinglePolicy, TenantSpec};

/// Durable-store configuration and counters, re-exported from
/// `netband-store` so engine embedders need only this crate; see
/// [`EngineConfig::with_store`].
pub use netband_store::{StoreConfig, StoreMetrics};
