//! Tenants: one hosted bandit experiment each.
//!
//! A tenant couples a policy (any [`SinglePlayPolicy`] or
//! [`CombinatorialPolicy`] implementation), a [`NetworkedBandit`] environment,
//! and the serving bookkeeping: a seeded RNG, the PR-2 scratch buffers that
//! make a decide allocation-free, a pending [`FeedbackBatch`] for delayed
//! feedback, regret accounting identical to the batch simulation, and
//! per-tenant metrics. Tenants are plain data owned by exactly one shard
//! thread — all concurrency lives a level up, in the shard command loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

use netband_core::{CombinatorialPolicy, SinglePlayPolicy};
use netband_env::feasible::FeasibleSet;
use netband_env::{DriftSchedule, FeedbackBatch, NetworkedBandit, PullBuffer, StrategyFamily};
use netband_sim::regret::RegretTrace;
use netband_sim::step;
use netband_sim::{CombinatorialScenario, SingleScenario};

use netband_obs::{DecideStage, StageClock, StageTimings};

use crate::api::{DecideReply, FeedbackEvent, FlushPolicy, ServeError, TenantId};
use crate::metrics::{TenantMetrics, TenantTelemetry};
use crate::snapshot::{SnapshotKind, TenantSnapshot};

// The clone-box policy traits moved to `netband_core::policy` (the spec
// crate's `AnyPolicy` needs them below the serve layer); re-exported here so
// existing `netband_serve::tenant::Dyn*Policy` imports keep working.
pub use netband_core::policy::{DynCombinatorialPolicy, DynSinglePolicy};

/// Everything needed to create a tenant on the engine.
///
/// Build with [`TenantSpec::single`] or [`TenantSpec::combinatorial`], then
/// customise with the `with_*` methods.
///
/// # Example
///
/// ```
/// use netband_core::DflSso;
/// use netband_env::{ArmSet, NetworkedBandit};
/// use netband_graph::generators;
/// use netband_serve::{FlushPolicy, TenantSpec};
/// use netband_sim::SingleScenario;
///
/// let graph = generators::path(4);
/// let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
/// let spec = TenantSpec::single(
///     "exp-1",
///     bandit,
///     DflSso::new(graph),
///     SingleScenario::SideObservation,
///     42,
/// )
/// .with_flush(FlushPolicy::batched(32));
/// assert_eq!(spec.id(), "exp-1");
/// ```
pub struct TenantSpec {
    id: TenantId,
    bandit: NetworkedBandit,
    seed: u64,
    flush: FlushPolicy,
    auto_feedback: bool,
    echo_feedback: bool,
    drift: Option<DriftSchedule>,
    /// The scenario document the spec was built from, when it came through
    /// [`TenantSpec::from_scenario`]. Durable engines require it: recovery
    /// rebuilds policy structure from the document and restores only learned
    /// state on top. Hand-constructed specs have no document and therefore
    /// cannot be hosted by a store-enabled engine.
    origin: Option<Box<netband_spec::ScenarioSpec>>,
    kind: SpecKind,
}

enum SpecKind {
    Single {
        policy: Box<dyn DynSinglePolicy>,
        scenario: SingleScenario,
    },
    Combinatorial {
        policy: Box<dyn DynCombinatorialPolicy>,
        family: StrategyFamily,
        scenario: CombinatorialScenario,
    },
}

impl TenantSpec {
    /// A single-play tenant: one arm per decide.
    pub fn single(
        id: impl Into<TenantId>,
        bandit: NetworkedBandit,
        policy: impl SinglePlayPolicy + Clone + 'static,
        scenario: SingleScenario,
        seed: u64,
    ) -> Self {
        TenantSpec {
            id: id.into(),
            bandit,
            seed,
            flush: FlushPolicy::default(),
            auto_feedback: false,
            echo_feedback: true,
            drift: None,
            origin: None,
            kind: SpecKind::Single {
                policy: Box::new(policy),
                scenario,
            },
        }
    }

    /// A combinatorial tenant: one feasible super-arm per decide.
    pub fn combinatorial(
        id: impl Into<TenantId>,
        bandit: NetworkedBandit,
        policy: impl CombinatorialPolicy + Clone + 'static,
        family: StrategyFamily,
        scenario: CombinatorialScenario,
        seed: u64,
    ) -> Self {
        TenantSpec {
            id: id.into(),
            bandit,
            seed,
            flush: FlushPolicy::default(),
            auto_feedback: false,
            echo_feedback: true,
            drift: None,
            origin: None,
            kind: SpecKind::Combinatorial {
                policy: Box::new(policy),
                family,
                scenario,
            },
        }
    }

    /// A single-play tenant from an already-boxed policy (the spec-driven
    /// registration path, where the policy arrives as a
    /// [`netband_spec::AnyPolicy`] variant).
    pub fn single_boxed(
        id: impl Into<TenantId>,
        bandit: NetworkedBandit,
        policy: Box<dyn DynSinglePolicy>,
        scenario: SingleScenario,
        seed: u64,
    ) -> Self {
        TenantSpec {
            id: id.into(),
            bandit,
            seed,
            flush: FlushPolicy::default(),
            auto_feedback: false,
            echo_feedback: true,
            drift: None,
            origin: None,
            kind: SpecKind::Single { policy, scenario },
        }
    }

    /// A combinatorial tenant from an already-boxed policy; see
    /// [`TenantSpec::single_boxed`].
    pub fn combinatorial_boxed(
        id: impl Into<TenantId>,
        bandit: NetworkedBandit,
        policy: Box<dyn DynCombinatorialPolicy>,
        family: StrategyFamily,
        scenario: CombinatorialScenario,
        seed: u64,
    ) -> Self {
        TenantSpec {
            id: id.into(),
            bandit,
            seed,
            flush: FlushPolicy::default(),
            auto_feedback: false,
            echo_feedback: true,
            drift: None,
            origin: None,
            kind: SpecKind::Combinatorial {
                policy,
                family,
                scenario,
            },
        }
    }

    /// Builds a tenant spec from a declarative scenario document: the
    /// workload and policy are built by `netband-spec`, the scenario's side
    /// bonus selects the reward model, the run seed seeds the tenant's RNG,
    /// and the feedback schedule becomes the flush policy. Under
    /// [`FlushPolicy::immediate`] the resulting tenant serves the same
    /// trajectory as `netband_sim::run_spec` of the same document.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spec`] when the scenario fails to validate or build.
    pub fn from_scenario(
        id: impl Into<TenantId>,
        scenario: &netband_spec::ScenarioSpec,
    ) -> Result<Self, ServeError> {
        let mut built = scenario.build()?;
        let flush = FlushPolicy::from(scenario.feedback);
        let drift = built.drift.take();
        let spec = match built.policy {
            netband_spec::AnyPolicy::Single(policy) => TenantSpec::single_boxed(
                id,
                built.bandit,
                policy,
                netband_sim::spec::single_scenario(built.side_bonus),
                built.seed,
            ),
            netband_spec::AnyPolicy::Combinatorial(policy) => {
                let family = built.family.ok_or(ServeError::Spec(
                    netband_spec::SpecError::MissingFamily {
                        policy: "combinatorial",
                    },
                ))?;
                TenantSpec::combinatorial_boxed(
                    id,
                    built.bandit,
                    policy,
                    family,
                    netband_sim::spec::combinatorial_scenario(built.side_bonus),
                    built.seed,
                )
            }
        };
        let mut spec = match drift {
            Some(drift) => spec.with_drift(drift),
            None => spec,
        };
        spec.origin = Some(Box::new(scenario.clone()));
        Ok(spec.with_flush(flush))
    }

    /// The tenant id the spec will be registered under.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Hosts the tenant's world under a deterministic drift schedule: each
    /// decide's arm means are `drift.means_at(base, round)` and regret is
    /// charged against the per-round dynamic optimum. A trivial schedule is
    /// dropped at build time, so the tenant stays on the stationary fast
    /// path.
    pub fn with_drift(mut self, drift: DriftSchedule) -> Self {
        self.drift = Some(drift);
        // A hand-attached schedule is not part of the scenario document the
        // spec may have been built from, so the spec can no longer be rebuilt
        // from that document — drop the origin rather than let a durable
        // recovery silently resurrect the tenant without its drift. (Drift
        // that arrives *inside* the document is attached before the origin is
        // recorded, so spec-driven drifting tenants stay persistable.)
        self.origin = None;
        self
    }

    /// Sets when queued feedback is folded into the policy.
    pub fn with_flush(mut self, flush: FlushPolicy) -> Self {
        self.flush = flush;
        self
    }

    /// When enabled, every decide applies its own feedback immediately,
    /// tenant-side — the degenerate closed-loop simulation path (no feedback
    /// ingestion needed). Defaults to off.
    pub fn with_auto_feedback(mut self, on: bool) -> Self {
        self.auto_feedback = on;
        self
    }

    /// When disabled, decide replies omit the revealed feedback event (useful
    /// with auto-feedback, where nothing needs to travel back). Defaults to
    /// on.
    pub fn with_echo_feedback(mut self, on: bool) -> Self {
        self.echo_feedback = on;
        self
    }
}

/// Internal play-mode state of a tenant.
pub(crate) enum TenantKind {
    Single {
        policy: Box<dyn DynSinglePolicy>,
        scenario: SingleScenario,
        pending: FeedbackBatch<netband_env::SinglePlayFeedback>,
    },
    Combinatorial {
        policy: Box<dyn DynCombinatorialPolicy>,
        family: StrategyFamily,
        scenario: CombinatorialScenario,
        pending: FeedbackBatch<netband_env::CombinatorialFeedback>,
        strategy_scratch: Vec<crate::ArmId>,
    },
}

/// Laps the sampled stage clock, when this decide carries one.
fn lap(stages: &mut Option<(&mut StageClock, &mut StageTimings)>, stage: DecideStage) {
    if let Some((clock, timings)) = stages {
        clock.lap(stage, timings);
    }
}

/// Writes a single-play feedback echo into a reply slot, reusing the warm
/// event (and its observation buffer) when the slot already holds one.
fn set_single_event(slot: &mut Option<FeedbackEvent>, src: &netband_env::SinglePlayFeedback) {
    match slot {
        Some(FeedbackEvent::Single(dst)) => dst.copy_from(src),
        other => *other = Some(FeedbackEvent::Single(src.clone())),
    }
}

/// Writes a combinatorial feedback echo into a reply slot; see
/// [`set_single_event`].
fn set_combinatorial_event(
    slot: &mut Option<FeedbackEvent>,
    src: &netband_env::CombinatorialFeedback,
) {
    match slot {
        Some(FeedbackEvent::Combinatorial(dst)) => dst.copy_from(src),
        other => *other = Some(FeedbackEvent::Combinatorial(src.clone())),
    }
}

/// One hosted experiment, owned by a single shard thread.
pub(crate) struct Tenant {
    pub(crate) id: TenantId,
    pub(crate) bandit: NetworkedBandit,
    pub(crate) kind: TenantKind,
    pub(crate) rng: StdRng,
    pub(crate) buf: PullBuffer,
    /// Rounds served so far; the next decide is round `round + 1` (1-based,
    /// matching the simulation runner's time slots).
    pub(crate) round: u64,
    pub(crate) optimal: f64,
    /// Running sum of per-round dynamic optima (drifting tenants only).
    pub(crate) optimal_sum: f64,
    /// Drift schedule of the hosted world, `None` for stationary tenants
    /// (trivial schedules are dropped in [`Tenant::new`]).
    pub(crate) drift: Option<DriftSchedule>,
    /// Stationary base means the drift schedule perturbs; empty when
    /// stationary (recomputed from the arm set on restore, never serialized).
    pub(crate) base_means: Vec<f64>,
    /// Per-decide scratch for the drifted mean vector.
    pub(crate) drift_means: Vec<f64>,
    pub(crate) total_reward: f64,
    pub(crate) trace: RegretTrace,
    pub(crate) flush: FlushPolicy,
    pub(crate) auto_feedback: bool,
    pub(crate) echo_feedback: bool,
    pub(crate) metrics: TenantMetrics,
    /// The scenario document the tenant was registered from, when it came
    /// through [`TenantSpec::from_scenario`]; required for durable capture
    /// (see `crate::durable`).
    pub(crate) origin: Option<Box<netband_spec::ScenarioSpec>>,
}

impl Tenant {
    /// Builds the tenant, validating the flush policy (a hand-built
    /// `FlushPolicy { max_pending: 0, .. }` is rejected here, before the
    /// tenant reaches a shard).
    pub(crate) fn new(spec: TenantSpec) -> Result<Tenant, ServeError> {
        spec.flush.validate()?;
        let TenantSpec {
            id,
            bandit,
            seed,
            flush,
            auto_feedback,
            echo_feedback,
            drift,
            origin,
            kind,
        } = spec;
        let drift = drift.filter(|d| !d.is_trivial());
        let base_means = if drift.is_some() {
            bandit.means().to_vec()
        } else {
            Vec::new()
        };
        let drift_means = vec![0.0; base_means.len()];
        let (kind, optimal) = match kind {
            SpecKind::Single { policy, scenario } => {
                let optimal = step::single_benchmark(&bandit, scenario);
                (
                    TenantKind::Single {
                        policy,
                        scenario,
                        pending: FeedbackBatch::new(),
                    },
                    optimal,
                )
            }
            SpecKind::Combinatorial {
                policy,
                family,
                scenario,
            } => {
                let optimal = step::combinatorial_benchmark(&bandit, &family, scenario);
                (
                    TenantKind::Combinatorial {
                        policy,
                        family,
                        scenario,
                        pending: FeedbackBatch::new(),
                        strategy_scratch: Vec::new(),
                    },
                    optimal,
                )
            }
        };
        Ok(Tenant {
            id,
            bandit,
            kind,
            rng: StdRng::seed_from_u64(seed),
            buf: PullBuffer::new(),
            round: 0,
            optimal,
            optimal_sum: 0.0,
            drift,
            base_means,
            drift_means,
            total_reward: 0.0,
            trace: RegretTrace::with_capacity(0),
            flush,
            auto_feedback,
            echo_feedback,
            metrics: TenantMetrics::default(),
            origin,
        })
    }

    /// Serves one decision into a caller-owned reply slot. The per-round
    /// arithmetic (pull, reward, regret record, optional immediate update)
    /// matches the batch runner expression for expression, which is what the
    /// golden-trace equivalence suite pins.
    ///
    /// Every field of `reply` is overwritten; a warm slot (same play mode,
    /// echo setting, and similar observation sizes as the previous occupant)
    /// is filled without allocating, which is what makes a steady-state
    /// batched decide allocation-free. On error the slot's contents are
    /// unspecified.
    ///
    /// `stages` is the sampled profiling hook: `Some` on the decides the
    /// shard elected to split into per-stage timings (see
    /// [`crate::metrics::STAGE_SAMPLE_EVERY`]), `None` on the rest. Timing
    /// reads never touch the decide arithmetic or the RNG, so a profiled
    /// decide is bit-identical to an unprofiled one.
    pub(crate) fn decide_into(
        &mut self,
        reply: &mut DecideReply,
        mut stages: Option<(&mut StageClock, &mut StageTimings)>,
    ) -> Result<(), ServeError> {
        if self.flush.flush_before_decide {
            self.flush_pending();
        }
        self.round += 1;
        let t = self.round as usize;
        let echo = self.echo_feedback;
        let auto = self.auto_feedback;
        // Drift is a pure function of the (already advanced) round counter:
        // the drifted means and the per-round optimum consume no randomness,
        // which is what keeps snapshot/restore bit-exact mid-drift.
        let drifting = self.drift.is_some();
        if let Some(schedule) = &self.drift {
            schedule.means_at(&self.base_means, self.round, &mut self.drift_means);
        }
        match &mut self.kind {
            TenantKind::Single {
                policy, scenario, ..
            } => {
                let optimal = if drifting {
                    step::single_benchmark_with(&self.bandit, &self.drift_means, *scenario)
                } else {
                    self.optimal
                };
                let arm = policy.select_arm(t);
                lap(&mut stages, DecideStage::Select);
                let feedback = if drifting {
                    self.buf.pull_single_drifted(
                        &self.bandit,
                        &self.drift_means,
                        arm,
                        &mut self.rng,
                    )
                } else {
                    self.buf.pull_single(&self.bandit, arm, &mut self.rng)
                };
                lap(&mut stages, DecideStage::Pull);
                let (reward, mean) = if drifting {
                    step::score_single_with(&self.bandit, &self.drift_means, *scenario, feedback)
                } else {
                    step::score_single(&self.bandit, *scenario, feedback)
                };
                self.total_reward += reward;
                self.optimal_sum += optimal;
                self.trace.record(optimal - reward, optimal - mean);
                if auto {
                    policy.update(t, feedback);
                }
                lap(&mut stages, DecideStage::Score);
                reply.round = self.round;
                reply.decision.set_arm(arm);
                reply.reward = reward;
                if echo {
                    set_single_event(&mut reply.feedback, feedback);
                } else {
                    reply.feedback = None;
                }
                lap(&mut stages, DecideStage::Reply);
            }
            TenantKind::Combinatorial {
                policy,
                family,
                scenario,
                strategy_scratch,
                ..
            } => {
                let optimal = if drifting {
                    step::combinatorial_benchmark_with(
                        &self.bandit,
                        family,
                        &self.drift_means,
                        *scenario,
                    )
                } else {
                    self.optimal
                };
                policy.select_strategy_into(t, strategy_scratch);
                lap(&mut stages, DecideStage::Select);
                debug_assert!(
                    family.contains(strategy_scratch, self.bandit.graph()),
                    "tenant {} policy {} proposed an infeasible strategy {strategy_scratch:?}",
                    self.id,
                    policy.name()
                );
                let pulled = if drifting {
                    self.buf.pull_strategy_drifted(
                        &self.bandit,
                        &self.drift_means,
                        strategy_scratch,
                        &mut self.rng,
                    )
                } else {
                    self.buf
                        .pull_strategy(&self.bandit, strategy_scratch, &mut self.rng)
                };
                let feedback = match pulled {
                    Ok(fb) => fb,
                    Err(e) => {
                        // The decision never happened; un-advance the round
                        // so the counter keeps matching the trace length.
                        self.round -= 1;
                        return Err(ServeError::Env(e));
                    }
                };
                lap(&mut stages, DecideStage::Pull);
                let (reward, mean) = if drifting {
                    step::score_combinatorial_with(&self.drift_means, *scenario, feedback)
                } else {
                    step::score_combinatorial(&self.bandit, *scenario, feedback)
                };
                self.total_reward += reward;
                self.optimal_sum += optimal;
                self.trace.record(optimal - reward, optimal - mean);
                if auto {
                    policy.update(t, feedback);
                }
                lap(&mut stages, DecideStage::Score);
                reply.round = self.round;
                reply.decision.set_strategy(&feedback.strategy);
                reply.reward = reward;
                if echo {
                    set_combinatorial_event(&mut reply.feedback, feedback);
                } else {
                    reply.feedback = None;
                }
                lap(&mut stages, DecideStage::Reply);
            }
        }
        self.metrics.decides += 1;
        Ok(())
    }

    /// Serves one decision into a freshly allocated reply — the owned-value
    /// form of [`Tenant::decide_into`] used by the per-call engine API.
    pub(crate) fn decide(&mut self) -> Result<DecideReply, ServeError> {
        let mut reply = DecideReply::blank();
        self.decide_into(&mut reply, None)?;
        Ok(reply)
    }

    /// Queues one feedback event (delayed and out-of-order arrival is fine;
    /// each flush applies its batch in round order) and flushes if the batch
    /// is full. Returns the number of events a triggered flush applied
    /// (0 when no flush triggered), so the shard can trace flush points.
    ///
    /// Events quoting a round the tenant never served are rejected. Duplicate
    /// delivery of a *served* round is not detectable here (tracking applied
    /// rounds would put a set lookup on the ingestion hot path); at-most-once
    /// delivery is the transport's responsibility — a retried event double
    /// counts its observations in the estimators.
    pub(crate) fn feedback(&mut self, round: u64, event: FeedbackEvent) -> Result<u64, ServeError> {
        if round == 0 || round > self.round {
            return Err(ServeError::InvalidRound {
                tenant: self.id.clone(),
                round,
                served: self.round,
            });
        }
        match (&mut self.kind, event) {
            (TenantKind::Single { pending, .. }, FeedbackEvent::Single(fb)) => {
                pending.push(round, fb);
            }
            (TenantKind::Combinatorial { pending, .. }, FeedbackEvent::Combinatorial(fb)) => {
                pending.push(round, fb);
            }
            _ => return Err(ServeError::FeedbackKindMismatch(self.id.clone())),
        }
        self.metrics.feedback_events += 1;
        if self.pending_len() >= self.flush.max_pending {
            Ok(self.flush_pending())
        } else {
            Ok(0)
        }
    }

    pub(crate) fn pending_len(&self) -> usize {
        match &self.kind {
            TenantKind::Single { pending, .. } => pending.len(),
            TenantKind::Combinatorial { pending, .. } => pending.len(),
        }
    }

    /// Applies every queued feedback event to the policy, in round order.
    /// Returns how many events were applied (0 when nothing was pending).
    pub(crate) fn flush_pending(&mut self) -> u64 {
        let applied = match &mut self.kind {
            TenantKind::Single {
                policy, pending, ..
            } => {
                let n = pending.len();
                pending.drain_in_order(|round, fb| policy.update(round as usize, fb));
                n
            }
            TenantKind::Combinatorial {
                policy, pending, ..
            } => {
                let n = pending.len();
                pending.drain_in_order(|round, fb| policy.update(round as usize, fb));
                n
            }
        };
        if applied > 0 {
            self.metrics.record_flush(applied as u64);
        }
        applied as u64
    }

    /// Captures a restartable checkpoint. Pending feedback is flushed first so
    /// the snapshot's policy state is complete.
    pub(crate) fn snapshot(&mut self) -> TenantSnapshot {
        self.flush_pending();
        let kind = match &self.kind {
            TenantKind::Single {
                policy, scenario, ..
            } => SnapshotKind::Single {
                policy: policy.clone_box(),
                scenario: *scenario,
            },
            TenantKind::Combinatorial {
                policy,
                family,
                scenario,
                ..
            } => SnapshotKind::Combinatorial {
                policy: policy.clone_box(),
                family: family.clone(),
                scenario: *scenario,
            },
        };
        TenantSnapshot {
            id: self.id.clone(),
            graph: self.bandit.graph().clone(),
            arms: self.bandit.arms().clone(),
            kind,
            rng: self.rng.clone(),
            round: self.round,
            optimal: self.optimal,
            optimal_sum: self.optimal_sum,
            drift: self.drift.clone(),
            total_reward: self.total_reward,
            trace: self.trace.clone(),
            flush: self.flush,
            auto_feedback: self.auto_feedback,
            echo_feedback: self.echo_feedback,
            metrics: self.metrics.clone(),
            origin: self.origin.clone(),
        }
    }

    /// Rebuilds a tenant from a checkpoint. The environment is reconstructed
    /// through [`NetworkedBandit::new`], which rebuilds the derived CSR
    /// snapshot — the same refresh path a `serde`-restored instance takes.
    pub(crate) fn from_snapshot(snapshot: TenantSnapshot) -> Result<Tenant, ServeError> {
        let TenantSnapshot {
            id,
            graph,
            arms,
            kind,
            rng,
            round,
            optimal,
            optimal_sum,
            drift,
            total_reward,
            trace,
            flush,
            auto_feedback,
            echo_feedback,
            metrics,
            origin,
        } = snapshot;
        let bandit = NetworkedBandit::new(graph, arms)?;
        // Base means are derived from the arm set, so they are rebuilt rather
        // than serialized; drift itself is a pure function of the restored
        // round counter, so the drifting world resumes bit-exactly.
        let base_means = if drift.is_some() {
            bandit.means().to_vec()
        } else {
            Vec::new()
        };
        let drift_means = vec![0.0; base_means.len()];
        let kind = match kind {
            SnapshotKind::Single { policy, scenario } => TenantKind::Single {
                policy,
                scenario,
                pending: FeedbackBatch::new(),
            },
            SnapshotKind::Combinatorial {
                policy,
                family,
                scenario,
            } => TenantKind::Combinatorial {
                policy,
                family,
                scenario,
                pending: FeedbackBatch::new(),
                strategy_scratch: Vec::new(),
            },
        };
        Ok(Tenant {
            id,
            bandit,
            kind,
            rng,
            buf: PullBuffer::new(),
            round,
            optimal,
            optimal_sum,
            drift,
            base_means,
            drift_means,
            total_reward,
            trace,
            flush,
            auto_feedback,
            echo_feedback,
            metrics,
            origin,
        })
    }

    /// Name of the hosted policy.
    pub(crate) fn policy_name(&self) -> &'static str {
        match &self.kind {
            TenantKind::Single { policy, .. } => policy.name(),
            TenantKind::Combinatorial { policy, .. } => policy.name(),
        }
    }

    /// Builds the tenant's learning snapshot. Read-only: no flush is
    /// triggered (telemetry must not perturb the tenant's deterministic
    /// trajectory), so the estimator view covers flushed feedback only —
    /// queued events show up in `pending_feedback`, not in the arm stats.
    pub(crate) fn telemetry(&self) -> TenantTelemetry {
        let estimators = match &self.kind {
            TenantKind::Single { policy, .. } => policy.arm_estimators(),
            TenantKind::Combinatorial { policy, .. } => policy.arm_estimators(),
        };
        let (arm_pulls, arm_means) = match estimators {
            Some(est) => (est.counts().to_vec(), est.means().to_vec()),
            None => (Vec::new(), Vec::new()),
        };
        TenantTelemetry {
            id: self.id.clone(),
            policy: self.policy_name().to_string(),
            round: self.round,
            pending_feedback: self.pending_len() as u64,
            total_reward: self.total_reward,
            optimal_reward: self.optimal_sum,
            metrics: self.metrics.clone(),
            arm_pulls,
            arm_means,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Decision;
    use netband_core::{DflCsr, DflSso};
    use netband_env::ArmSet;
    use netband_graph::generators;
    use netband_sim::{run_single, SingleScenario};

    fn fixture_bandit(seed: u64) -> NetworkedBandit {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi(8, 0.4, &mut rng);
        let arms = ArmSet::random_bernoulli(8, &mut rng);
        NetworkedBandit::new(graph, arms).unwrap()
    }

    fn single_spec(id: &str, seed: u64) -> TenantSpec {
        let bandit = fixture_bandit(3);
        let policy = DflSso::new(bandit.graph().clone());
        TenantSpec::single(id, bandit, policy, SingleScenario::SideObservation, seed)
    }

    #[test]
    fn auto_feedback_tenant_matches_run_single_exactly() {
        let bandit = fixture_bandit(3);
        let mut policy = DflSso::new(bandit.graph().clone());
        let expected = run_single(
            &bandit,
            &mut policy,
            SingleScenario::SideObservation,
            200,
            77,
        );

        let mut tenant = Tenant::new(
            single_spec("t", 77)
                .with_auto_feedback(true)
                .with_echo_feedback(false),
        )
        .unwrap();
        for _ in 0..200 {
            tenant.decide().unwrap();
        }
        assert_eq!(tenant.round, 200);
        assert_eq!(
            tenant.total_reward.to_bits(),
            expected.total_reward.to_bits()
        );
        assert_eq!(tenant.trace, expected.trace);
        assert_eq!(tenant.optimal.to_bits(), expected.optimal_mean.to_bits());
    }

    #[test]
    fn echoed_feedback_round_trip_matches_auto_feedback() {
        let mut auto = Tenant::new(single_spec("a", 5).with_auto_feedback(true)).unwrap();
        let mut echo = Tenant::new(single_spec("b", 5)).unwrap();
        for _ in 0..100 {
            auto.decide().unwrap();
            let reply = echo.decide().unwrap();
            echo.feedback(reply.round, reply.feedback.unwrap()).unwrap();
        }
        assert_eq!(auto.trace, echo.trace);
        assert_eq!(auto.metrics.decides, echo.metrics.decides);
        assert_eq!(echo.metrics.feedback_events, 100);
        assert_eq!(echo.metrics.events_applied, 100);
    }

    #[test]
    fn delayed_out_of_order_feedback_is_applied_in_round_order() {
        // Deliver a window of feedback in reverse order; after the flush, the
        // policy state must equal the one produced by in-order application.
        let mut shuffled =
            Tenant::new(single_spec("s", 9).with_flush(FlushPolicy::batched(64))).unwrap();
        let mut ordered =
            Tenant::new(single_spec("o", 9).with_flush(FlushPolicy::batched(64))).unwrap();
        let mut window = Vec::new();
        for _ in 0..10 {
            let reply = shuffled.decide().unwrap();
            window.push((reply.round, reply.feedback.unwrap()));
            let reply = ordered.decide().unwrap();
            ordered
                .feedback(reply.round, reply.feedback.unwrap())
                .unwrap();
        }
        for (round, event) in window.into_iter().rev() {
            shuffled.feedback(round, event).unwrap();
        }
        shuffled.flush_pending();
        ordered.flush_pending();
        // Same decisions were made (same RNG + same flush timing), so the
        // flushed policy states must now agree on the next decision.
        assert_eq!(shuffled.metrics.events_applied, 10);
        assert_eq!(
            shuffled.decide().unwrap().decision,
            ordered.decide().unwrap().decision
        );
    }

    #[test]
    fn feedback_kind_mismatch_is_rejected() {
        let mut tenant = Tenant::new(single_spec("t", 1)).unwrap();
        tenant.decide().unwrap();
        let err = tenant
            .feedback(
                1,
                FeedbackEvent::Combinatorial(netband_env::CombinatorialFeedback::default()),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::FeedbackKindMismatch(_)));
    }

    #[test]
    fn feedback_for_unserved_rounds_is_rejected() {
        let mut tenant = Tenant::new(single_spec("t", 1)).unwrap();
        let reply = tenant.decide().unwrap();
        let event = reply.feedback.unwrap();
        // Round 0 and rounds beyond the last decide were never served.
        for bogus in [0, 2, 99] {
            let err = tenant.feedback(bogus, event.clone()).unwrap_err();
            assert!(
                matches!(err, ServeError::InvalidRound { round, served: 1, .. } if round == bogus),
                "round {bogus}: {err}"
            );
        }
        assert_eq!(tenant.metrics.feedback_events, 0);
        // The served round itself is accepted.
        tenant.feedback(reply.round, event).unwrap();
        assert_eq!(tenant.metrics.feedback_events, 1);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let mut original = Tenant::new(single_spec("t", 13).with_auto_feedback(true)).unwrap();
        for _ in 0..50 {
            original.decide().unwrap();
        }
        let snapshot = original.snapshot();
        assert_eq!(snapshot.round(), 50);
        let mut restored = Tenant::from_snapshot(snapshot).unwrap();
        // The restored tenant and the original continue bit-identically.
        for _ in 0..50 {
            let a = original.decide().unwrap();
            let b = restored.decide().unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(
            original.total_reward.to_bits(),
            restored.total_reward.to_bits()
        );
    }

    #[test]
    fn drifting_tenant_matches_the_drifted_runner_exactly() {
        use netband_env::{ChangePoint, DriftSchedule};
        let drift = DriftSchedule {
            change_points: vec![ChangePoint {
                round: 60,
                rotation: 3,
            }],
            ..DriftSchedule::default()
        };
        let bandit = fixture_bandit(3);
        let mut policy = DflSso::new(bandit.graph().clone());
        let expected = netband_sim::run_single_drifted(
            &bandit,
            &drift,
            &mut policy,
            SingleScenario::SideObservation,
            200,
            77,
        );

        let mut tenant = Tenant::new(
            single_spec("t", 77)
                .with_drift(drift)
                .with_auto_feedback(true)
                .with_echo_feedback(false),
        )
        .unwrap();
        for _ in 0..200 {
            tenant.decide().unwrap();
        }
        let result = tenant.snapshot().run_result();
        assert_eq!(result.trace, expected.trace);
        assert_eq!(
            result.total_reward.to_bits(),
            expected.total_reward.to_bits()
        );
        assert_eq!(
            result.optimal_mean.to_bits(),
            expected.optimal_mean.to_bits()
        );
    }

    #[test]
    fn drifting_tenant_snapshot_restores_across_a_change_point() {
        use netband_env::{ChangePoint, DriftSchedule, GradualDrift};
        let drift = DriftSchedule {
            gradual: Some(GradualDrift {
                amplitude: 0.15,
                period: 40,
            }),
            change_points: vec![ChangePoint {
                round: 50,
                rotation: 2,
            }],
            ..DriftSchedule::default()
        };
        let mut original = Tenant::new(
            single_spec("t", 13)
                .with_drift(drift)
                .with_auto_feedback(true),
        )
        .unwrap();
        // Snapshot strictly before the change point; both continuations must
        // cross it identically.
        for _ in 0..40 {
            original.decide().unwrap();
        }
        let mut restored = Tenant::from_snapshot(original.snapshot()).unwrap();
        for _ in 0..40 {
            let a = original.decide().unwrap();
            let b = restored.decide().unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(
            original.total_reward.to_bits(),
            restored.total_reward.to_bits()
        );
        assert_eq!(
            original.optimal_sum.to_bits(),
            restored.optimal_sum.to_bits()
        );
    }

    #[test]
    fn trivial_drift_schedules_stay_on_the_stationary_path() {
        let mut plain = Tenant::new(single_spec("a", 5).with_auto_feedback(true)).unwrap();
        let mut trivial = Tenant::new(
            single_spec("b", 5)
                .with_drift(netband_env::DriftSchedule::default())
                .with_auto_feedback(true),
        )
        .unwrap();
        assert!(trivial.drift.is_none());
        for _ in 0..50 {
            let a = plain.decide().unwrap();
            let b = trivial.decide().unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(
            plain.snapshot().run_result(),
            trivial.snapshot().run_result()
        );
    }

    #[test]
    fn combinatorial_tenant_decides_feasible_strategies() {
        let bandit = fixture_bandit(11);
        let family = StrategyFamily::at_most_m(8, 3);
        let policy = DflCsr::new(bandit.graph().clone(), family.clone());
        let mut tenant = Tenant::new(
            TenantSpec::combinatorial(
                "c",
                bandit,
                policy,
                family.clone(),
                CombinatorialScenario::SideReward,
                21,
            )
            .with_auto_feedback(true),
        )
        .unwrap();
        for _ in 0..50 {
            let reply = tenant.decide().unwrap();
            match reply.decision {
                Decision::Strategy(s) => assert!(!s.is_empty() && s.len() <= 3),
                Decision::Arm(_) => panic!("combinatorial tenant returned a single arm"),
            }
        }
        assert_eq!(tenant.policy_name(), "DFL-CSR");
    }
}
