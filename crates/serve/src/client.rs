//! The batched client handle: amortised channel round-trips and recycled
//! request/reply buffers.
//!
//! The per-call engine API ([`ServeEngine::decide`](crate::ServeEngine::decide))
//! pays, for every decision, a fresh reply-channel allocation plus two channel
//! hops. A [`ServeClient`] removes both costs from the steady state:
//!
//! * **Per-shard reply pooling** — the client owns one long-lived reply
//!   channel *per shard*; every batch command carries a clone of its target
//!   shard's sender (an `Arc` bump, no allocation) instead of a freshly
//!   constructed `sync_channel`. Because no two shards ever share a reply
//!   channel, shards completing concurrent batches never contend on the
//!   client side, and a mixed fan-out collects each shard's batch from its
//!   own lane.
//! * **Batched commands** — [`ServeClient::decide_many`] serves `n` decisions
//!   over a single command/reply round-trip;
//!   [`ServeClient::decide_many_mixed`] fans a mixed-tenant batch out to
//!   **all** target shards first and only then collects, so the shards serve
//!   their partitions concurrently; [`ServeClient::feedback_many`] ingests a
//!   whole window of feedback with one fire-and-forget command.
//! * **Recycled buffers** — request buffers (including their tenant-id
//!   strings) circulate client → shard → client, and the caller's reply
//!   vector is handed to the shard as the reply buffer, so its warm
//!   [`DecideReply`] slots (decision vectors, echoed feedback buffers) are
//!   refilled in place. A steady-state `decide_many` loop that reuses its
//!   `out` vector allocates nothing on either side of the channel.
//! * **Batch-1 degradation** — a 1-element `decide_many` (and a 1-event
//!   `feedback_many`) routes through the lighter per-call commands
//!   (`Command::Decide` / `Command::Feedback`) over the pooled reply channel:
//!   at batch size 1 the batch buffer round-trip costs more than it saves,
//!   so the batched client degrades to (slightly better than) the per-call
//!   transport instead of underperforming it.
//!
//! Batching changes *transport*, not semantics: a `decide_many(t, n, ..)` is
//! bit-identical to `n` consecutive `decide(t)` calls, a
//! `decide_many_mixed` is bit-identical to the per-tenant `decide_many`
//! calls it replaces, and `feedback_many` applies its events through the
//! same per-event ingestion (including flush thresholds) as per-call
//! feedback. `tests/serve_equivalence.rs` pins this with a randomly-chunked
//! interleaving proptest.
//!
//! # Example
//!
//! ```
//! use netband_core::DflSso;
//! use netband_env::{ArmSet, NetworkedBandit};
//! use netband_graph::generators;
//! use netband_serve::{FlushPolicy, ServeEngine, TenantSpec};
//! use netband_sim::SingleScenario;
//!
//! let engine = ServeEngine::with_shards(1);
//! let graph = generators::path(6);
//! let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(6)).unwrap();
//! let spec = TenantSpec::single("exp-0", bandit, DflSso::new(graph),
//!     SingleScenario::SideObservation, 7)
//!     .with_flush(FlushPolicy::batched(8));
//! engine.create_tenant(spec).unwrap();
//!
//! let mut client = engine.client();
//! let mut replies = Vec::new();
//! client.decide_many("exp-0", 16, &mut replies).unwrap();
//! let feedback: Vec<_> = replies
//!     .iter_mut()
//!     .map(|r| {
//!         let r = r.as_mut().unwrap();
//!         (r.round, r.feedback.take().unwrap())
//!     })
//!     .collect();
//! client.feedback_many("exp-0", feedback).unwrap();
//! engine.drain().unwrap();
//! assert_eq!(engine.metrics().unwrap().total_decides(), 16);
//! engine.shutdown();
//! ```

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::Duration;

use crate::api::{DecideReply, FeedbackEvent, ServeError};
use crate::engine::ServeEngine;
use crate::shard::{Command, DecideBatch, DecideRequest, FeedbackRequest};

/// Upper bound on recycled feedback buffers parked in the client's return
/// channel; overflow buffers are dropped by the shard instead of blocking it.
const FEEDBACK_POOL_CAPACITY: usize = 8;

/// How often the reply wait wakes up to check that the target shard is still
/// alive. Batches complete in microseconds to milliseconds; the poll only
/// matters if a shard dies mid-batch, so a coarse interval costs nothing.
const REPLY_POLL: Duration = Duration::from_millis(100);

/// A client handle over a [`ServeEngine`]: the batched, buffer-recycling
/// counterpart of the engine's per-call methods. Cheap to create (one reply
/// lane per shard plus two pooled channels); intended usage is one client per
/// driving thread, living for the whole session. See the
/// [module docs](self) for the full protocol.
pub struct ServeClient<'e> {
    engine: &'e ServeEngine,
    /// One long-lived batch reply lane **per shard**; a `DecideMany` addressed
    /// to shard `s` carries a clone of `batch_reply[s].0`, and its batch is
    /// collected from `batch_reply[s].1`. Dedicated lanes keep concurrently
    /// completing shards from contending on a shared reply channel and let a
    /// mixed fan-out collect each shard independently.
    batch_reply: Vec<(SyncSender<DecideBatch>, Receiver<DecideBatch>)>,
    /// Pooled reply channel for the batch-1 fast path (`Command::Decide`).
    single_reply_tx: SyncSender<Result<DecideReply, ServeError>>,
    single_reply_rx: Receiver<Result<DecideReply, ServeError>>,
    /// Return path for drained feedback request buffers.
    recycle_tx: SyncSender<Vec<FeedbackRequest>>,
    recycle_rx: Receiver<Vec<FeedbackRequest>>,
    /// Recycled decide request buffers (tenant-id strings stay warm).
    request_pool: Vec<Vec<DecideRequest>>,
    /// Recycled feedback request buffers reclaimed from `recycle_rx`.
    feedback_pool: Vec<Vec<FeedbackRequest>>,
    /// Reply buffer backing [`ServeClient::decide`].
    single_scratch: Vec<Result<DecideReply, ServeError>>,
    /// Per-shard request assembly buffers for the mixed fan-out (entry strings
    /// stay warm across calls).
    shard_requests: Vec<Vec<DecideRequest>>,
    /// Per-shard reply buffers for the mixed fan-out (warm `DecideReply`
    /// slots circulate between these and the caller's `out` via swaps).
    shard_replies: Vec<Vec<Result<DecideReply, ServeError>>>,
    /// Per-shard entry/slot cursors, reused by partition and reassembly.
    shard_cursors: Vec<usize>,
    /// Shards addressed by the current mixed batch, in first-touch order.
    touched: Vec<usize>,
    /// `(shard, count)` per original mixed request, for in-order reassembly.
    plan: Vec<(usize, usize)>,
}

impl<'e> ServeClient<'e> {
    pub(crate) fn new(engine: &'e ServeEngine) -> Self {
        let shards = engine.num_shards().max(1);
        // Capacity 1 per lane: a client keeps at most one batch in flight per
        // shard, so the shard's reply send never blocks.
        let batch_reply = (0..shards).map(|_| sync_channel(1)).collect();
        let (single_reply_tx, single_reply_rx) = sync_channel(1);
        let (recycle_tx, recycle_rx) = sync_channel(FEEDBACK_POOL_CAPACITY);
        ServeClient {
            engine,
            batch_reply,
            single_reply_tx,
            single_reply_rx,
            recycle_tx,
            recycle_rx,
            request_pool: Vec::new(),
            feedback_pool: Vec::new(),
            single_scratch: Vec::new(),
            shard_requests: (0..shards).map(|_| Vec::new()).collect(),
            shard_replies: (0..shards).map(|_| Vec::new()).collect(),
            shard_cursors: vec![0; shards],
            touched: Vec::new(),
            plan: Vec::new(),
        }
    }

    /// Serves `n` consecutive decisions for `tenant` over one channel
    /// round-trip, writing the results into `out` in round order.
    ///
    /// `out` is cleared of stale *meaning* but not of storage: its existing
    /// entries are handed to the shard as warm reply slots and refilled in
    /// place, so a loop that keeps reusing the same vector performs no
    /// allocation once sizes have stabilised. The produced decisions, rewards,
    /// regret accounting, and tenant metrics are bit-identical to `n`
    /// consecutive [`ServeEngine::decide`] calls.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineDown`] when the engine (or the tenant's shard) has
    /// shut down; per-decision failures (e.g.
    /// [`ServeError::UnknownTenant`]) land in the corresponding `out` entry.
    pub fn decide_many(
        &mut self,
        tenant: &str,
        n: usize,
        out: &mut Vec<Result<DecideReply, ServeError>>,
    ) -> Result<(), ServeError> {
        self.decide_many_inner(tenant, n, out, true)
    }

    /// Non-blocking admission variant of [`ServeClient::decide_many`]: when
    /// the tenant's shard queue is full the batch is **not** enqueued and
    /// [`ServeError::Overloaded`] is returned immediately instead of blocking
    /// the caller. The request and reply buffers (including `out`'s warm
    /// slots) are recovered into the client's pools, so a rejected batch
    /// costs no allocation; `out`'s *contents* are unspecified after an
    /// error. This is the admission-control path of the network front end —
    /// an overloaded shard turns into an overload frame on the wire rather
    /// than an unboundedly blocked connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the shard queue is full,
    /// [`ServeError::EngineDown`] after shutdown; per-decision failures land
    /// in the corresponding `out` entry exactly like
    /// [`ServeClient::decide_many`].
    pub fn try_decide_many(
        &mut self,
        tenant: &str,
        n: usize,
        out: &mut Vec<Result<DecideReply, ServeError>>,
    ) -> Result<(), ServeError> {
        self.decide_many_inner(tenant, n, out, false)
    }

    fn decide_many_inner(
        &mut self,
        tenant: &str,
        n: usize,
        out: &mut Vec<Result<DecideReply, ServeError>>,
        block: bool,
    ) -> Result<(), ServeError> {
        if n == 0 {
            out.clear();
            return Ok(());
        }
        if n == 1 {
            // At batch size 1 the buffer round-trip costs more than it
            // amortises; degrade to the per-call command over the pooled
            // single-reply channel.
            return self.decide_one_into(tenant, out, block);
        }
        let mut requests = self.request_pool.pop().unwrap_or_default();
        write_decide_requests(&mut requests, tenant, n);
        let replies = std::mem::take(out);
        let shard = self.engine.shard_of(tenant);
        let command = Command::DecideMany {
            tag: shard as u64,
            requests,
            replies,
            reply: self.batch_reply[shard].0.clone(),
        };
        if block {
            self.engine.send_to_shard(shard, command)?;
        } else if let Err(bounced) = self.engine.try_send_to_shard(shard, command) {
            let (command, error) = match bounced {
                TrySendError::Full(c) => (c, ServeError::Overloaded),
                TrySendError::Disconnected(c) => (c, ServeError::EngineDown),
            };
            // Recover the buffers parked in the bounced command.
            if let Command::DecideMany {
                requests, replies, ..
            } = command
            {
                self.request_pool.push(requests);
                *out = replies;
            }
            return Err(error);
        }
        let batch = self.wait_reply(shard)?;
        self.request_pool.push(batch.requests);
        *out = batch.replies;
        Ok(())
    }

    /// The batch-1 fast path: one `Command::Decide` over the pooled
    /// single-reply channel — the per-call transport minus its fresh
    /// reply-channel allocation. Semantics (results, metrics, WAL traffic)
    /// are identical to a 1-element `DecideMany`.
    fn decide_one_into(
        &mut self,
        tenant: &str,
        out: &mut Vec<Result<DecideReply, ServeError>>,
        block: bool,
    ) -> Result<(), ServeError> {
        let shard = self.engine.shard_of(tenant);
        let command = Command::Decide {
            tenant: tenant.to_owned(),
            reply: self.single_reply_tx.clone(),
        };
        if block {
            self.engine.send_to_shard(shard, command)?;
        } else if let Err(bounced) = self.engine.try_send_to_shard(shard, command) {
            return Err(match bounced {
                TrySendError::Full(_) => ServeError::Overloaded,
                TrySendError::Disconnected(_) => ServeError::EngineDown,
            });
        }
        // Same liveness-polling wait as the batch lanes: the pooled channel
        // outlives the command, so a dead shard must not hang a plain `recv`.
        let result = loop {
            match self.single_reply_rx.recv_timeout(REPLY_POLL) {
                Ok(result) => break result,
                Err(RecvTimeoutError::Timeout) => {
                    if self.engine.shard_is_down(shard) {
                        if let Ok(result) = self.single_reply_rx.try_recv() {
                            break result;
                        }
                        return Err(ServeError::EngineDown);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ServeError::EngineDown),
            }
        };
        out.clear();
        out.push(result);
        Ok(())
    }

    /// Serves a mixed-tenant batch — `(tenant, count)` pairs in caller order —
    /// by partitioning it across the owning shards, sending **all** per-shard
    /// `DecideMany` commands before collecting any reply, and reassembling
    /// the replies into `out` in the original request order. The target
    /// shards therefore serve their partitions concurrently instead of
    /// shard-at-a-time; results are bit-identical to issuing one
    /// [`ServeClient::decide_many`] per `(tenant, count)` pair in order
    /// (tenants are shard-pinned, so cross-shard completion order cannot
    /// affect any tenant's round sequence).
    ///
    /// Buffer discipline matches `decide_many`: per-shard request/reply
    /// buffers live in the client and recycle across calls, and `out`'s warm
    /// slots are swapped (not cloned) with the shard buffers, so a
    /// steady-state mixed loop allocates nothing. Zero-count pairs are
    /// skipped; an empty batch clears `out`.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineDown`] when the engine or any addressed shard has
    /// shut down (outstanding replies from the other shards are still
    /// collected so the client stays usable); per-decision failures land in
    /// the corresponding `out` entry. `out`'s contents are unspecified after
    /// an error.
    pub fn decide_many_mixed<'a, I>(
        &mut self,
        requests: I,
        out: &mut Vec<Result<DecideReply, ServeError>>,
    ) -> Result<(), ServeError>
    where
        I: IntoIterator<Item = (&'a str, usize)>,
    {
        self.plan.clear();
        self.touched.clear();
        for cursor in self.shard_cursors.iter_mut() {
            *cursor = 0;
        }
        let mut total = 0usize;
        for (tenant, n) in requests {
            if n == 0 {
                continue;
            }
            let shard = self.engine.shard_of(tenant);
            if self.shard_cursors[shard] == 0 {
                self.touched.push(shard);
            }
            append_decide_requests(
                &mut self.shard_requests[shard],
                &mut self.shard_cursors[shard],
                tenant,
                n,
            );
            self.plan.push((shard, n));
            total += n;
        }
        if total == 0 {
            out.clear();
            return Ok(());
        }
        out.resize_with(total, || Err(ServeError::EngineDown));

        // Fan-out: every shard's command goes on the wire before any reply is
        // collected, so the shards work their partitions in parallel.
        let mut sent = 0usize;
        let mut failure: Option<ServeError> = None;
        for &shard in &self.touched {
            let mut requests = std::mem::take(&mut self.shard_requests[shard]);
            requests.truncate(self.shard_cursors[shard]);
            let replies = std::mem::take(&mut self.shard_replies[shard]);
            let command = Command::DecideMany {
                tag: shard as u64,
                requests,
                replies,
                reply: self.batch_reply[shard].0.clone(),
            };
            if let Err(e) = self.engine.send_to_shard(shard, command) {
                failure = Some(e);
                break;
            }
            sent += 1;
        }
        // Collect every in-flight batch even after a failure, so the
        // per-shard reply lanes are clean for the next call.
        for idx in 0..sent {
            let shard = self.touched[idx];
            match self.wait_reply(shard) {
                Ok(batch) => {
                    self.shard_requests[shard] = batch.requests;
                    self.shard_replies[shard] = batch.replies;
                }
                Err(e) => {
                    failure.get_or_insert(e);
                }
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }

        // Reassemble in original request order. Swapping (rather than moving)
        // keeps both `out`'s and the shard buffers' slots warm.
        for cursor in self.shard_cursors.iter_mut() {
            *cursor = 0;
        }
        let mut i = 0usize;
        for &(shard, n) in &self.plan {
            let cursor = self.shard_cursors[shard];
            for slot in 0..n {
                std::mem::swap(&mut out[i], &mut self.shard_replies[shard][cursor + slot]);
                i += 1;
            }
            self.shard_cursors[shard] = cursor + n;
        }
        Ok(())
    }

    /// Serves one decision through the batched transport (a 1-element
    /// [`ServeClient::decide_many`] on a client-owned scratch buffer). Same
    /// results as [`ServeEngine::decide`], minus the per-call reply-channel
    /// construction.
    pub fn decide(&mut self, tenant: &str) -> Result<DecideReply, ServeError> {
        let mut out = std::mem::take(&mut self.single_scratch);
        let sent = self.decide_many(tenant, 1, &mut out);
        let reply = match sent {
            Ok(()) => out.pop().expect("one requested decision yields one slot"),
            Err(e) => Err(e),
        };
        self.single_scratch = out;
        reply
    }

    /// Ingests a window of feedback events for `tenant` with one
    /// fire-and-forget command, returning how many events were enqueued.
    ///
    /// Events are applied by the shard strictly in the order given, with the
    /// same per-event semantics (round validation, flush thresholds, rejected
    /// accounting) as per-call [`ServeEngine::feedback`]. The request buffer
    /// — including its tenant-id strings — is recycled back to this client
    /// once the shard has drained it.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineDown`] after shutdown. Per-event failures (unknown
    /// tenant, kind mismatch, invalid round) are counted in
    /// [`crate::ShardMetrics::rejected`], exactly like per-call feedback.
    pub fn feedback_many(
        &mut self,
        tenant: &str,
        events: impl IntoIterator<Item = (u64, FeedbackEvent)>,
    ) -> Result<usize, ServeError> {
        self.feedback_many_inner(tenant, events, true)
    }

    /// Non-blocking admission variant of [`ServeClient::feedback_many`]: a
    /// full shard queue returns [`ServeError::Overloaded`] immediately (the
    /// window is **not** enqueued — the events are dropped and the request
    /// buffer is recovered into the client's pool) instead of blocking.
    /// Callers that must not lose feedback should retry delivery after
    /// backoff; the network front end surfaces the rejection as an overload
    /// frame so the *remote* client owns that retry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the shard queue is full,
    /// [`ServeError::EngineDown`] after shutdown.
    pub fn try_feedback_many(
        &mut self,
        tenant: &str,
        events: impl IntoIterator<Item = (u64, FeedbackEvent)>,
    ) -> Result<usize, ServeError> {
        self.feedback_many_inner(tenant, events, false)
    }

    fn feedback_many_inner(
        &mut self,
        tenant: &str,
        events: impl IntoIterator<Item = (u64, FeedbackEvent)>,
        block: bool,
    ) -> Result<usize, ServeError> {
        self.reclaim_feedback_buffers();
        let mut buffer = self.feedback_pool.pop().unwrap_or_default();
        let mut used = 0usize;
        for (round, event) in events {
            if used < buffer.len() {
                let entry = &mut buffer[used];
                entry.tenant.clear();
                entry.tenant.push_str(tenant);
                entry.round = round;
                entry.event = event;
            } else {
                buffer.push(FeedbackRequest {
                    tenant: tenant.to_owned(),
                    round,
                    event,
                });
            }
            used += 1;
        }
        buffer.truncate(used);
        if used == 0 {
            self.feedback_pool.push(buffer);
            return Ok(0);
        }
        if used == 1 {
            // Batch-1 fast path: a single fire-and-forget `Command::Feedback`
            // skips the buffer recycle round-trip entirely.
            let entry = buffer.pop().expect("one used entry");
            return self.feedback_one(buffer, entry, block);
        }
        let shard = self.engine.shard_of(tenant);
        let command = Command::FeedbackMany {
            events: buffer,
            recycle: self.recycle_tx.clone(),
        };
        if block {
            self.engine.send_to_shard(shard, command)?;
        } else if let Err(bounced) = self.engine.try_send_to_shard(shard, command) {
            let (command, error) = match bounced {
                TrySendError::Full(c) => (c, ServeError::Overloaded),
                TrySendError::Disconnected(c) => (c, ServeError::EngineDown),
            };
            // Recover the request buffer parked in the bounced command.
            if let Command::FeedbackMany { events, .. } = command {
                self.feedback_pool.push(events);
            }
            return Err(error);
        }
        Ok(used)
    }

    /// Sends one feedback event as a per-call `Command::Feedback` (same
    /// per-event semantics as a 1-element window, no recycle round-trip).
    /// `buffer` is the already-emptied pool buffer the event was staged in;
    /// it returns to the pool on every path, and a bounced event's tenant
    /// string is recovered into it first.
    fn feedback_one(
        &mut self,
        mut buffer: Vec<FeedbackRequest>,
        entry: FeedbackRequest,
        block: bool,
    ) -> Result<usize, ServeError> {
        let shard = self.engine.shard_of(&entry.tenant);
        let command = Command::Feedback {
            tenant: entry.tenant,
            round: entry.round,
            event: entry.event,
        };
        if block {
            let sent = self.engine.send_to_shard(shard, command);
            self.feedback_pool.push(buffer);
            sent?;
        } else if let Err(bounced) = self.engine.try_send_to_shard(shard, command) {
            let (command, error) = match bounced {
                TrySendError::Full(c) => (c, ServeError::Overloaded),
                TrySendError::Disconnected(c) => (c, ServeError::EngineDown),
            };
            if let Command::Feedback {
                tenant,
                round,
                event,
            } = command
            {
                buffer.push(FeedbackRequest {
                    tenant,
                    round,
                    event,
                });
            }
            self.feedback_pool.push(buffer);
            return Err(error);
        } else {
            self.feedback_pool.push(buffer);
        }
        Ok(1)
    }

    /// Moves buffers the shards have finished with back into the local pool.
    fn reclaim_feedback_buffers(&mut self) {
        while let Ok(buffer) = self.recycle_rx.try_recv() {
            self.feedback_pool.push(buffer);
        }
    }

    /// Waits for the in-flight batch on `shard`'s dedicated reply lane. The
    /// lane outlives any single command, so a shard that died *without*
    /// replying would leave a plain `recv` hanging; the wait therefore polls
    /// shard liveness at a coarse interval and converts a dead shard into
    /// [`ServeError::EngineDown`] (after draining a reply the shard may have
    /// managed to send first).
    fn wait_reply(&self, shard: usize) -> Result<DecideBatch, ServeError> {
        let rx = &self.batch_reply[shard].1;
        loop {
            match rx.recv_timeout(REPLY_POLL) {
                Ok(batch) => {
                    // At most one batch in flight per shard per client, so the
                    // echoed tag can only be the lane's own shard.
                    debug_assert_eq!(batch.tag, shard as u64);
                    return Ok(batch);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.engine.shard_is_down(shard) {
                        if let Ok(batch) = rx.try_recv() {
                            return Ok(batch);
                        }
                        return Err(ServeError::EngineDown);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ServeError::EngineDown),
            }
        }
    }
}

/// Appends a `(tenant, n)` request to a recycled buffer at `*entries`,
/// reusing entry strings in place and advancing the cursor. `n` is split
/// across entries only when it exceeds the `u32` count width of a single
/// request.
fn append_decide_requests(
    requests: &mut Vec<DecideRequest>,
    entries: &mut usize,
    tenant: &str,
    mut n: usize,
) {
    while n > 0 {
        let count = u32::try_from(n).unwrap_or(u32::MAX);
        if *entries < requests.len() {
            let entry = &mut requests[*entries];
            entry.tenant.clear();
            entry.tenant.push_str(tenant);
            entry.count = count;
        } else {
            requests.push(DecideRequest {
                tenant: tenant.to_owned(),
                count,
            });
        }
        *entries += 1;
        n -= count as usize;
    }
}

/// Writes a single `(tenant, n)` request list into a recycled buffer,
/// truncating any stale tail entries.
fn write_decide_requests(requests: &mut Vec<DecideRequest>, tenant: &str, n: usize) {
    let mut entries = 0usize;
    append_decide_requests(requests, &mut entries, tenant, n);
    requests.truncate(entries);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlushPolicy, TenantSpec};
    use netband_core::DflSso;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use netband_sim::SingleScenario;

    fn engine_with_tenant(id: &str, batch: usize) -> ServeEngine {
        let engine = ServeEngine::with_shards(2);
        let graph = generators::path(5);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
        let spec = TenantSpec::single(
            id,
            bandit,
            DflSso::new(graph),
            SingleScenario::SideObservation,
            11,
        )
        .with_flush(FlushPolicy::batched(batch));
        engine.create_tenant(spec).unwrap();
        engine
    }

    #[test]
    fn batched_decides_match_per_call_decides() {
        let a = engine_with_tenant("t", 4);
        let b = engine_with_tenant("t", 4);
        let mut client = a.client();
        let mut out = Vec::new();
        client.decide_many("t", 10, &mut out).unwrap();
        assert_eq!(out.len(), 10);
        for (i, reply) in out.iter().enumerate() {
            let expected = b.decide("t").unwrap();
            assert_eq!(reply.as_ref().unwrap(), &expected, "round {}", i + 1);
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn reply_buffers_are_recycled_in_place() {
        let engine = engine_with_tenant("t", 1);
        let mut client = engine.client();
        let mut out = Vec::new();
        client.decide_many("t", 8, &mut out).unwrap();
        let first_round: Vec<u64> = out.iter().map(|r| r.as_ref().unwrap().round).collect();
        assert_eq!(first_round, (1..=8).collect::<Vec<_>>());
        // Reuse the same vector: slots are refilled, rounds advance.
        client.decide_many("t", 8, &mut out).unwrap();
        let second_round: Vec<u64> = out.iter().map(|r| r.as_ref().unwrap().round).collect();
        assert_eq!(second_round, (9..=16).collect::<Vec<_>>());
        // A shorter batch truncates the buffer.
        client.decide_many("t", 3, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        engine.shutdown();
    }

    #[test]
    fn unknown_tenants_error_per_slot() {
        let engine = engine_with_tenant("t", 1);
        let mut client = engine.client();
        let mut out = Vec::new();
        client.decide_many("ghost", 3, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        for slot in &out {
            assert_eq!(
                slot.as_ref().unwrap_err(),
                &ServeError::UnknownTenant("ghost".into())
            );
        }
        // Slots recover to Ok when the next batch targets a real tenant.
        client.decide_many("t", 3, &mut out).unwrap();
        assert!(out.iter().all(Result::is_ok));
        assert!(matches!(
            client.decide("ghost"),
            Err(ServeError::UnknownTenant(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn feedback_many_applies_like_per_call_feedback() {
        let batched = engine_with_tenant("t", 3);
        let per_call = engine_with_tenant("t", 3);
        let mut client = batched.client();
        let mut out = Vec::new();
        client.decide_many("t", 9, &mut out).unwrap();
        let window: Vec<(u64, FeedbackEvent)> = out
            .iter_mut()
            .map(|r| {
                let r = r.as_mut().unwrap();
                (r.round, r.feedback.take().unwrap())
            })
            .collect();
        assert_eq!(client.feedback_many("t", window.clone()).unwrap(), 9);
        for _ in 0..9 {
            let reply = per_call.decide("t").unwrap();
            per_call
                .feedback("t", reply.round, reply.feedback.unwrap())
                .unwrap();
        }
        batched.drain().unwrap();
        per_call.drain().unwrap();
        let (m_batched, m_per_call) = (
            batched.metrics().unwrap().tenants,
            per_call.metrics().unwrap().tenants,
        );
        assert_eq!(m_batched, m_per_call);
        // Empty windows are a no-op.
        assert_eq!(client.feedback_many("t", Vec::new()).unwrap(), 0);
        batched.shutdown();
        per_call.shutdown();
    }

    #[test]
    fn zero_decides_is_a_no_op_that_clears_out() {
        let engine = engine_with_tenant("t", 1);
        let mut client = engine.client();
        let mut out = Vec::new();
        client.decide_many("t", 2, &mut out).unwrap();
        client.decide_many("t", 0, &mut out).unwrap();
        assert!(out.is_empty());
        engine.shutdown();
    }

    /// Deterministic overload: wedge the single shard on a rendezvous `Drain`
    /// reply, fill its capacity-1 queue, and the `try_*` paths must return
    /// [`ServeError::Overloaded`] immediately instead of blocking — with all
    /// request/reply buffers recovered, so the client works normally once the
    /// shard is released.
    #[test]
    fn try_paths_reject_with_overloaded_when_the_shard_queue_is_full() {
        let engine = ServeEngine::start(crate::EngineConfig::new(1).with_queue_capacity(1));
        let graph = generators::path(5);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
        let spec = TenantSpec::single(
            "t",
            bandit,
            DflSso::new(graph),
            SingleScenario::SideObservation,
            11,
        );
        engine.create_tenant(spec).unwrap();

        // Wedge the shard: it dequeues this drain and blocks sending the ack
        // into a rendezvous channel nobody is reading yet.
        let (wedge_tx, wedge_rx) = std::sync::mpsc::sync_channel::<()>(0);
        engine
            .send_to_shard(0, Command::Drain { reply: wedge_tx })
            .unwrap();
        // Fill the capacity-1 queue behind the wedged command. The blocking
        // send also guarantees the wedge drain has been dequeued.
        let (barrier_tx, barrier_rx) = std::sync::mpsc::sync_channel::<()>(1);
        engine
            .send_to_shard(0, Command::Drain { reply: barrier_tx })
            .unwrap();

        let mut client = engine.client();
        let mut out = Vec::new();
        assert_eq!(
            client.try_decide_many("t", 4, &mut out),
            Err(ServeError::Overloaded)
        );
        let event = (3u64, FeedbackEvent::default());
        assert_eq!(
            client.try_feedback_many("t", [event]),
            Err(ServeError::Overloaded)
        );
        // The bounced buffers were recovered into the pools, not leaked into
        // the queue: nothing reached the shard.
        assert_eq!(client.request_pool.len(), 1);
        assert_eq!(client.feedback_pool.len(), 1);

        // Release the shard; the try paths now succeed and the recovered
        // buffers are reused.
        wedge_rx.recv().unwrap();
        barrier_rx.recv().unwrap();
        client.try_decide_many("t", 4, &mut out).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(Result::is_ok));
        engine.drain().unwrap();
        let report = engine.metrics().unwrap();
        assert_eq!(report.total_decides(), 4);
        // The rejected feedback window was never enqueued.
        assert_eq!(report.shards[0].rejected, 0);
        engine.shutdown();
    }

    #[test]
    fn batch_1_fast_path_matches_per_call_decide_and_feedback() {
        let fast = engine_with_tenant("t", 3);
        let per_call = engine_with_tenant("t", 3);
        let mut client = fast.client();
        let mut out = Vec::new();
        for _ in 0..9 {
            // n == 1 routes through `Command::Decide` / `Command::Feedback`.
            client.decide_many("t", 1, &mut out).unwrap();
            assert_eq!(out.len(), 1);
            let mine = out[0].as_mut().unwrap();
            let theirs = per_call.decide("t").unwrap();
            assert_eq!(&*mine, &theirs);
            let event = mine.feedback.take().unwrap();
            let round = mine.round;
            assert_eq!(client.feedback_many("t", [(round, event)]).unwrap(), 1);
            per_call
                .feedback("t", theirs.round, theirs.feedback.unwrap())
                .unwrap();
        }
        fast.drain().unwrap();
        per_call.drain().unwrap();
        // Same command traffic on both sides: metrics agree exactly.
        let (m_fast, m_per_call) = (fast.metrics().unwrap(), per_call.metrics().unwrap());
        assert_eq!(m_fast.tenants, m_per_call.tenants);
        assert_eq!(m_fast.total_decides(), m_per_call.total_decides());
        fast.shutdown();
        per_call.shutdown();
    }

    fn engine_with_tenants(ids: &[&str], shards: usize) -> ServeEngine {
        let engine = ServeEngine::with_shards(shards);
        for (i, id) in ids.iter().enumerate() {
            let graph = generators::path(5);
            let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
            let spec = TenantSpec::single(
                *id,
                bandit,
                DflSso::new(graph),
                SingleScenario::SideObservation,
                11 + i as u64,
            )
            .with_flush(FlushPolicy::batched(4));
            engine.create_tenant(spec).unwrap();
        }
        engine
    }

    #[test]
    fn mixed_batches_match_sequential_per_tenant_batches() {
        let ids = ["t0", "t1", "t2", "t3"];
        let mixed = engine_with_tenants(&ids, 3);
        let sequential = engine_with_tenants(&ids, 3);
        // Repeated tenants, a zero-count entry, an unknown tenant, and an
        // order that interleaves shards.
        let requests: &[(&str, usize)] = &[
            ("t2", 3),
            ("t0", 2),
            ("t2", 1),
            ("t1", 0),
            ("ghost", 2),
            ("t3", 4),
            ("t0", 1),
        ];
        let mut client = mixed.client();
        let mut out = Vec::new();
        client
            .decide_many_mixed(requests.iter().copied(), &mut out)
            .unwrap();

        let mut expected = Vec::new();
        let mut seq_client = sequential.client();
        let mut scratch = Vec::new();
        for &(tenant, n) in requests {
            seq_client.decide_many(tenant, n, &mut scratch).unwrap();
            expected.append(&mut scratch);
        }
        assert_eq!(out.len(), expected.len());
        for (i, (got, want)) in out.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "slot {i}");
        }
        // Steady state: a second mixed batch reuses the per-shard buffers and
        // still reassembles in caller order.
        client
            .decide_many_mixed(requests.iter().copied(), &mut out)
            .unwrap();
        for &(tenant, n) in requests {
            seq_client.decide_many(tenant, n, &mut scratch).unwrap();
            expected.append(&mut scratch);
        }
        for (i, (got, want)) in out.iter().zip(&expected[13..]).enumerate() {
            assert_eq!(got, want, "second batch slot {i}");
        }
        mixed.drain().unwrap();
        sequential.drain().unwrap();
        assert_eq!(
            mixed.metrics().unwrap().tenants,
            sequential.metrics().unwrap().tenants
        );
        mixed.shutdown();
        sequential.shutdown();
    }

    #[test]
    fn empty_mixed_batch_clears_out_and_is_a_no_op() {
        let engine = engine_with_tenant("t", 1);
        let mut client = engine.client();
        let mut out = Vec::new();
        client.decide_many("t", 2, &mut out).unwrap();
        client.decide_many_mixed([("t", 0usize)], &mut out).unwrap();
        assert!(out.is_empty());
        client
            .decide_many_mixed(std::iter::empty::<(&str, usize)>(), &mut out)
            .unwrap();
        assert!(out.is_empty());
        engine.shutdown();
    }

    #[test]
    fn request_writer_reuses_and_truncates_entries() {
        let mut requests = Vec::new();
        write_decide_requests(&mut requests, "alpha", 5);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].tenant, "alpha");
        assert_eq!(requests[0].count, 5);
        write_decide_requests(&mut requests, "be", 2);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].tenant, "be");
        assert_eq!(requests[0].count, 2);
    }
}
