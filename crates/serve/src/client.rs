//! The batched client handle: amortised channel round-trips and recycled
//! request/reply buffers.
//!
//! The per-call engine API ([`ServeEngine::decide`](crate::ServeEngine::decide))
//! pays, for every decision, a fresh reply-channel allocation plus two channel
//! hops. A [`ServeClient`] removes both costs from the steady state:
//!
//! * **Pooled reply channels** — the client owns one long-lived reply channel;
//!   every batch command carries a clone of its sender (an `Arc` bump, no
//!   allocation) instead of a freshly constructed `sync_channel`.
//! * **Batched commands** — [`ServeClient::decide_many`] serves `n` decisions
//!   over a single command/reply round-trip; [`ServeClient::feedback_many`]
//!   ingests a whole window of feedback with one fire-and-forget command.
//! * **Recycled buffers** — request buffers (including their tenant-id
//!   strings) circulate client → shard → client, and the caller's reply
//!   vector is handed to the shard as the reply buffer, so its warm
//!   [`DecideReply`] slots (decision vectors, echoed feedback buffers) are
//!   refilled in place. A steady-state `decide_many` loop that reuses its
//!   `out` vector allocates nothing on either side of the channel.
//!
//! Batching changes *transport*, not semantics: a `decide_many(t, n, ..)` is
//! bit-identical to `n` consecutive `decide(t)` calls, and `feedback_many`
//! applies its events through the same per-event ingestion (including flush
//! thresholds) as per-call feedback. `tests/serve_equivalence.rs` pins this
//! with a randomly-chunked interleaving proptest.
//!
//! # Example
//!
//! ```
//! use netband_core::DflSso;
//! use netband_env::{ArmSet, NetworkedBandit};
//! use netband_graph::generators;
//! use netband_serve::{FlushPolicy, ServeEngine, TenantSpec};
//! use netband_sim::SingleScenario;
//!
//! let engine = ServeEngine::with_shards(1);
//! let graph = generators::path(6);
//! let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(6)).unwrap();
//! let spec = TenantSpec::single("exp-0", bandit, DflSso::new(graph),
//!     SingleScenario::SideObservation, 7)
//!     .with_flush(FlushPolicy::batched(8));
//! engine.create_tenant(spec).unwrap();
//!
//! let mut client = engine.client();
//! let mut replies = Vec::new();
//! client.decide_many("exp-0", 16, &mut replies).unwrap();
//! let feedback: Vec<_> = replies
//!     .iter_mut()
//!     .map(|r| {
//!         let r = r.as_mut().unwrap();
//!         (r.round, r.feedback.take().unwrap())
//!     })
//!     .collect();
//! client.feedback_many("exp-0", feedback).unwrap();
//! engine.drain().unwrap();
//! assert_eq!(engine.metrics().unwrap().total_decides(), 16);
//! engine.shutdown();
//! ```

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::Duration;

use crate::api::{DecideReply, FeedbackEvent, ServeError};
use crate::engine::ServeEngine;
use crate::shard::{Command, DecideBatch, DecideRequest, FeedbackRequest};

/// Upper bound on recycled feedback buffers parked in the client's return
/// channel; overflow buffers are dropped by the shard instead of blocking it.
const FEEDBACK_POOL_CAPACITY: usize = 8;

/// How often the reply wait wakes up to check that the target shard is still
/// alive. Batches complete in microseconds to milliseconds; the poll only
/// matters if a shard dies mid-batch, so a coarse interval costs nothing.
const REPLY_POLL: Duration = Duration::from_millis(100);

/// A client handle over a [`ServeEngine`]: the batched, buffer-recycling
/// counterpart of the engine's per-call methods. Cheap to create (two
/// channels); intended usage is one client per driving thread, living for the
/// whole session. See the [module docs](self) for the full protocol.
pub struct ServeClient<'e> {
    engine: &'e ServeEngine,
    /// The client's long-lived batch reply channel; each `DecideMany` command
    /// carries a clone of `reply_tx`.
    reply_tx: SyncSender<DecideBatch>,
    reply_rx: Receiver<DecideBatch>,
    /// Return path for drained feedback request buffers.
    recycle_tx: SyncSender<Vec<FeedbackRequest>>,
    recycle_rx: Receiver<Vec<FeedbackRequest>>,
    /// Recycled decide request buffers (tenant-id strings stay warm).
    request_pool: Vec<Vec<DecideRequest>>,
    /// Recycled feedback request buffers reclaimed from `recycle_rx`.
    feedback_pool: Vec<Vec<FeedbackRequest>>,
    /// Reply buffer backing [`ServeClient::decide`].
    single_scratch: Vec<Result<DecideReply, ServeError>>,
}

impl<'e> ServeClient<'e> {
    pub(crate) fn new(engine: &'e ServeEngine) -> Self {
        let (reply_tx, reply_rx) = sync_channel(engine.num_shards().max(1));
        let (recycle_tx, recycle_rx) = sync_channel(FEEDBACK_POOL_CAPACITY);
        ServeClient {
            engine,
            reply_tx,
            reply_rx,
            recycle_tx,
            recycle_rx,
            request_pool: Vec::new(),
            feedback_pool: Vec::new(),
            single_scratch: Vec::new(),
        }
    }

    /// Serves `n` consecutive decisions for `tenant` over one channel
    /// round-trip, writing the results into `out` in round order.
    ///
    /// `out` is cleared of stale *meaning* but not of storage: its existing
    /// entries are handed to the shard as warm reply slots and refilled in
    /// place, so a loop that keeps reusing the same vector performs no
    /// allocation once sizes have stabilised. The produced decisions, rewards,
    /// regret accounting, and tenant metrics are bit-identical to `n`
    /// consecutive [`ServeEngine::decide`] calls.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineDown`] when the engine (or the tenant's shard) has
    /// shut down; per-decision failures (e.g.
    /// [`ServeError::UnknownTenant`]) land in the corresponding `out` entry.
    pub fn decide_many(
        &mut self,
        tenant: &str,
        n: usize,
        out: &mut Vec<Result<DecideReply, ServeError>>,
    ) -> Result<(), ServeError> {
        self.decide_many_inner(tenant, n, out, true)
    }

    /// Non-blocking admission variant of [`ServeClient::decide_many`]: when
    /// the tenant's shard queue is full the batch is **not** enqueued and
    /// [`ServeError::Overloaded`] is returned immediately instead of blocking
    /// the caller. The request and reply buffers (including `out`'s warm
    /// slots) are recovered into the client's pools, so a rejected batch
    /// costs no allocation; `out`'s *contents* are unspecified after an
    /// error. This is the admission-control path of the network front end —
    /// an overloaded shard turns into an overload frame on the wire rather
    /// than an unboundedly blocked connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the shard queue is full,
    /// [`ServeError::EngineDown`] after shutdown; per-decision failures land
    /// in the corresponding `out` entry exactly like
    /// [`ServeClient::decide_many`].
    pub fn try_decide_many(
        &mut self,
        tenant: &str,
        n: usize,
        out: &mut Vec<Result<DecideReply, ServeError>>,
    ) -> Result<(), ServeError> {
        self.decide_many_inner(tenant, n, out, false)
    }

    fn decide_many_inner(
        &mut self,
        tenant: &str,
        n: usize,
        out: &mut Vec<Result<DecideReply, ServeError>>,
        block: bool,
    ) -> Result<(), ServeError> {
        if n == 0 {
            out.clear();
            return Ok(());
        }
        let mut requests = self.request_pool.pop().unwrap_or_default();
        write_decide_requests(&mut requests, tenant, n);
        let replies = std::mem::take(out);
        let shard = self.engine.shard_of(tenant);
        let command = Command::DecideMany {
            tag: shard as u64,
            requests,
            replies,
            reply: self.reply_tx.clone(),
        };
        if block {
            self.engine.send_to_shard(shard, command)?;
        } else if let Err(bounced) = self.engine.try_send_to_shard(shard, command) {
            let (command, error) = match bounced {
                TrySendError::Full(c) => (c, ServeError::Overloaded),
                TrySendError::Disconnected(c) => (c, ServeError::EngineDown),
            };
            // Recover the buffers parked in the bounced command.
            if let Command::DecideMany {
                requests, replies, ..
            } = command
            {
                self.request_pool.push(requests);
                *out = replies;
            }
            return Err(error);
        }
        let batch = self.wait_reply(shard)?;
        self.request_pool.push(batch.requests);
        *out = batch.replies;
        Ok(())
    }

    /// Serves one decision through the batched transport (a 1-element
    /// [`ServeClient::decide_many`] on a client-owned scratch buffer). Same
    /// results as [`ServeEngine::decide`], minus the per-call reply-channel
    /// construction.
    pub fn decide(&mut self, tenant: &str) -> Result<DecideReply, ServeError> {
        let mut out = std::mem::take(&mut self.single_scratch);
        let sent = self.decide_many(tenant, 1, &mut out);
        let reply = match sent {
            Ok(()) => out.pop().expect("one requested decision yields one slot"),
            Err(e) => Err(e),
        };
        self.single_scratch = out;
        reply
    }

    /// Ingests a window of feedback events for `tenant` with one
    /// fire-and-forget command, returning how many events were enqueued.
    ///
    /// Events are applied by the shard strictly in the order given, with the
    /// same per-event semantics (round validation, flush thresholds, rejected
    /// accounting) as per-call [`ServeEngine::feedback`]. The request buffer
    /// — including its tenant-id strings — is recycled back to this client
    /// once the shard has drained it.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineDown`] after shutdown. Per-event failures (unknown
    /// tenant, kind mismatch, invalid round) are counted in
    /// [`crate::ShardMetrics::rejected`], exactly like per-call feedback.
    pub fn feedback_many(
        &mut self,
        tenant: &str,
        events: impl IntoIterator<Item = (u64, FeedbackEvent)>,
    ) -> Result<usize, ServeError> {
        self.feedback_many_inner(tenant, events, true)
    }

    /// Non-blocking admission variant of [`ServeClient::feedback_many`]: a
    /// full shard queue returns [`ServeError::Overloaded`] immediately (the
    /// window is **not** enqueued — the events are dropped and the request
    /// buffer is recovered into the client's pool) instead of blocking.
    /// Callers that must not lose feedback should retry delivery after
    /// backoff; the network front end surfaces the rejection as an overload
    /// frame so the *remote* client owns that retry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the shard queue is full,
    /// [`ServeError::EngineDown`] after shutdown.
    pub fn try_feedback_many(
        &mut self,
        tenant: &str,
        events: impl IntoIterator<Item = (u64, FeedbackEvent)>,
    ) -> Result<usize, ServeError> {
        self.feedback_many_inner(tenant, events, false)
    }

    fn feedback_many_inner(
        &mut self,
        tenant: &str,
        events: impl IntoIterator<Item = (u64, FeedbackEvent)>,
        block: bool,
    ) -> Result<usize, ServeError> {
        self.reclaim_feedback_buffers();
        let mut buffer = self.feedback_pool.pop().unwrap_or_default();
        let mut used = 0usize;
        for (round, event) in events {
            if used < buffer.len() {
                let entry = &mut buffer[used];
                entry.tenant.clear();
                entry.tenant.push_str(tenant);
                entry.round = round;
                entry.event = event;
            } else {
                buffer.push(FeedbackRequest {
                    tenant: tenant.to_owned(),
                    round,
                    event,
                });
            }
            used += 1;
        }
        buffer.truncate(used);
        if used == 0 {
            self.feedback_pool.push(buffer);
            return Ok(0);
        }
        let shard = self.engine.shard_of(tenant);
        let command = Command::FeedbackMany {
            events: buffer,
            recycle: self.recycle_tx.clone(),
        };
        if block {
            self.engine.send_to_shard(shard, command)?;
        } else if let Err(bounced) = self.engine.try_send_to_shard(shard, command) {
            let (command, error) = match bounced {
                TrySendError::Full(c) => (c, ServeError::Overloaded),
                TrySendError::Disconnected(c) => (c, ServeError::EngineDown),
            };
            // Recover the request buffer parked in the bounced command.
            if let Command::FeedbackMany { events, .. } = command {
                self.feedback_pool.push(events);
            }
            return Err(error);
        }
        Ok(used)
    }

    /// Moves buffers the shards have finished with back into the local pool.
    fn reclaim_feedback_buffers(&mut self) {
        while let Ok(buffer) = self.recycle_rx.try_recv() {
            self.feedback_pool.push(buffer);
        }
    }

    /// Waits for the in-flight batch. The pooled reply channel outlives any
    /// single command, so a shard that died *without* replying would leave a
    /// plain `recv` hanging; the wait therefore polls shard liveness at a
    /// coarse interval and converts a dead shard into
    /// [`ServeError::EngineDown`] (after draining a reply the shard may have
    /// managed to send first).
    fn wait_reply(&mut self, shard: usize) -> Result<DecideBatch, ServeError> {
        loop {
            match self.reply_rx.recv_timeout(REPLY_POLL) {
                Ok(batch) => {
                    // One batch in flight per client, so the echoed tag can
                    // only be the shard we just addressed.
                    debug_assert_eq!(batch.tag, shard as u64);
                    return Ok(batch);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.engine.shard_is_down(shard) {
                        if let Ok(batch) = self.reply_rx.try_recv() {
                            return Ok(batch);
                        }
                        return Err(ServeError::EngineDown);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ServeError::EngineDown),
            }
        }
    }
}

/// Writes a `(tenant, n)` request list into a recycled buffer, reusing entry
/// strings. `n` is split across entries only when it exceeds the `u32` count
/// width of a single request.
fn write_decide_requests(requests: &mut Vec<DecideRequest>, tenant: &str, mut n: usize) {
    let mut entries = 0usize;
    while n > 0 {
        let count = u32::try_from(n).unwrap_or(u32::MAX);
        if entries < requests.len() {
            let entry = &mut requests[entries];
            entry.tenant.clear();
            entry.tenant.push_str(tenant);
            entry.count = count;
        } else {
            requests.push(DecideRequest {
                tenant: tenant.to_owned(),
                count,
            });
        }
        entries += 1;
        n -= count as usize;
    }
    requests.truncate(entries);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlushPolicy, TenantSpec};
    use netband_core::DflSso;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use netband_sim::SingleScenario;

    fn engine_with_tenant(id: &str, batch: usize) -> ServeEngine {
        let engine = ServeEngine::with_shards(2);
        let graph = generators::path(5);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
        let spec = TenantSpec::single(
            id,
            bandit,
            DflSso::new(graph),
            SingleScenario::SideObservation,
            11,
        )
        .with_flush(FlushPolicy::batched(batch));
        engine.create_tenant(spec).unwrap();
        engine
    }

    #[test]
    fn batched_decides_match_per_call_decides() {
        let a = engine_with_tenant("t", 4);
        let b = engine_with_tenant("t", 4);
        let mut client = a.client();
        let mut out = Vec::new();
        client.decide_many("t", 10, &mut out).unwrap();
        assert_eq!(out.len(), 10);
        for (i, reply) in out.iter().enumerate() {
            let expected = b.decide("t").unwrap();
            assert_eq!(reply.as_ref().unwrap(), &expected, "round {}", i + 1);
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn reply_buffers_are_recycled_in_place() {
        let engine = engine_with_tenant("t", 1);
        let mut client = engine.client();
        let mut out = Vec::new();
        client.decide_many("t", 8, &mut out).unwrap();
        let first_round: Vec<u64> = out.iter().map(|r| r.as_ref().unwrap().round).collect();
        assert_eq!(first_round, (1..=8).collect::<Vec<_>>());
        // Reuse the same vector: slots are refilled, rounds advance.
        client.decide_many("t", 8, &mut out).unwrap();
        let second_round: Vec<u64> = out.iter().map(|r| r.as_ref().unwrap().round).collect();
        assert_eq!(second_round, (9..=16).collect::<Vec<_>>());
        // A shorter batch truncates the buffer.
        client.decide_many("t", 3, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        engine.shutdown();
    }

    #[test]
    fn unknown_tenants_error_per_slot() {
        let engine = engine_with_tenant("t", 1);
        let mut client = engine.client();
        let mut out = Vec::new();
        client.decide_many("ghost", 3, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        for slot in &out {
            assert_eq!(
                slot.as_ref().unwrap_err(),
                &ServeError::UnknownTenant("ghost".into())
            );
        }
        // Slots recover to Ok when the next batch targets a real tenant.
        client.decide_many("t", 3, &mut out).unwrap();
        assert!(out.iter().all(Result::is_ok));
        assert!(matches!(
            client.decide("ghost"),
            Err(ServeError::UnknownTenant(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn feedback_many_applies_like_per_call_feedback() {
        let batched = engine_with_tenant("t", 3);
        let per_call = engine_with_tenant("t", 3);
        let mut client = batched.client();
        let mut out = Vec::new();
        client.decide_many("t", 9, &mut out).unwrap();
        let window: Vec<(u64, FeedbackEvent)> = out
            .iter_mut()
            .map(|r| {
                let r = r.as_mut().unwrap();
                (r.round, r.feedback.take().unwrap())
            })
            .collect();
        assert_eq!(client.feedback_many("t", window.clone()).unwrap(), 9);
        for _ in 0..9 {
            let reply = per_call.decide("t").unwrap();
            per_call
                .feedback("t", reply.round, reply.feedback.unwrap())
                .unwrap();
        }
        batched.drain().unwrap();
        per_call.drain().unwrap();
        let (m_batched, m_per_call) = (
            batched.metrics().unwrap().tenants,
            per_call.metrics().unwrap().tenants,
        );
        assert_eq!(m_batched, m_per_call);
        // Empty windows are a no-op.
        assert_eq!(client.feedback_many("t", Vec::new()).unwrap(), 0);
        batched.shutdown();
        per_call.shutdown();
    }

    #[test]
    fn zero_decides_is_a_no_op_that_clears_out() {
        let engine = engine_with_tenant("t", 1);
        let mut client = engine.client();
        let mut out = Vec::new();
        client.decide_many("t", 2, &mut out).unwrap();
        client.decide_many("t", 0, &mut out).unwrap();
        assert!(out.is_empty());
        engine.shutdown();
    }

    /// Deterministic overload: wedge the single shard on a rendezvous `Drain`
    /// reply, fill its capacity-1 queue, and the `try_*` paths must return
    /// [`ServeError::Overloaded`] immediately instead of blocking — with all
    /// request/reply buffers recovered, so the client works normally once the
    /// shard is released.
    #[test]
    fn try_paths_reject_with_overloaded_when_the_shard_queue_is_full() {
        let engine = ServeEngine::start(crate::EngineConfig::new(1).with_queue_capacity(1));
        let graph = generators::path(5);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
        let spec = TenantSpec::single(
            "t",
            bandit,
            DflSso::new(graph),
            SingleScenario::SideObservation,
            11,
        );
        engine.create_tenant(spec).unwrap();

        // Wedge the shard: it dequeues this drain and blocks sending the ack
        // into a rendezvous channel nobody is reading yet.
        let (wedge_tx, wedge_rx) = std::sync::mpsc::sync_channel::<()>(0);
        engine
            .send_to_shard(0, Command::Drain { reply: wedge_tx })
            .unwrap();
        // Fill the capacity-1 queue behind the wedged command. The blocking
        // send also guarantees the wedge drain has been dequeued.
        let (barrier_tx, barrier_rx) = std::sync::mpsc::sync_channel::<()>(1);
        engine
            .send_to_shard(0, Command::Drain { reply: barrier_tx })
            .unwrap();

        let mut client = engine.client();
        let mut out = Vec::new();
        assert_eq!(
            client.try_decide_many("t", 4, &mut out),
            Err(ServeError::Overloaded)
        );
        let event = (3u64, FeedbackEvent::default());
        assert_eq!(
            client.try_feedback_many("t", [event]),
            Err(ServeError::Overloaded)
        );
        // The bounced buffers were recovered into the pools, not leaked into
        // the queue: nothing reached the shard.
        assert_eq!(client.request_pool.len(), 1);
        assert_eq!(client.feedback_pool.len(), 1);

        // Release the shard; the try paths now succeed and the recovered
        // buffers are reused.
        wedge_rx.recv().unwrap();
        barrier_rx.recv().unwrap();
        client.try_decide_many("t", 4, &mut out).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(Result::is_ok));
        engine.drain().unwrap();
        let report = engine.metrics().unwrap();
        assert_eq!(report.total_decides(), 4);
        // The rejected feedback window was never enqueued.
        assert_eq!(report.shards[0].rejected, 0);
        engine.shutdown();
    }

    #[test]
    fn request_writer_reuses_and_truncates_entries() {
        let mut requests = Vec::new();
        write_decide_requests(&mut requests, "alpha", 5);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].tenant, "alpha");
        assert_eq!(requests[0].count, 5);
        write_decide_requests(&mut requests, "be", 2);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].tenant, "be");
        assert_eq!(requests[0].count, 2);
    }
}
