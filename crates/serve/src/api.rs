//! Public request/response types of the serving engine.

use std::fmt;

use netband_env::{CombinatorialFeedback, EnvError, SinglePlayFeedback};
use netband_spec::{FeedbackSpec, ScenarioSpec, SpecError};

use crate::ArmId;

/// Identifier of a tenant (an experiment id). Tenants are routed to shards by
/// a stable hash of this id.
pub type TenantId = String;

/// The action a tenant chose for one round.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// A single-play tenant pulled one arm.
    Arm(ArmId),
    /// A combinatorial tenant pulled a super-arm (sorted, deduplicated).
    Strategy(Vec<ArmId>),
}

impl Decision {
    /// Overwrites `self` with a single-arm decision. A warm
    /// `Decision::Strategy` keeps its vector allocation parked in place only
    /// when the variant already matches; flipping the variant drops it —
    /// tenants never flip play modes, so batched reply slots stay warm.
    pub(crate) fn set_arm(&mut self, arm: ArmId) {
        match self {
            Decision::Arm(a) => *a = arm,
            other => *other = Decision::Arm(arm),
        }
    }

    /// Overwrites `self` with a strategy decision, reusing the slot's vector
    /// when the variant already matches.
    pub(crate) fn set_strategy(&mut self, arms: &[ArmId]) {
        match self {
            Decision::Strategy(s) => {
                s.clear();
                s.extend_from_slice(arms);
            }
            other => *other = Decision::Strategy(arms.to_vec()),
        }
    }
}

/// One reward observation travelling back into the engine.
///
/// The variant must match the tenant's play mode; a mismatch is rejected with
/// [`ServeError::FeedbackKindMismatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum FeedbackEvent {
    /// Feedback for a single-play decision.
    Single(SinglePlayFeedback),
    /// Feedback for a combinatorial decision.
    Combinatorial(CombinatorialFeedback),
}

/// The default event is an empty single-play observation. It exists so batch
/// ingestion can `mem::take` events out of reusable request buffers without
/// allocating; a default-built event is never a valid observation on its own.
impl Default for FeedbackEvent {
    fn default() -> Self {
        FeedbackEvent::Single(SinglePlayFeedback::default())
    }
}

/// When a tenant folds its queued feedback into the policy estimators.
///
/// Each flush applies its queued events in round order (stable for ties), so
/// applying a given batch is deterministic. The *partition* of events into
/// flushes follows delivery timing: events that arrive after a flush boundary
/// are ordered only relative to their own batch, and incremental-mean updates
/// are float-order-sensitive. Clients that need a bit-reproducible trajectory
/// must therefore deliver feedback on a fixed schedule — the golden
/// equivalence suite does exactly that with [`FlushPolicy::immediate`] and
/// in-order delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush as soon as this many events are pending. Must be at least 1:
    /// the constructors enforce it ([`FlushPolicy::batched`] clamps,
    /// [`FlushPolicy::try_batched`] rejects), and tenant registration rejects
    /// a literal-built zero with [`ServeError::InvalidFlushPolicy`].
    pub max_pending: usize,
    /// Additionally flush at the start of every decide, so a decision never
    /// runs on estimators that are missing already-delivered feedback. This is
    /// the setting under which a single-shard engine reproduces the batch
    /// simulation bit for bit.
    pub flush_before_decide: bool,
}

impl FlushPolicy {
    /// Apply every feedback event as soon as it arrives.
    pub fn immediate() -> Self {
        FlushPolicy {
            max_pending: 1,
            flush_before_decide: true,
        }
    }

    /// Let feedback accumulate and apply it in batches of (up to)
    /// `max_pending` events; decides may run on stale estimators in between
    /// (the delayed-feedback regime).
    ///
    /// A `max_pending` of 0 is **clamped to 1** — this constructor is the one
    /// documented place where the coercion happens; everywhere else
    /// ([`FlushPolicy::try_batched`], tenant registration) a zero is rejected
    /// with [`ServeError::InvalidFlushPolicy`].
    pub fn batched(max_pending: usize) -> Self {
        FlushPolicy {
            max_pending: max_pending.max(1),
            flush_before_decide: false,
        }
    }

    /// Like [`FlushPolicy::batched`], but rejects a zero batch size instead
    /// of clamping it.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidFlushPolicy`] when `max_pending == 0`.
    pub fn try_batched(max_pending: usize) -> Result<Self, ServeError> {
        if max_pending == 0 {
            return Err(ServeError::InvalidFlushPolicy { max_pending });
        }
        Ok(FlushPolicy {
            max_pending,
            flush_before_decide: false,
        })
    }

    /// Validates a policy built by hand (struct literal): `max_pending` must
    /// be at least 1. Tenant registration calls this, so an invalid policy
    /// never reaches a shard.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_pending == 0 {
            return Err(ServeError::InvalidFlushPolicy {
                max_pending: self.max_pending,
            });
        }
        Ok(())
    }
}

impl From<FeedbackSpec> for FlushPolicy {
    /// Maps the serializable schedule onto the engine's flush policy.
    /// `FeedbackSpec` documents reject `max_pending == 0` at decode time, and
    /// [`FlushPolicy::batched`] clamps as a second line of defence.
    fn from(spec: FeedbackSpec) -> Self {
        match spec {
            FeedbackSpec::Immediate => FlushPolicy::immediate(),
            FeedbackSpec::Batched { max_pending } => FlushPolicy::batched(max_pending),
        }
    }
}

/// A request to register a tenant from a declarative scenario document: the
/// spec-driven counterpart of hand-constructing a
/// [`TenantSpec`](crate::TenantSpec). The scenario's workload, policy, and
/// feedback schedule are built by `netband-spec`; the tenant's RNG is seeded
/// with the scenario's run seed, so a spec-registered tenant under
/// [`FlushPolicy::immediate`] serves the same trajectory as
/// `netband_sim::run_spec` of the same document.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterTenantSpec {
    /// The tenant id to register under (routes the tenant to a shard).
    pub id: TenantId,
    /// The scenario to host.
    pub scenario: ScenarioSpec,
}

impl RegisterTenantSpec {
    /// Convenience constructor.
    pub fn new(id: impl Into<TenantId>, scenario: ScenarioSpec) -> Self {
        RegisterTenantSpec {
            id: id.into(),
            scenario,
        }
    }
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::immediate()
    }
}

/// The engine's answer to a `Decide` request.
///
/// Replies are plain data; the batched client API recycles them as warm
/// slots, so a steady-state [`ServeClient`](crate::ServeClient) batch is
/// filled entirely in place (see [`ServeClient::decide_many`](crate::ServeClient::decide_many)).
#[derive(Debug, Clone, PartialEq)]
pub struct DecideReply {
    /// The tenant-local round this decision belongs to (1-based). Feedback
    /// for the decision must quote this round.
    pub round: u64,
    /// The chosen arm or super-arm.
    pub decision: Decision,
    /// The realised reward the environment charged for the decision, under
    /// the tenant's scenario reward model.
    pub reward: f64,
    /// The feedback event revealed by the pull, for the caller to route back
    /// via feedback ingestion (possibly delayed and out of order). `None`
    /// when the tenant was configured without feedback echo.
    pub feedback: Option<FeedbackEvent>,
}

impl DecideReply {
    /// A blank reply used as the seed for in-place filling (every field is
    /// overwritten by `Tenant::decide_into` before the reply is handed out).
    pub(crate) fn blank() -> Self {
        DecideReply {
            round: 0,
            decision: Decision::Arm(0),
            reward: 0.0,
            feedback: None,
        }
    }
}

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No tenant with this id exists on the shard the id routes to.
    UnknownTenant(TenantId),
    /// A tenant with this id already exists.
    DuplicateTenant(TenantId),
    /// The environment rejected the tenant's decision or restore state.
    Env(EnvError),
    /// A feedback event's variant does not match the tenant's play mode.
    FeedbackKindMismatch(TenantId),
    /// A feedback event quoted a round the tenant never served (0, or beyond
    /// the last decide).
    InvalidRound {
        /// The tenant the event was addressed to.
        tenant: TenantId,
        /// The round the event quoted.
        round: u64,
        /// Rounds the tenant had served when the event arrived.
        served: u64,
    },
    /// A flush policy with `max_pending == 0` was submitted (a tenant with
    /// such a policy could never hold feedback, so the value is always a
    /// configuration mistake).
    InvalidFlushPolicy {
        /// The rejected threshold.
        max_pending: usize,
    },
    /// A spec-driven registration failed to validate or build its scenario.
    Spec(SpecError),
    /// The target shard's bounded command queue is full and the caller asked
    /// not to block (the `try_*` admission-control paths used by the network
    /// front end). The request was **not** enqueued; retry after backoff.
    Overloaded,
    /// The engine (or the target shard) has shut down.
    EngineDown,
    /// The durable store failed: recovery found corrupt files, or a disk
    /// operation failed. Carries the rendered [`netband_store::StoreError`]
    /// (the structured error is not `Clone`/`PartialEq`, which this enum is).
    Store(String),
    /// A tenant cannot live on a store-enabled engine: it was not built from
    /// a scenario document (so its policy structure cannot be rebuilt on
    /// recovery), or its policy does not support durable state capture.
    NotPersistable(TenantId),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            ServeError::DuplicateTenant(id) => write!(f, "tenant {id:?} already exists"),
            ServeError::Env(e) => write!(f, "environment error: {e}"),
            ServeError::FeedbackKindMismatch(id) => {
                write!(f, "feedback kind does not match tenant {id:?}'s play mode")
            }
            ServeError::InvalidRound {
                tenant,
                round,
                served,
            } => {
                write!(
                    f,
                    "feedback for tenant {tenant:?} quotes round {round}, but only {served} \
                     rounds have been served"
                )
            }
            ServeError::InvalidFlushPolicy { max_pending } => {
                write!(
                    f,
                    "invalid flush policy: max_pending must be at least 1 (got {max_pending})"
                )
            }
            ServeError::Spec(e) => write!(f, "scenario spec error: {e}"),
            ServeError::Overloaded => {
                write!(f, "shard command queue is full (overloaded); retry later")
            }
            ServeError::EngineDown => write!(f, "serving engine has shut down"),
            ServeError::Store(message) => write!(f, "durable store error: {message}"),
            ServeError::NotPersistable(id) => write!(
                f,
                "tenant {id:?} cannot be persisted: register it from a scenario document \
                 with a state-capturing policy, or start the engine without a store"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EnvError> for ServeError {
    fn from(e: EnvError) -> Self {
        ServeError::Env(e)
    }
}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> Self {
        ServeError::Spec(e)
    }
}

impl From<netband_store::StoreError> for ServeError {
    fn from(e: netband_store::StoreError) -> Self {
        ServeError::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_policy_constructors() {
        let imm = FlushPolicy::immediate();
        assert_eq!(imm.max_pending, 1);
        assert!(imm.flush_before_decide);
        assert_eq!(FlushPolicy::default(), imm);
        let batched = FlushPolicy::batched(32);
        assert_eq!(batched.max_pending, 32);
        assert!(!batched.flush_before_decide);
    }

    /// The two documented zero-batch paths: `batched` clamps (in exactly one
    /// place), `try_batched` and `validate` reject.
    #[test]
    fn zero_max_pending_is_clamped_or_rejected() {
        // The clamping path.
        assert_eq!(FlushPolicy::batched(0), FlushPolicy::batched(1));
        assert_eq!(FlushPolicy::batched(0).max_pending, 1);
        // The rejecting paths.
        assert_eq!(
            FlushPolicy::try_batched(0),
            Err(ServeError::InvalidFlushPolicy { max_pending: 0 })
        );
        assert_eq!(FlushPolicy::try_batched(8), Ok(FlushPolicy::batched(8)));
        let literal = FlushPolicy {
            max_pending: 0,
            flush_before_decide: false,
        };
        assert_eq!(
            literal.validate(),
            Err(ServeError::InvalidFlushPolicy { max_pending: 0 })
        );
        assert!(FlushPolicy::immediate().validate().is_ok());
        let err = ServeError::InvalidFlushPolicy { max_pending: 0 }.to_string();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn feedback_spec_maps_onto_flush_policy() {
        assert_eq!(
            FlushPolicy::from(FeedbackSpec::Immediate),
            FlushPolicy::immediate()
        );
        assert_eq!(
            FlushPolicy::from(FeedbackSpec::Batched { max_pending: 16 }),
            FlushPolicy::batched(16)
        );
    }

    #[test]
    fn errors_render_their_context() {
        assert!(ServeError::UnknownTenant("exp-1".into())
            .to_string()
            .contains("exp-1"));
        assert!(ServeError::DuplicateTenant("exp-2".into())
            .to_string()
            .contains("already exists"));
        let env: ServeError = EnvError::InvalidStrategy {
            reason: "empty".into(),
        }
        .into();
        assert!(env.to_string().contains("empty"));
        let invalid = ServeError::InvalidRound {
            tenant: "exp-3".into(),
            round: 9,
            served: 4,
        }
        .to_string();
        assert!(invalid.contains("exp-3") && invalid.contains('9') && invalid.contains('4'));
        assert!(ServeError::EngineDown.to_string().contains("shut down"));
    }
}
