//! Shard actor loop: one worker thread owning a disjoint set of tenants.
//!
//! A shard is a plain `std::thread` draining a bounded command channel — the
//! repo's `std`-only threading convention (no async runtime in the vendored
//! dependency set). All tenant state is thread-local to the shard, so the hot
//! path takes no locks; the bounded channel provides backpressure to clients.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Instant;

use netband_obs::{DecideStage, StageClock, TraceEvent, TraceKind, TraceRing};

use crate::api::{DecideReply, FeedbackEvent, ServeError, TenantId};
use crate::metrics::{ShardMetrics, TenantMetrics, TenantTelemetry, STAGE_SAMPLE_EVERY};
use crate::snapshot::TenantSnapshot;
use crate::tenant::{Tenant, TenantSpec};

/// One entry of a batched decide command: `count` consecutive decisions for
/// `tenant`. Request buffers are recycled through the reply, so the tenant-id
/// strings stay warm across batches.
#[derive(Debug)]
pub(crate) struct DecideRequest {
    pub(crate) tenant: TenantId,
    pub(crate) count: u32,
}

/// One entry of a batched feedback command. The event is `mem::take`n out by
/// the shard, so a recycled entry keeps its tenant-id string (and nothing
/// else) warm.
#[derive(Debug)]
pub(crate) struct FeedbackRequest {
    pub(crate) tenant: TenantId,
    pub(crate) round: u64,
    pub(crate) event: FeedbackEvent,
}

/// A completed `DecideMany` batch travelling back to its client: the filled
/// reply slots plus the request buffer, returned for recycling. `tag` echoes
/// the client-chosen command tag so one pooled reply channel can serve
/// batches sent to several shards.
pub(crate) struct DecideBatch {
    pub(crate) tag: u64,
    pub(crate) requests: Vec<DecideRequest>,
    pub(crate) replies: Vec<Result<DecideReply, ServeError>>,
}

/// A command addressed to one shard. Fire-and-forget commands (`Feedback`,
/// `FeedbackMany`, `Flush`) carry no reply channel; failures are counted in
/// [`ShardMetrics::rejected`].
pub(crate) enum Command {
    Decide {
        tenant: TenantId,
        reply: SyncSender<Result<DecideReply, ServeError>>,
    },
    /// Serve every request of the batch (one tenant lookup per request entry,
    /// `count` decisions each), filling `replies` **in place** — warm slots
    /// are reused, so a steady-state batch allocates nothing — and send the
    /// buffers back through the client's long-lived reply channel.
    DecideMany {
        tag: u64,
        requests: Vec<DecideRequest>,
        replies: Vec<Result<DecideReply, ServeError>>,
        reply: SyncSender<DecideBatch>,
    },
    Feedback {
        tenant: TenantId,
        round: u64,
        event: FeedbackEvent,
    },
    /// Ingest every event of the batch (identical per-event semantics to
    /// `Feedback`, including flush thresholds), then hand the drained request
    /// buffer back through `recycle` for reuse (dropped, never blocking the
    /// shard, if the client's pool is full or gone).
    FeedbackMany {
        events: Vec<FeedbackRequest>,
        recycle: SyncSender<Vec<FeedbackRequest>>,
    },
    Flush {
        tenant: TenantId,
    },
    Create {
        spec: Box<TenantSpec>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Restore {
        snapshot: Box<TenantSnapshot>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Snapshot {
        tenant: TenantId,
        reply: SyncSender<Result<TenantSnapshot, ServeError>>,
    },
    Evict {
        tenant: TenantId,
        reply: SyncSender<Result<TenantSnapshot, ServeError>>,
    },
    Metrics {
        reply: SyncSender<ShardReport>,
    },
    /// One tenant's learning snapshot (read-only: never flushes).
    Telemetry {
        tenant: TenantId,
        reply: SyncSender<Result<TenantTelemetry, ServeError>>,
    },
    /// Learning snapshots of every hosted tenant, sorted by id.
    TelemetryAll {
        reply: SyncSender<Vec<TenantTelemetry>>,
    },
    /// Drains the shard's trace ring (oldest event first).
    Trace {
        reply: SyncSender<Vec<TraceEvent>>,
    },
    /// Flush every tenant's pending feedback; the ack doubles as a queue
    /// barrier (everything enqueued before it has been processed).
    Drain {
        reply: SyncSender<()>,
    },
    Shutdown,
}

/// One shard's contribution to a [`crate::MetricsReport`].
pub(crate) struct ShardReport {
    pub(crate) metrics: ShardMetrics,
    pub(crate) tenants: Vec<(TenantId, TenantMetrics)>,
}

/// The shard actor loop. Runs until `Shutdown` arrives or every sender is
/// dropped. `trace_capacity` sizes the shard's trace ring.
pub(crate) fn shard_loop(commands: Receiver<Command>, trace_capacity: usize) {
    let mut tenants: HashMap<TenantId, Tenant> = HashMap::new();
    let mut metrics = ShardMetrics::default();
    let mut trace = TraceRing::new(trace_capacity);
    // Decides served by this shard, counted across all tenants and both
    // transports; every STAGE_SAMPLE_EVERY-th one records its stage split.
    let mut decides: u64 = 0;
    while let Ok(command) = commands.recv() {
        metrics.commands += 1;
        match command {
            Command::Decide { tenant, reply } => {
                let start = Instant::now();
                decides += 1;
                let result = if decides % STAGE_SAMPLE_EVERY == 0 {
                    let mut clock = StageClock::start();
                    let found = tenants.get_mut(&tenant);
                    clock.lap(DecideStage::Route, &mut metrics.stages);
                    match found {
                        Some(t) => {
                            let mut r = DecideReply::blank();
                            t.decide_into(&mut r, Some((&mut clock, &mut metrics.stages)))
                                .map(|()| r)
                        }
                        None => Err(ServeError::UnknownTenant(tenant)),
                    }
                } else {
                    match tenants.get_mut(&tenant) {
                        Some(t) => t.decide(),
                        None => Err(ServeError::UnknownTenant(tenant)),
                    }
                };
                metrics.decide_latency.record(start.elapsed());
                // A disconnected caller is not a shard failure.
                let _ = reply.send(result);
            }
            Command::DecideMany {
                tag,
                requests,
                mut replies,
                reply,
            } => {
                let total: usize = requests.iter().map(|r| r.count as usize).sum();
                replies.truncate(total);
                let mut slot = 0usize;
                for request in &requests {
                    match tenants.get_mut(&request.tenant) {
                        Some(tenant) => {
                            for _ in 0..request.count {
                                let start = Instant::now();
                                decides += 1;
                                if decides % STAGE_SAMPLE_EVERY == 0 {
                                    // The per-entry tenant lookup is already
                                    // done, so the Route lap is ~zero here —
                                    // which is honest: batching is exactly
                                    // what amortises routing away.
                                    let mut clock = StageClock::start();
                                    clock.lap(DecideStage::Route, &mut metrics.stages);
                                    decide_into_slot(
                                        tenant,
                                        &mut replies,
                                        slot,
                                        Some((&mut clock, &mut metrics.stages)),
                                    );
                                } else {
                                    decide_into_slot(tenant, &mut replies, slot, None);
                                }
                                metrics.decide_latency.record(start.elapsed());
                                slot += 1;
                            }
                        }
                        None => {
                            for _ in 0..request.count {
                                // Record latency like the per-call path does
                                // for unknown tenants, so both transports
                                // produce the same shard metrics.
                                let start = Instant::now();
                                let err = ServeError::UnknownTenant(request.tenant.clone());
                                if slot == replies.len() {
                                    replies.push(Err(err));
                                } else {
                                    replies[slot] = Err(err);
                                }
                                metrics.decide_latency.record(start.elapsed());
                                slot += 1;
                            }
                        }
                    }
                }
                // A disconnected caller is not a shard failure.
                let _ = reply.send(DecideBatch {
                    tag,
                    requests,
                    replies,
                });
            }
            Command::Feedback {
                tenant,
                round,
                event,
            } => {
                let start = Instant::now();
                match tenants.get_mut(&tenant) {
                    Some(t) => match t.feedback(round, event) {
                        Ok(flushed) => {
                            if flushed > 0 {
                                trace.record(TraceKind::FlushApplied { events: flushed }, &tenant);
                            }
                        }
                        Err(_) => {
                            metrics.rejected += 1;
                            trace.record(TraceKind::FeedbackRejected, &tenant);
                        }
                    },
                    None => {
                        metrics.rejected += 1;
                        trace.record(TraceKind::FeedbackRejected, &tenant);
                    }
                }
                metrics.feedback_latency.record(start.elapsed());
            }
            Command::FeedbackMany {
                mut events,
                recycle,
            } => {
                for request in events.iter_mut() {
                    let start = Instant::now();
                    match tenants.get_mut(&request.tenant) {
                        Some(tenant) => {
                            // Move the event out, leaving a (heap-free)
                            // default behind so the entry's tenant string can
                            // be recycled.
                            let event = std::mem::take(&mut request.event);
                            match tenant.feedback(request.round, event) {
                                Ok(flushed) => {
                                    if flushed > 0 {
                                        trace.record(
                                            TraceKind::FlushApplied { events: flushed },
                                            &request.tenant,
                                        );
                                    }
                                }
                                Err(_) => {
                                    metrics.rejected += 1;
                                    trace.record(TraceKind::FeedbackRejected, &request.tenant);
                                }
                            }
                        }
                        None => {
                            metrics.rejected += 1;
                            trace.record(TraceKind::FeedbackRejected, &request.tenant);
                        }
                    }
                    metrics.feedback_latency.record(start.elapsed());
                }
                // Hand the buffer back to the client's pool; a full or
                // disconnected pool just drops it (never block the shard).
                let _ = recycle.try_send(events);
            }
            Command::Flush { tenant } => match tenants.get_mut(&tenant) {
                Some(t) => {
                    let applied = t.flush_pending();
                    if applied > 0 {
                        trace.record(TraceKind::FlushApplied { events: applied }, &tenant);
                    }
                }
                None => metrics.rejected += 1,
            },
            Command::Create { spec, reply } => {
                let result = if tenants.contains_key(spec.id()) {
                    Err(ServeError::DuplicateTenant(spec.id().to_owned()))
                } else {
                    Tenant::new(*spec).map(|tenant| {
                        trace.record(TraceKind::TenantRegistered, &tenant.id);
                        tenants.insert(tenant.id.clone(), tenant);
                    })
                };
                let _ = reply.send(result);
            }
            Command::Restore { snapshot, reply } => {
                let result = if tenants.contains_key(snapshot.id()) {
                    Err(ServeError::DuplicateTenant(snapshot.id().to_owned()))
                } else {
                    Tenant::from_snapshot(*snapshot).map(|tenant| {
                        trace.record(TraceKind::TenantRestored, &tenant.id);
                        tenants.insert(tenant.id.clone(), tenant);
                    })
                };
                let _ = reply.send(result);
            }
            Command::Snapshot { tenant, reply } => {
                let result = match tenants.get_mut(&tenant) {
                    Some(t) => {
                        trace.record(TraceKind::SnapshotTaken, &tenant);
                        Ok(t.snapshot())
                    }
                    None => Err(ServeError::UnknownTenant(tenant)),
                };
                let _ = reply.send(result);
            }
            Command::Evict { tenant, reply } => {
                let result = match tenants.remove(&tenant) {
                    Some(mut t) => {
                        trace.record(TraceKind::TenantEvicted, &tenant);
                        Ok(t.snapshot())
                    }
                    None => Err(ServeError::UnknownTenant(tenant)),
                };
                let _ = reply.send(result);
            }
            Command::Metrics { reply } => {
                let mut list: Vec<(TenantId, TenantMetrics)> = tenants
                    .iter()
                    .map(|(id, t)| (id.clone(), t.metrics.clone()))
                    .collect();
                list.sort_by(|a, b| a.0.cmp(&b.0));
                let _ = reply.send(ShardReport {
                    metrics: metrics.clone(),
                    tenants: list,
                });
            }
            Command::Telemetry { tenant, reply } => {
                let result = match tenants.get(&tenant) {
                    Some(t) => Ok(t.telemetry()),
                    None => Err(ServeError::UnknownTenant(tenant)),
                };
                let _ = reply.send(result);
            }
            Command::TelemetryAll { reply } => {
                let mut list: Vec<TenantTelemetry> =
                    tenants.values().map(Tenant::telemetry).collect();
                list.sort_by(|a, b| a.id.cmp(&b.id));
                let _ = reply.send(list);
            }
            Command::Trace { reply } => {
                let mut out = Vec::new();
                trace.drain_into(&mut out);
                let _ = reply.send(out);
            }
            Command::Drain { reply } => {
                // Flush in sorted id order so any traced flush events land in
                // a deterministic order (HashMap iteration order is not).
                let mut ids: Vec<TenantId> = tenants.keys().cloned().collect();
                ids.sort();
                for id in ids {
                    if let Some(tenant) = tenants.get_mut(&id) {
                        let applied = tenant.flush_pending();
                        if applied > 0 {
                            trace.record(TraceKind::FlushApplied { events: applied }, &id);
                        }
                    }
                }
                let _ = reply.send(());
            }
            Command::Shutdown => break,
        }
    }
}

/// Serves one decision into reply slot `slot`, growing the buffer by one if
/// the batch is larger than the recycled buffer. A warm `Ok` slot is filled
/// strictly in place (no allocation when its buffers fit); an `Err` slot is
/// reset to a blank reply first.
fn decide_into_slot(
    tenant: &mut Tenant,
    replies: &mut Vec<Result<DecideReply, ServeError>>,
    slot: usize,
    stages: Option<(&mut StageClock, &mut netband_obs::StageTimings)>,
) {
    if slot == replies.len() {
        replies.push(Ok(DecideReply::blank()));
    }
    let entry = &mut replies[slot];
    if entry.is_err() {
        *entry = Ok(DecideReply::blank());
    }
    let Ok(reply) = entry else {
        unreachable!("slot was just reset to Ok");
    };
    if let Err(e) = tenant.decide_into(reply, stages) {
        *entry = Err(e);
    }
}
