//! Shard actor loop: one worker thread owning a disjoint set of tenants.
//!
//! A shard is a plain `std::thread` draining a bounded command channel — the
//! repo's `std`-only threading convention (no async runtime in the vendored
//! dependency set). All tenant state is thread-local to the shard, so the hot
//! path takes no locks; the bounded channel provides backpressure to clients.
//!
//! # Durability (optional)
//!
//! A shard booted with a [`ShardDurability`] WAL-logs every successful
//! mutation *after* it executes (rejected commands never reach the log, so
//! replay cannot fail where the original run succeeded) and keeps at most
//! `resident_cap` tenants in RAM, moving the least-recently-used ones to the
//! disk eviction tier and reading them back transparently when traffic
//! returns. Post-boot store failures are **fatal to the shard**: once the
//! log can no longer be written the durability contract cannot be honoured,
//! and dying loudly beats silently diverging from the on-disk state
//! (crash-only design — the next boot recovers from the last durable point).

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Instant;

use netband_obs::{DecideStage, StageClock, TraceEvent, TraceKind, TraceRing};
use netband_spec::WalRecord;
use netband_store::StoreMetrics;

use crate::api::{DecideReply, FeedbackEvent, ServeError, TenantId};
use crate::durable::{self, ShardDurability};
use crate::metrics::{ShardMetrics, TenantMetrics, TenantTelemetry, STAGE_SAMPLE_EVERY};
use crate::snapshot::TenantSnapshot;
use crate::tenant::{Tenant, TenantSpec};

/// One entry of a batched decide command: `count` consecutive decisions for
/// `tenant`. Request buffers are recycled through the reply, so the tenant-id
/// strings stay warm across batches.
#[derive(Debug)]
pub(crate) struct DecideRequest {
    pub(crate) tenant: TenantId,
    pub(crate) count: u32,
}

/// One entry of a batched feedback command. The event is `mem::take`n out by
/// the shard, so a recycled entry keeps its tenant-id string (and nothing
/// else) warm.
#[derive(Debug)]
pub(crate) struct FeedbackRequest {
    pub(crate) tenant: TenantId,
    pub(crate) round: u64,
    pub(crate) event: FeedbackEvent,
}

/// A completed `DecideMany` batch travelling back to its client: the filled
/// reply slots plus the request buffer, returned for recycling. `tag` echoes
/// the client-chosen command tag so one pooled reply channel can serve
/// batches sent to several shards.
pub(crate) struct DecideBatch {
    pub(crate) tag: u64,
    pub(crate) requests: Vec<DecideRequest>,
    pub(crate) replies: Vec<Result<DecideReply, ServeError>>,
}

/// A command addressed to one shard. Fire-and-forget commands (`Feedback`,
/// `FeedbackMany`, `Flush`) carry no reply channel; failures are counted in
/// [`ShardMetrics::rejected`].
pub(crate) enum Command {
    Decide {
        tenant: TenantId,
        reply: SyncSender<Result<DecideReply, ServeError>>,
    },
    /// Serve every request of the batch (one tenant lookup per request entry,
    /// `count` decisions each), filling `replies` **in place** — warm slots
    /// are reused, so a steady-state batch allocates nothing — and send the
    /// buffers back through the client's long-lived reply channel.
    DecideMany {
        tag: u64,
        requests: Vec<DecideRequest>,
        replies: Vec<Result<DecideReply, ServeError>>,
        reply: SyncSender<DecideBatch>,
    },
    Feedback {
        tenant: TenantId,
        round: u64,
        event: FeedbackEvent,
    },
    /// Ingest every event of the batch (identical per-event semantics to
    /// `Feedback`, including flush thresholds), then hand the drained request
    /// buffer back through `recycle` for reuse (dropped, never blocking the
    /// shard, if the client's pool is full or gone).
    FeedbackMany {
        events: Vec<FeedbackRequest>,
        recycle: SyncSender<Vec<FeedbackRequest>>,
    },
    Flush {
        tenant: TenantId,
    },
    Create {
        spec: Box<TenantSpec>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Restore {
        snapshot: Box<TenantSnapshot>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Snapshot {
        tenant: TenantId,
        reply: SyncSender<Result<TenantSnapshot, ServeError>>,
    },
    Evict {
        tenant: TenantId,
        reply: SyncSender<Result<TenantSnapshot, ServeError>>,
    },
    Metrics {
        reply: SyncSender<ShardReport>,
    },
    /// One tenant's learning snapshot (read-only: never flushes).
    Telemetry {
        tenant: TenantId,
        reply: SyncSender<Result<TenantTelemetry, ServeError>>,
    },
    /// Learning snapshots of every hosted tenant, sorted by id.
    TelemetryAll {
        reply: SyncSender<Vec<TenantTelemetry>>,
    },
    /// Drains the shard's trace ring (oldest event first).
    Trace {
        reply: SyncSender<Vec<TraceEvent>>,
    },
    /// The shard store's counters (`None` when the shard has no store).
    StoreMetrics {
        reply: SyncSender<Option<StoreMetrics>>,
    },
    /// Flush every tenant's pending feedback; the ack doubles as a queue
    /// barrier (everything enqueued before it has been processed).
    Drain {
        reply: SyncSender<()>,
    },
    Shutdown,
}

/// One shard's contribution to a [`crate::MetricsReport`].
pub(crate) struct ShardReport {
    pub(crate) metrics: ShardMetrics,
    pub(crate) tenants: Vec<(TenantId, TenantMetrics)>,
}

/// What a shard starts from: its recovered tenants plus durability state
/// (both empty/absent for a plain in-memory shard).
pub(crate) struct ShardBoot {
    pub(crate) tenants: HashMap<TenantId, Tenant>,
    pub(crate) durable: Option<ShardDurability>,
}

impl ShardBoot {
    /// An empty, store-less boot (the default engine).
    pub(crate) fn in_memory() -> Self {
        ShardBoot {
            tenants: HashMap::new(),
            durable: None,
        }
    }
}

/// Rehydrates `id` from the disk tier if it lives there, and marks it
/// most-recently-used if it is (now) resident. Returns `Ok(())` even when
/// the tenant is simply unknown — the caller's own lookup reports that —
/// and `Err` only for store/restore failures.
fn ensure_resident(
    tenants: &mut HashMap<TenantId, Tenant>,
    durable: &mut Option<ShardDurability>,
    trace: &mut TraceRing,
    id: &str,
) -> Result<(), ServeError> {
    let Some(dur) = durable else {
        return Ok(());
    };
    if !tenants.contains_key(id) && dur.evicted.contains(id) {
        let stored = dur.store.read_evicted(id)?;
        let tenant = durable::restore_tenant(stored)?;
        dur.note_rehydrated(id);
        trace.record(TraceKind::TenantRehydrated, id);
        tenants.insert(tenant.id.clone(), tenant);
    } else if tenants.contains_key(id) {
        dur.touch(id);
    }
    Ok(())
}

/// Rehydrates every disk-tier tenant (sorted by id, deterministically) ahead
/// of a shard-wide command — metrics, telemetry, and drain cover *all*
/// tenants, exactly like a store-less engine.
fn rehydrate_all(
    tenants: &mut HashMap<TenantId, Tenant>,
    durable: &mut Option<ShardDurability>,
    trace: &mut TraceRing,
) {
    let mut ids: Vec<TenantId> = match durable {
        Some(dur) if !dur.evicted.is_empty() => dur.evicted.iter().cloned().collect(),
        _ => return,
    };
    ids.sort();
    for id in ids {
        ensure_resident(tenants, durable, trace, &id)
            .unwrap_or_else(|e| panic!("rehydrating tenant {id:?}: {e}"));
    }
}

/// Re-forms the disk tier: while the resident set exceeds the cap, the
/// least-recently-used tenant is captured to its evict file and dropped from
/// RAM. Capture never flushes, so a capped engine's tenants stay bit-exact
/// with an uncapped one's.
fn enforce_cap(
    tenants: &mut HashMap<TenantId, Tenant>,
    durable: &mut Option<ShardDurability>,
    trace: &mut TraceRing,
) {
    let Some(dur) = durable else {
        return;
    };
    while dur.over_cap(tenants.len()) {
        let Some(victim) = dur.lru_victim() else {
            break;
        };
        let tenant = tenants.get(&victim).expect("LRU victim is resident");
        let stored = durable::capture_tenant(tenant)
            .unwrap_or_else(|e| panic!("evicting tenant {victim:?}: {e}"));
        dur.store
            .write_evicted(&stored)
            .unwrap_or_else(|e| panic!("evicting tenant {victim:?}: {e}"));
        tenants.remove(&victim);
        dur.note_evicted(&victim);
        trace.record(TraceKind::TenantEvicted, &victim);
    }
}

/// Appends one record to the shard's WAL (tracing it) and compacts when the
/// schedule says so. See the module docs for why store failures panic here.
fn log_record(
    tenants: &HashMap<TenantId, Tenant>,
    dur: &mut ShardDurability,
    trace: &mut TraceRing,
    record: &WalRecord,
) {
    dur.store
        .append(record)
        .unwrap_or_else(|e| panic!("wal append failed: {e}"));
    trace.record(
        TraceKind::WalAppended {
            bytes: dur.store.wal_bytes(),
        },
        durable::record_tenant(record),
    );
    if dur.store.compaction_due() {
        let mut ids: Vec<&TenantId> = tenants.keys().collect();
        ids.sort();
        let resident: Vec<_> = ids
            .into_iter()
            .map(|id| {
                durable::capture_tenant(&tenants[id])
                    .unwrap_or_else(|e| panic!("capturing tenant {id:?} for compaction: {e}"))
            })
            .collect();
        let captured = (tenants.len() + dur.evicted.len()) as u32;
        dur.store
            .compact(resident)
            .unwrap_or_else(|e| panic!("wal compaction failed: {e}"));
        trace.record(TraceKind::SnapshotCompacted { tenants: captured }, "");
    }
}

/// The shard actor loop. Runs until `Shutdown` arrives or every sender is
/// dropped. `trace_capacity` sizes the shard's trace ring; `boot` carries
/// the recovered tenants and durability state (empty for in-memory shards).
pub(crate) fn shard_loop(commands: Receiver<Command>, trace_capacity: usize, boot: ShardBoot) {
    let ShardBoot {
        mut tenants,
        mut durable,
    } = boot;
    let mut metrics = ShardMetrics::default();
    let mut trace = TraceRing::new(trace_capacity);
    // Recovery brings every tenant back resident; re-form the disk tier
    // before the first command so the cap holds from the start.
    enforce_cap(&mut tenants, &mut durable, &mut trace);
    // Decides served by this shard, counted across all tenants and both
    // transports; every STAGE_SAMPLE_EVERY-th one records its stage split.
    let mut decides: u64 = 0;
    while let Ok(command) = commands.recv() {
        metrics.commands += 1;
        match command {
            Command::Decide { tenant, reply } => {
                let start = Instant::now();
                decides += 1;
                let resident = ensure_resident(&mut tenants, &mut durable, &mut trace, &tenant);
                let result = match resident {
                    Err(e) => Err(e),
                    Ok(()) if decides % STAGE_SAMPLE_EVERY == 0 => {
                        let mut clock = StageClock::start();
                        let found = tenants.get_mut(&tenant);
                        clock.lap(DecideStage::Route, &mut metrics.stages);
                        match found {
                            Some(t) => {
                                let mut r = DecideReply::blank();
                                t.decide_into(&mut r, Some((&mut clock, &mut metrics.stages)))
                                    .map(|()| r)
                            }
                            None => Err(ServeError::UnknownTenant(tenant.clone())),
                        }
                    }
                    Ok(()) => match tenants.get_mut(&tenant) {
                        Some(t) => t.decide(),
                        None => Err(ServeError::UnknownTenant(tenant.clone())),
                    },
                };
                if result.is_ok() {
                    if let Some(dur) = &mut durable {
                        log_record(
                            &tenants,
                            dur,
                            &mut trace,
                            &WalRecord::Decide {
                                tenant: tenant.clone(),
                                count: 1,
                            },
                        );
                    }
                }
                metrics.decide_latency.record(start.elapsed());
                // A disconnected caller is not a shard failure.
                let _ = reply.send(result);
            }
            Command::DecideMany {
                tag,
                requests,
                mut replies,
                reply,
            } => {
                let total: usize = requests.iter().map(|r| r.count as usize).sum();
                replies.truncate(total);
                let mut slot = 0usize;
                for request in &requests {
                    let resident =
                        ensure_resident(&mut tenants, &mut durable, &mut trace, &request.tenant);
                    let mut served: u64 = 0;
                    match resident {
                        Ok(()) if tenants.contains_key(&request.tenant) => {
                            let tenant = tenants
                                .get_mut(&request.tenant)
                                .expect("checked by the guard");
                            for _ in 0..request.count {
                                let start = Instant::now();
                                decides += 1;
                                if decides % STAGE_SAMPLE_EVERY == 0 {
                                    // The per-entry tenant lookup is already
                                    // done, so the Route lap is ~zero here —
                                    // which is honest: batching is exactly
                                    // what amortises routing away.
                                    let mut clock = StageClock::start();
                                    clock.lap(DecideStage::Route, &mut metrics.stages);
                                    decide_into_slot(
                                        tenant,
                                        &mut replies,
                                        slot,
                                        Some((&mut clock, &mut metrics.stages)),
                                    );
                                } else {
                                    decide_into_slot(tenant, &mut replies, slot, None);
                                }
                                if replies[slot].is_ok() {
                                    served += 1;
                                }
                                metrics.decide_latency.record(start.elapsed());
                                slot += 1;
                            }
                        }
                        resident => {
                            let err = match resident {
                                Err(e) => e,
                                Ok(()) => ServeError::UnknownTenant(request.tenant.clone()),
                            };
                            for _ in 0..request.count {
                                // Record latency like the per-call path does
                                // for unknown tenants, so both transports
                                // produce the same shard metrics.
                                let start = Instant::now();
                                if slot == replies.len() {
                                    replies.push(Err(err.clone()));
                                } else {
                                    replies[slot] = Err(err.clone());
                                }
                                metrics.decide_latency.record(start.elapsed());
                                slot += 1;
                            }
                        }
                    }
                    if served > 0 {
                        if let Some(dur) = &mut durable {
                            log_record(
                                &tenants,
                                dur,
                                &mut trace,
                                &WalRecord::Decide {
                                    tenant: request.tenant.clone(),
                                    count: served,
                                },
                            );
                        }
                    }
                }
                // A disconnected caller is not a shard failure.
                let _ = reply.send(DecideBatch {
                    tag,
                    requests,
                    replies,
                });
            }
            Command::Feedback {
                tenant,
                round,
                event,
            } => {
                let start = Instant::now();
                let resident = ensure_resident(&mut tenants, &mut durable, &mut trace, &tenant);
                // Clone for the log before the tenant consumes the event;
                // only taken on durable shards.
                let logged = durable.as_ref().map(|_| durable::event_to_wire(&event));
                let outcome = match (resident, tenants.get_mut(&tenant)) {
                    (Ok(()), Some(t)) => Some(t.feedback(round, event)),
                    _ => None,
                };
                match outcome {
                    Some(Ok(flushed)) => {
                        if flushed > 0 {
                            trace.record(TraceKind::FlushApplied { events: flushed }, &tenant);
                        }
                        if let Some(dur) = &mut durable {
                            log_record(
                                &tenants,
                                dur,
                                &mut trace,
                                &WalRecord::Feedback {
                                    tenant: tenant.clone(),
                                    round,
                                    event: logged.expect("cloned on durable shards"),
                                },
                            );
                        }
                    }
                    Some(Err(_)) | None => {
                        metrics.rejected += 1;
                        trace.record(TraceKind::FeedbackRejected, &tenant);
                    }
                }
                metrics.feedback_latency.record(start.elapsed());
            }
            Command::FeedbackMany {
                mut events,
                recycle,
            } => {
                for request in events.iter_mut() {
                    let start = Instant::now();
                    let resident =
                        ensure_resident(&mut tenants, &mut durable, &mut trace, &request.tenant);
                    // Move the event out, leaving a (heap-free) default
                    // behind so the entry's tenant string can be recycled.
                    let event = std::mem::take(&mut request.event);
                    let logged = durable.as_ref().map(|_| durable::event_to_wire(&event));
                    let outcome = match (resident, tenants.get_mut(&request.tenant)) {
                        (Ok(()), Some(t)) => Some(t.feedback(request.round, event)),
                        _ => None,
                    };
                    match outcome {
                        Some(Ok(flushed)) => {
                            if flushed > 0 {
                                trace.record(
                                    TraceKind::FlushApplied { events: flushed },
                                    &request.tenant,
                                );
                            }
                            if let Some(dur) = &mut durable {
                                log_record(
                                    &tenants,
                                    dur,
                                    &mut trace,
                                    &WalRecord::Feedback {
                                        tenant: request.tenant.clone(),
                                        round: request.round,
                                        event: logged.expect("cloned on durable shards"),
                                    },
                                );
                            }
                        }
                        Some(Err(_)) | None => {
                            metrics.rejected += 1;
                            trace.record(TraceKind::FeedbackRejected, &request.tenant);
                        }
                    }
                    metrics.feedback_latency.record(start.elapsed());
                }
                // Hand the buffer back to the client's pool; a full or
                // disconnected pool just drops it (never block the shard).
                let _ = recycle.try_send(events);
            }
            Command::Flush { tenant } => {
                let resident = ensure_resident(&mut tenants, &mut durable, &mut trace, &tenant);
                let applied = match (resident, tenants.get_mut(&tenant)) {
                    (Ok(()), Some(t)) => Some(t.flush_pending()),
                    _ => None,
                };
                match applied {
                    Some(applied) => {
                        if applied > 0 {
                            trace.record(TraceKind::FlushApplied { events: applied }, &tenant);
                        }
                        if let Some(dur) = &mut durable {
                            log_record(
                                &tenants,
                                dur,
                                &mut trace,
                                &WalRecord::Flush {
                                    tenant: tenant.clone(),
                                },
                            );
                        }
                    }
                    None => metrics.rejected += 1,
                }
            }
            Command::Create { spec, reply } => {
                let taken = tenants.contains_key(spec.id())
                    || durable.as_ref().is_some_and(|d| d.knows(spec.id()));
                let result = if taken {
                    Err(ServeError::DuplicateTenant(spec.id().to_owned()))
                } else {
                    Tenant::new(*spec).and_then(|tenant| {
                        if let Some(dur) = &mut durable {
                            // Admission check: a durable shard only hosts
                            // tenants it can capture later (eviction and
                            // compaction must be infallible once a tenant is
                            // in). Errors as NotPersistable.
                            durable::capture_tenant(&tenant)?;
                            let record = WalRecord::Register {
                                id: tenant.id.clone(),
                                scenario: tenant.origin.clone().expect("capture checked origin"),
                                flush_max_pending: tenant.flush.max_pending as u64,
                                flush_before_decide: tenant.flush.flush_before_decide,
                                auto_feedback: tenant.auto_feedback,
                                echo_feedback: tenant.echo_feedback,
                            };
                            trace.record(TraceKind::TenantRegistered, &tenant.id);
                            dur.touch(&tenant.id);
                            tenants.insert(tenant.id.clone(), tenant);
                            log_record(&tenants, dur, &mut trace, &record);
                        } else {
                            trace.record(TraceKind::TenantRegistered, &tenant.id);
                            tenants.insert(tenant.id.clone(), tenant);
                        }
                        Ok(())
                    })
                };
                let _ = reply.send(result);
            }
            Command::Restore { snapshot, reply } => {
                let taken = tenants.contains_key(snapshot.id())
                    || durable.as_ref().is_some_and(|d| d.knows(snapshot.id()));
                let result = if taken {
                    Err(ServeError::DuplicateTenant(snapshot.id().to_owned()))
                } else {
                    Tenant::from_snapshot(*snapshot).and_then(|tenant| {
                        if let Some(dur) = &mut durable {
                            // The restored tenant's history is not reachable
                            // from this shard's log, so its complete durable
                            // state is logged (and the same admission check
                            // as Create applies).
                            let stored = durable::capture_tenant(&tenant)?;
                            trace.record(TraceKind::TenantRestored, &tenant.id);
                            dur.touch(&tenant.id);
                            tenants.insert(tenant.id.clone(), tenant);
                            log_record(
                                &tenants,
                                dur,
                                &mut trace,
                                &WalRecord::Restore {
                                    snapshot: Box::new(stored),
                                },
                            );
                        } else {
                            trace.record(TraceKind::TenantRestored, &tenant.id);
                            tenants.insert(tenant.id.clone(), tenant);
                        }
                        Ok(())
                    })
                };
                let _ = reply.send(result);
            }
            Command::Snapshot { tenant, reply } => {
                let resident = ensure_resident(&mut tenants, &mut durable, &mut trace, &tenant);
                let result = match resident {
                    Err(e) => Err(e),
                    Ok(()) => match tenants.get_mut(&tenant) {
                        Some(t) => {
                            trace.record(TraceKind::SnapshotTaken, &tenant);
                            Ok(t.snapshot())
                        }
                        None => Err(ServeError::UnknownTenant(tenant.clone())),
                    },
                };
                if result.is_ok() {
                    // `Tenant::snapshot` flushed pending feedback; mirror
                    // that mutation in the log so replay flushes too.
                    if let Some(dur) = &mut durable {
                        log_record(
                            &tenants,
                            dur,
                            &mut trace,
                            &WalRecord::Flush {
                                tenant: tenant.clone(),
                            },
                        );
                    }
                }
                let _ = reply.send(result);
            }
            Command::Evict { tenant, reply } => {
                let resident = ensure_resident(&mut tenants, &mut durable, &mut trace, &tenant);
                let result = match resident {
                    Err(e) => Err(e),
                    Ok(()) => match tenants.remove(&tenant) {
                        Some(mut t) => {
                            trace.record(TraceKind::TenantEvicted, &tenant);
                            Ok(t.snapshot())
                        }
                        None => Err(ServeError::UnknownTenant(tenant.clone())),
                    },
                };
                if result.is_ok() {
                    if let Some(dur) = &mut durable {
                        dur.forget(&tenant);
                        log_record(
                            &tenants,
                            dur,
                            &mut trace,
                            &WalRecord::Removed {
                                tenant: tenant.clone(),
                            },
                        );
                    }
                }
                let _ = reply.send(result);
            }
            Command::Metrics { reply } => {
                // Shard-wide reads cover the disk tier too: rehydrate first
                // so a capped engine reports exactly what an uncapped one
                // would (the cap is re-enforced after the command).
                rehydrate_all(&mut tenants, &mut durable, &mut trace);
                let mut list: Vec<(TenantId, TenantMetrics)> = tenants
                    .iter()
                    .map(|(id, t)| (id.clone(), t.metrics.clone()))
                    .collect();
                list.sort_by(|a, b| a.0.cmp(&b.0));
                let _ = reply.send(ShardReport {
                    metrics: metrics.clone(),
                    tenants: list,
                });
            }
            Command::Telemetry { tenant, reply } => {
                let resident = ensure_resident(&mut tenants, &mut durable, &mut trace, &tenant);
                let result = match resident {
                    Err(e) => Err(e),
                    Ok(()) => match tenants.get(&tenant) {
                        Some(t) => Ok(t.telemetry()),
                        None => Err(ServeError::UnknownTenant(tenant)),
                    },
                };
                let _ = reply.send(result);
            }
            Command::TelemetryAll { reply } => {
                rehydrate_all(&mut tenants, &mut durable, &mut trace);
                let mut list: Vec<TenantTelemetry> =
                    tenants.values().map(Tenant::telemetry).collect();
                list.sort_by(|a, b| a.id.cmp(&b.id));
                let _ = reply.send(list);
            }
            Command::Trace { reply } => {
                let mut out = Vec::new();
                trace.drain_into(&mut out);
                let _ = reply.send(out);
            }
            Command::StoreMetrics { reply } => {
                let _ = reply.send(durable.as_ref().map(|d| *d.store.metrics()));
            }
            Command::Drain { reply } => {
                // Drain flushes *every* tenant, disk tier included, so a
                // capped engine's policies end up bit-exact with an uncapped
                // one's.
                rehydrate_all(&mut tenants, &mut durable, &mut trace);
                // Flush in sorted id order so any traced flush events land in
                // a deterministic order (HashMap iteration order is not).
                let mut ids: Vec<TenantId> = tenants.keys().cloned().collect();
                ids.sort();
                for id in ids {
                    if let Some(tenant) = tenants.get_mut(&id) {
                        let applied = tenant.flush_pending();
                        if applied > 0 {
                            trace.record(TraceKind::FlushApplied { events: applied }, &id);
                        }
                    }
                }
                if let Some(dur) = &mut durable {
                    log_record(&tenants, dur, &mut trace, &WalRecord::Drain);
                    // The drain ack is a barrier; make it a durability point
                    // too, regardless of the fsync batching schedule.
                    dur.store
                        .sync()
                        .unwrap_or_else(|e| panic!("wal sync failed: {e}"));
                }
                let _ = reply.send(());
            }
            Command::Shutdown => {
                if let Some(dur) = &mut durable {
                    dur.store
                        .sync()
                        .unwrap_or_else(|e| panic!("wal sync failed: {e}"));
                }
                break;
            }
        }
        enforce_cap(&mut tenants, &mut durable, &mut trace);
    }
}

/// Serves one decision into reply slot `slot`, growing the buffer by one if
/// the batch is larger than the recycled buffer. A warm `Ok` slot is filled
/// strictly in place (no allocation when its buffers fit); an `Err` slot is
/// reset to a blank reply first.
fn decide_into_slot(
    tenant: &mut Tenant,
    replies: &mut Vec<Result<DecideReply, ServeError>>,
    slot: usize,
    stages: Option<(&mut StageClock, &mut netband_obs::StageTimings)>,
) {
    if slot == replies.len() {
        replies.push(Ok(DecideReply::blank()));
    }
    let entry = &mut replies[slot];
    if entry.is_err() {
        *entry = Ok(DecideReply::blank());
    }
    let Ok(reply) = entry else {
        unreachable!("slot was just reset to Ok");
    };
    if let Err(e) = tenant.decide_into(reply, stages) {
        *entry = Err(e);
    }
}
