//! Shard actor loop: one worker thread owning a disjoint set of tenants.
//!
//! A shard is a plain `std::thread` draining a bounded command channel — the
//! repo's `std`-only threading convention (no async runtime in the vendored
//! dependency set). All tenant state is thread-local to the shard, so the hot
//! path takes no locks; the bounded channel provides backpressure to clients.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Instant;

use crate::api::{DecideReply, FeedbackEvent, ServeError, TenantId};
use crate::metrics::{ShardMetrics, TenantMetrics};
use crate::snapshot::TenantSnapshot;
use crate::tenant::{Tenant, TenantSpec};

/// A command addressed to one shard. Fire-and-forget commands (`Feedback`,
/// `Flush`) carry no reply channel; failures are counted in
/// [`ShardMetrics::rejected`].
pub(crate) enum Command {
    Decide {
        tenant: TenantId,
        reply: SyncSender<Result<DecideReply, ServeError>>,
    },
    Feedback {
        tenant: TenantId,
        round: u64,
        event: FeedbackEvent,
    },
    Flush {
        tenant: TenantId,
    },
    Create {
        spec: Box<TenantSpec>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Restore {
        snapshot: Box<TenantSnapshot>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Snapshot {
        tenant: TenantId,
        reply: SyncSender<Result<TenantSnapshot, ServeError>>,
    },
    Evict {
        tenant: TenantId,
        reply: SyncSender<Result<TenantSnapshot, ServeError>>,
    },
    Metrics {
        reply: SyncSender<ShardReport>,
    },
    /// Flush every tenant's pending feedback; the ack doubles as a queue
    /// barrier (everything enqueued before it has been processed).
    Drain {
        reply: SyncSender<()>,
    },
    Shutdown,
}

/// One shard's contribution to a [`crate::MetricsReport`].
pub(crate) struct ShardReport {
    pub(crate) metrics: ShardMetrics,
    pub(crate) tenants: Vec<(TenantId, TenantMetrics)>,
}

/// The shard actor loop. Runs until `Shutdown` arrives or every sender is
/// dropped.
pub(crate) fn shard_loop(commands: Receiver<Command>) {
    let mut tenants: HashMap<TenantId, Tenant> = HashMap::new();
    let mut metrics = ShardMetrics::default();
    while let Ok(command) = commands.recv() {
        metrics.commands += 1;
        match command {
            Command::Decide { tenant, reply } => {
                let start = Instant::now();
                let result = match tenants.get_mut(&tenant) {
                    Some(t) => t.decide(),
                    None => Err(ServeError::UnknownTenant(tenant)),
                };
                metrics.decide_latency.record(start.elapsed());
                // A disconnected caller is not a shard failure.
                let _ = reply.send(result);
            }
            Command::Feedback {
                tenant,
                round,
                event,
            } => {
                let start = Instant::now();
                match tenants.get_mut(&tenant) {
                    Some(t) => {
                        if t.feedback(round, event).is_err() {
                            metrics.rejected += 1;
                        }
                    }
                    None => metrics.rejected += 1,
                }
                metrics.feedback_latency.record(start.elapsed());
            }
            Command::Flush { tenant } => match tenants.get_mut(&tenant) {
                Some(t) => t.flush_pending(),
                None => metrics.rejected += 1,
            },
            Command::Create { spec, reply } => {
                let result = if tenants.contains_key(spec.id()) {
                    Err(ServeError::DuplicateTenant(spec.id().to_owned()))
                } else {
                    Tenant::new(*spec).map(|tenant| {
                        tenants.insert(tenant.id.clone(), tenant);
                    })
                };
                let _ = reply.send(result);
            }
            Command::Restore { snapshot, reply } => {
                let result = if tenants.contains_key(snapshot.id()) {
                    Err(ServeError::DuplicateTenant(snapshot.id().to_owned()))
                } else {
                    Tenant::from_snapshot(*snapshot).map(|tenant| {
                        tenants.insert(tenant.id.clone(), tenant);
                    })
                };
                let _ = reply.send(result);
            }
            Command::Snapshot { tenant, reply } => {
                let result = match tenants.get_mut(&tenant) {
                    Some(t) => Ok(t.snapshot()),
                    None => Err(ServeError::UnknownTenant(tenant)),
                };
                let _ = reply.send(result);
            }
            Command::Evict { tenant, reply } => {
                let result = match tenants.remove(&tenant) {
                    Some(mut t) => Ok(t.snapshot()),
                    None => Err(ServeError::UnknownTenant(tenant)),
                };
                let _ = reply.send(result);
            }
            Command::Metrics { reply } => {
                let mut list: Vec<(TenantId, TenantMetrics)> = tenants
                    .iter()
                    .map(|(id, t)| (id.clone(), t.metrics.clone()))
                    .collect();
                list.sort_by(|a, b| a.0.cmp(&b.0));
                let _ = reply.send(ShardReport {
                    metrics: metrics.clone(),
                    tenants: list,
                });
            }
            Command::Drain { reply } => {
                for tenant in tenants.values_mut() {
                    tenant.flush_pending();
                }
                let _ = reply.send(());
            }
            Command::Shutdown => break,
        }
    }
}
