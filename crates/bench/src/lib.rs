//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench regenerates one of the paper's figures at a reduced scale (so a
//! full `cargo bench` stays in the minutes range) and reports the wall-clock
//! cost of the corresponding simulation; the figure-quality runs are produced by
//! the `netband-experiments` binaries instead.

use netband_experiments::Scale;

/// The scale used by the figure benches: large enough for the regret trends to
/// be visible, small enough for Criterion's repeated sampling.
pub fn bench_scale() -> Scale {
    Scale {
        horizon: 300,
        replications: 1,
    }
}
