//! Ablation A bench: the density sweep at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use netband_bench::bench_scale;
use netband_experiments::ablation_density::{run, DensityConfig};

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_density");
    group.sample_size(10);
    let config = DensityConfig {
        num_arms: 25,
        densities: vec![0.1, 0.5, 0.9],
        scale: bench_scale(),
        base_seed: 7_100,
    };
    group.bench_function("density_sweep", |b| {
        b.iter(|| {
            let rows = run(&config);
            std::hint::black_box(rows.len());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
