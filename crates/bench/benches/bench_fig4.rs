//! Figure 4 bench: DFL-CSO under sparse and dense relation graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use netband_bench::bench_scale;
use netband_experiments::fig4::{run, Fig4Config};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    let config = Fig4Config {
        num_arms: 10,
        scale: bench_scale(),
        ..Fig4Config::default()
    };
    group.bench_function("dfl_cso_sparse_vs_dense", |b| {
        b.iter(|| {
            let result = run(&config);
            std::hint::black_box(result.dense.final_regret_mean());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
