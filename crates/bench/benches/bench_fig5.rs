//! Figure 5 bench: DFL-SSR on the paper's random workload.

use criterion::{criterion_group, criterion_main, Criterion};
use netband_bench::bench_scale;
use netband_experiments::fig5::{run, Fig5Config};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let config = Fig5Config {
        num_arms: 50,
        include_baselines: false,
        scale: bench_scale(),
        ..Fig5Config::default()
    };
    group.bench_function("dfl_ssr", |b| {
        b.iter(|| {
            let result = run(&config);
            std::hint::black_box(result.dfl_ssr.final_regret_mean());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
