//! Durable-store bench: WAL append throughput across fsync schedules, and
//! recovery time as a function of WAL length.
//!
//! Like `bench_serve` this is a hand-rolled harness (`harness = false`): the
//! quantities of interest are wall-clock file-system rates, not Criterion's
//! statistical sampling of a pure function.
//!
//! Two sweeps:
//!
//! * **appends/sec** — a raw [`ShardStore`] logging representative feedback
//!   records under `sync_every` ∈ {1, 64, 1024}. `sync_every = 1` is the
//!   default durability contract (every acknowledged mutation fsynced);
//!   the larger schedules show what batching buys, since the fsync — not
//!   the framing, checksum, or JSON encoding — dominates the append.
//! * **recovery-time vs WAL length** — a durable single-shard engine serves
//!   N closed-loop rounds with compaction disabled (so the WAL holds the
//!   whole history), is abandoned mid-flight like a killed process, and the
//!   next `ServeEngine::try_start` on the same directory is timed: snapshot
//!   load + WAL-tail replay through the ordinary decide/feedback paths,
//!   decisions regenerated from the persisted RNG state.
//!
//! Every full run prints both tables and writes `BENCH_store.json` at the
//! workspace root — the checked-in durability perf trajectory. Set
//! `NETBAND_BENCH_FAST=1` for a smoke run (CI) that skips the JSON write and
//! **fails** below conservative floors on the machine-independent cells
//! (batched-fsync appends and replay rate; the `sync_every = 1` cell is
//! reported but never gated — raw fsync latency is hardware).

use std::path::PathBuf;
use std::time::Instant;

use netband_env::SinglePlayFeedback;
use netband_serve::{EngineConfig, RegisterTenantSpec, ServeEngine, StoreConfig};
use netband_spec::{
    ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus, WalRecord, WireEvent,
    WorkloadSpec, SPEC_VERSION,
};
use netband_store::ShardStore;

/// Smoke floor for the batched-fsync append cells (records/sec). A healthy
/// run appends hundreds of thousands per second; this catches a pathological
/// regression (an accidental fsync-per-record, quadratic re-encoding) without
/// judging disk speed.
const FLOOR_BATCHED_APPENDS_PER_SEC: f64 = 20_000.0;

/// Smoke floor for WAL replay (records/sec). Replay decodes strict JSON and
/// re-runs decide/feedback through the engine — far cheaper than the original
/// fsynced serving, far above this floor unless recovery grows a
/// per-record pathology.
const FLOOR_REPLAY_RECORDS_PER_SEC: f64 = 2_000.0;

const SYNC_SCHEDULES: [usize; 3] = [1, 64, 1024];

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("netband_bench_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

struct AppendCell {
    sync_every: usize,
    records: u64,
    elapsed_secs: f64,
    wal_bytes: u64,
}

impl AppendCell {
    fn appends_per_sec(&self) -> f64 {
        self.records as f64 / self.elapsed_secs
    }
}

/// A representative hot-path record: one feedback event with side
/// observations, the document the WAL spends most of its bytes on.
fn feedback_record(round: u64) -> WalRecord {
    WalRecord::Feedback {
        tenant: "bench-tenant".into(),
        round,
        event: WireEvent::Single(SinglePlayFeedback {
            arm: (round % 10) as usize,
            direct_reward: 1.0,
            side_reward: 0.5,
            observations: vec![((round % 7) as usize, 1.0), ((round % 3) as usize, 0.0)],
        }),
    }
}

fn run_append_cell(sync_every: usize, records: u64) -> AppendCell {
    let scratch = Scratch::new(&format!("append_{sync_every}"));
    let config = StoreConfig::new(&scratch.0)
        .with_sync_every(sync_every)
        .with_compact_every(u64::MAX);
    let (mut store, recovery) = ShardStore::open(&config, 0).expect("open fresh store");
    assert!(recovery.is_genesis());
    let start = Instant::now();
    for round in 0..records {
        store
            .append(&feedback_record(round + 1))
            .expect("append record");
    }
    store.sync().expect("final sync");
    let elapsed_secs = start.elapsed().as_secs_f64();
    let wal_bytes = store.wal_bytes();
    assert_eq!(store.metrics().appends, records);
    AppendCell {
        sync_every,
        records,
        elapsed_secs,
        wal_bytes,
    }
}

struct RecoveryCell {
    rounds: u64,
    wal_records: u64,
    recovery_secs: f64,
}

impl RecoveryCell {
    fn records_per_sec(&self) -> f64 {
        self.wal_records as f64 / self.recovery_secs
    }
}

/// The recovery workload's scenario: the golden fixture's shape (ER graph,
/// Bernoulli arms, DFL-SSO, immediate feedback) sized to the cell's horizon.
fn recovery_scenario(horizon: usize) -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name: "bench/store-recovery".into(),
        workload: WorkloadSpec {
            graph: GraphSpec::ErdosRenyi {
                num_arms: 12,
                edge_prob: 0.35,
            },
            arms: ArmsSpec::UniformMeanBernoulli { num_arms: 12 },
            family: None,
            drift: None,
            seed: 42,
        },
        policy: PolicySpec::DflSso,
        side_bonus: SideBonus::Observation,
        horizon,
        replications: 1,
        seed: 1007,
        feedback: FeedbackSpec::Immediate,
    }
}

fn run_recovery_cell(rounds: u64) -> RecoveryCell {
    let scratch = Scratch::new(&format!("recover_{rounds}"));
    // Compaction disabled: the WAL keeps the whole history, so the cell
    // measures replay cost as a pure function of log length. Fsyncs batch —
    // the serving phase is setup, not the measurement.
    let config = EngineConfig::new(1).with_store(
        StoreConfig::new(&scratch.0)
            .with_sync_every(64)
            .with_compact_every(u64::MAX),
    );
    let engine = ServeEngine::start(config.clone());
    engine
        .register_tenant_spec(&RegisterTenantSpec::new(
            "bench-recovery",
            recovery_scenario(rounds as usize),
        ))
        .expect("register tenant");
    for _ in 0..rounds {
        let reply = engine.decide("bench-recovery").expect("decide");
        let event = reply.feedback.expect("echoed feedback");
        engine
            .feedback("bench-recovery", reply.round, event)
            .expect("feedback");
    }
    // Abandon the engine at a command boundary, exactly like a killed
    // process: queue drained (the metrics call is a barrier), nothing
    // flushed or synced beyond what serving already wrote.
    engine.metrics().expect("barrier before abandoning");
    std::mem::forget(engine);

    let start = Instant::now();
    let recovered = ServeEngine::try_start(config).expect("recover from disk");
    let recovery_secs = start.elapsed().as_secs_f64();
    let telemetry = recovered
        .telemetry("bench-recovery")
        .expect("recovered tenant");
    assert_eq!(telemetry.round, rounds, "recovery lost rounds");
    let store = recovered
        .store_metrics()
        .expect("store metrics")
        .expect("engine has a store");
    // register + rounds × (decide + feedback), all replayed from the WAL.
    let wal_records = store.recovered_records;
    assert_eq!(wal_records, 1 + 2 * rounds, "unexpected WAL shape");
    recovered.shutdown();
    RecoveryCell {
        rounds,
        wal_records,
        recovery_secs,
    }
}

fn workspace_root() -> PathBuf {
    // crates/bench → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn write_json(appends: &[AppendCell], recoveries: &[RecoveryCell]) {
    let append_rows: Vec<String> = appends
        .iter()
        .map(|c| {
            format!(
                "    {{ \"sync_every\": {}, \"records\": {}, \"elapsed_secs\": {:.4}, \
                 \"appends_per_sec\": {:.0}, \"wal_bytes\": {} }}",
                c.sync_every,
                c.records,
                c.elapsed_secs,
                c.appends_per_sec(),
                c.wal_bytes
            )
        })
        .collect();
    let recovery_rows: Vec<String> = recoveries
        .iter()
        .map(|c| {
            format!(
                "    {{ \"rounds\": {}, \"wal_records\": {}, \"recovery_secs\": {:.4}, \
                 \"replay_records_per_sec\": {:.0} }}",
                c.rounds,
                c.wal_records,
                c.recovery_secs,
                c.records_per_sec()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"store_durability\",\n  \"appends\": [\n{}\n  ],\n  \
         \"recovery\": [\n{}\n  ]\n}}\n",
        append_rows.join(",\n"),
        recovery_rows.join(",\n")
    );
    let path = workspace_root().join("BENCH_store.json");
    std::fs::write(&path, json).expect("write BENCH_store.json");
    println!("wrote {}", path.display());
}

fn main() {
    let fast = std::env::var_os("NETBAND_BENCH_FAST").is_some();
    let append_records: u64 = if fast { 2_000 } else { 20_000 };
    let recovery_rounds: &[u64] = if fast {
        &[200, 800]
    } else {
        &[1_000, 4_000, 16_000]
    };

    println!(
        "store durability: {append_records} appends per schedule{}",
        if fast { " (fast smoke)" } else { "" }
    );
    println!(
        "{:>11} {:>9} {:>9} {:>15} {:>11}",
        "sync_every", "records", "secs", "appends/sec", "wal_bytes"
    );
    let mut appends = Vec::new();
    for &sync_every in &SYNC_SCHEDULES {
        let cell = run_append_cell(sync_every, append_records);
        println!(
            "{:>11} {:>9} {:>9.3} {:>15.0} {:>11}",
            cell.sync_every,
            cell.records,
            cell.elapsed_secs,
            cell.appends_per_sec(),
            cell.wal_bytes
        );
        appends.push(cell);
    }

    println!(
        "\nrecovery time vs WAL length (1 tenant, compaction off, decisions \
         regenerated on replay):"
    );
    println!(
        "{:>9} {:>12} {:>13} {:>17}",
        "rounds", "wal_records", "recovery_secs", "replay_records/s"
    );
    let mut recoveries = Vec::new();
    for &rounds in recovery_rounds {
        let cell = run_recovery_cell(rounds);
        println!(
            "{:>9} {:>12} {:>13.4} {:>17.0}",
            cell.rounds,
            cell.wal_records,
            cell.recovery_secs,
            cell.records_per_sec()
        );
        recoveries.push(cell);
    }

    if fast {
        // CI smoke gates on the machine-independent cells only.
        for cell in appends.iter().filter(|c| c.sync_every > 1) {
            assert!(
                cell.appends_per_sec() >= FLOOR_BATCHED_APPENDS_PER_SEC,
                "WAL append regression: sync_every={} ran at {:.0} appends/sec, below \
                 the {FLOOR_BATCHED_APPENDS_PER_SEC:.0}/sec floor",
                cell.sync_every,
                cell.appends_per_sec()
            );
        }
        for cell in &recoveries {
            assert!(
                cell.records_per_sec() >= FLOOR_REPLAY_RECORDS_PER_SEC,
                "recovery replay regression: {} WAL records replayed at {:.0} \
                 records/sec, below the {FLOOR_REPLAY_RECORDS_PER_SEC:.0}/sec floor",
                cell.wal_records,
                cell.records_per_sec()
            );
        }
        println!(
            "smoke floor ok: batched appends >= {FLOOR_BATCHED_APPENDS_PER_SEC:.0}/sec, \
             replay >= {FLOOR_REPLAY_RECORDS_PER_SEC:.0} records/sec"
        );
    } else {
        write_json(&appends, &recoveries);
    }
}
