//! Micro-benchmarks of the spec pipeline: JSON parse and scenario build cost
//! per workload preset.
//!
//! The declarative front door (`netband-spec`) sits ahead of every consumer —
//! the simulator's `run_spec`, the serving engine's fleet boot, and the
//! experiment grids — so its constant costs are tracked here alongside the
//! serving and figure benches: parsing a `ScenarioSpec` document, building a
//! scenario (graph + arm bank + policy), and the combined
//! parse→build→first-decide path a cold fleet boot pays per tenant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netband_env::{ChangePoint, DriftSchedule, GradualDrift};
use netband_spec::{presets, ScenarioSpec};

/// The four presets at serving-demo scale, with their report labels.
fn preset_specs() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("paper_simulation", presets::paper_simulation(12, 0.35, 300)),
        (
            "online_advertising",
            presets::online_advertising(12, 3, 301),
        ),
        ("social_promotion", presets::social_promotion(16, 3, 302)),
        ("channel_access", presets::channel_access(12, 3, 0.35, 303)),
    ]
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_parse");
    for (name, spec) in preset_specs() {
        let text = spec.to_json_text();
        group.bench_with_input(BenchmarkId::new("json", name), &text, |b, text| {
            b.iter(|| std::hint::black_box(ScenarioSpec::from_json_text(text).unwrap()))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_build");
    for (name, spec) in preset_specs() {
        group.bench_with_input(BenchmarkId::new("scenario", name), &spec, |b, spec| {
            b.iter(|| std::hint::black_box(spec.build().unwrap().bandit.num_arms()))
        });
    }
    group.finish();
}

fn bench_parse_build_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_cold_boot");
    for (name, spec) in preset_specs() {
        let text = spec.to_json_text();
        group.bench_with_input(BenchmarkId::new("tenant", name), &text, |b, text| {
            b.iter(|| {
                let spec = ScenarioSpec::from_json_text(text).unwrap();
                let mut built = spec.build().unwrap();
                // The first decision a freshly booted tenant serves.
                let decision = match &mut built.policy {
                    netband_spec::AnyPolicy::Single(p) => vec![p.select_arm(1)],
                    netband_spec::AnyPolicy::Combinatorial(p) => p.select_strategy(1),
                };
                std::hint::black_box(decision.len())
            })
        });
    }
    group.finish();
}

/// Cost of nonstationarity: the per-round drifted-mean evaluation, and the
/// end-to-end overhead a drifting scenario pays over its stationary twin.
fn bench_drift(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_drift");

    // Per-round cost of evaluating a full drift schedule (rotation + sinusoid
    // + churn) into a preallocated buffer — the hot-loop increment every
    // drifted round pays on top of the stationary step.
    let schedule = DriftSchedule {
        gradual: Some(GradualDrift {
            amplitude: 0.1,
            period: 500,
        }),
        change_points: vec![ChangePoint {
            round: 1_000,
            rotation: 6,
        }],
        churn: Vec::new(),
    };
    let base: Vec<f64> = (0..64).map(|i| 0.2 + 0.6 * (i as f64) / 63.0).collect();
    let mut out = vec![0.0; base.len()];
    group.bench_function("means_at/64_arms", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            schedule.means_at(&base, t, &mut out);
            std::hint::black_box(out[0])
        })
    });

    // End-to-end: the same CTS-D workload with and without a change point,
    // through the declarative front door.
    let config = netband_experiments::drift_exp::DriftConfig {
        scale: netband_experiments::Scale {
            horizon: 2_000,
            replications: 1,
        },
        ..Default::default()
    };
    let panel = netband_experiments::drift_exp::policy_panel(7);
    let (_, cts_d) = panel
        .into_iter()
        .find(|(label, _)| *label == "cts-d")
        .expect("panel always carries the discounted variant");
    let drifted = netband_experiments::drift_exp::cell_spec(&config, cts_d, 11);
    let mut stationary = drifted.clone();
    stationary.workload.drift = None;
    for (name, spec) in [("stationary", &stationary), ("change_point", &drifted)] {
        group.bench_with_input(BenchmarkId::new("run_cts_d", name), spec, |b, spec| {
            b.iter(|| std::hint::black_box(netband_sim::run_spec(spec).unwrap().total_reward))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_build,
    bench_parse_build_decide,
    bench_drift
);
criterion_main!(benches);
