//! Micro-benchmarks of the spec pipeline: JSON parse and scenario build cost
//! per workload preset.
//!
//! The declarative front door (`netband-spec`) sits ahead of every consumer —
//! the simulator's `run_spec`, the serving engine's fleet boot, and the
//! experiment grids — so its constant costs are tracked here alongside the
//! serving and figure benches: parsing a `ScenarioSpec` document, building a
//! scenario (graph + arm bank + policy), and the combined
//! parse→build→first-decide path a cold fleet boot pays per tenant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netband_spec::{presets, ScenarioSpec};

/// The four presets at serving-demo scale, with their report labels.
fn preset_specs() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("paper_simulation", presets::paper_simulation(12, 0.35, 300)),
        (
            "online_advertising",
            presets::online_advertising(12, 3, 301),
        ),
        ("social_promotion", presets::social_promotion(16, 3, 302)),
        ("channel_access", presets::channel_access(12, 3, 0.35, 303)),
    ]
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_parse");
    for (name, spec) in preset_specs() {
        let text = spec.to_json_text();
        group.bench_with_input(BenchmarkId::new("json", name), &text, |b, text| {
            b.iter(|| std::hint::black_box(ScenarioSpec::from_json_text(text).unwrap()))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_build");
    for (name, spec) in preset_specs() {
        group.bench_with_input(BenchmarkId::new("scenario", name), &spec, |b, spec| {
            b.iter(|| std::hint::black_box(spec.build().unwrap().bandit.num_arms()))
        });
    }
    group.finish();
}

fn bench_parse_build_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_cold_boot");
    for (name, spec) in preset_specs() {
        let text = spec.to_json_text();
        group.bench_with_input(BenchmarkId::new("tenant", name), &text, |b, text| {
            b.iter(|| {
                let spec = ScenarioSpec::from_json_text(text).unwrap();
                let mut built = spec.build().unwrap();
                // The first decision a freshly booted tenant serves.
                let decision = match &mut built.policy {
                    netband_spec::AnyPolicy::Single(p) => vec![p.select_arm(1)],
                    netband_spec::AnyPolicy::Combinatorial(p) => p.select_strategy(1),
                };
                std::hint::black_box(decision.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_build, bench_parse_build_decide);
criterion_main!(benches);
