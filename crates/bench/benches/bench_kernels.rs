//! Score-kernel micro-bench: ns/arm for the chunked kernels of
//! `netband_core::kernels` at 8 / 64 / 1024 arms, their scalar references,
//! and the two oracle-scan workloads the kernels feed
//! (`enumerated_oracle_scan`, `oracle_argmax_neighborhood`).
//!
//! Hand-rolled harness (`harness = false`): each measurement spins the kernel
//! in a wall-clock loop until the sample is long enough to trust, then writes
//! `BENCH_kernels.json` at the workspace root — the checked-in kernel perf
//! trajectory. Set `NETBAND_BENCH_FAST=1` for the CI smoke run: it skips the
//! JSON write and fails only on *pathological* regressions (generous absolute
//! ns/arm ceilings, not machine-tuned ratios).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use netband_core::kernels;
use netband_env::feasible::FeasibleSet;
use netband_env::StrategyFamily;
use netband_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [usize; 3] = [8, 64, 1024];
const T: usize = 9_999;

/// Smoke-mode ceiling on any chunked kernel, ns per arm at 1024 arms. A
/// healthy release build runs these at a few ns/arm; tripping this means the
/// sweep picked up an accidental per-arm allocation or `ln` recomputation.
const FLOOR_NS_PER_ARM: f64 = 100.0;
/// Smoke-mode ceilings for the oracle workloads (ns per call).
const FLOOR_ENUMERATED_SCAN_NS: f64 = 100_000.0;
const FLOOR_NEIGHBORHOOD_NS: f64 = 10_000_000.0;

/// Wall-clock ns per call of `f`, measured over a loop long enough to trust
/// (smoke mode trims the sample to keep CI fast).
fn measure(fast: bool, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let budget = Duration::from_millis(if fast { 2 } else { 25 });
    let mut iters = 8u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= budget || iters >= 1 << 24 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 4;
    }
}

/// Deterministic per-arm state: means in `[0, 1)`, counts with a sprinkling
/// of zeros (unplayed-arm sentinel paths), matching sums of squares.
fn arm_state(n: usize) -> (Vec<f64>, Vec<u64>, Vec<f64>) {
    let means: Vec<f64> = (0..n).map(|i| ((i * 31) % 100) as f64 / 100.0).collect();
    let counts: Vec<u64> = (0..n).map(|i| ((i * 7) % 37) as u64).collect();
    let sum_sq: Vec<f64> = (0..n)
        .map(|i| means[i] * means[i] * counts[i] as f64)
        .collect();
    (means, counts, sum_sq)
}

struct KernelRow {
    kernel: &'static str,
    arms: usize,
    ns_per_call: f64,
}

struct OracleRow {
    name: &'static str,
    ns_per_call: f64,
}

fn run_kernels(fast: bool) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for &n in &SIZES {
        let (means, counts, sum_sq) = arm_state(n);
        let mut out = Vec::with_capacity(n);
        let mut push = |kernel: &'static str, ns: f64| {
            rows.push(KernelRow {
                kernel,
                arms: n,
                ns_per_call: ns,
            });
        };
        push(
            "moss_scores_scalar",
            measure(fast, || {
                kernels::moss_scores_scalar(&means, &counts, T, n, &mut out);
                std::hint::black_box(out.last());
            }),
        );
        push(
            "moss_scores_chunked",
            measure(fast, || {
                kernels::moss_scores_into(&means, &counts, T, n, &mut out);
                std::hint::black_box(out.last());
            }),
        );
        push(
            "moss_argmax_fused",
            measure(fast, || {
                std::hint::black_box(kernels::moss_argmax(&means, &counts, T, n));
            }),
        );
        push(
            "csr_scores_scalar",
            measure(fast, || {
                kernels::csr_scores_scalar(&means, &counts, T, n, &mut out);
                std::hint::black_box(out.last());
            }),
        );
        push(
            "csr_scores_chunked",
            measure(fast, || {
                kernels::csr_scores_into(&means, &counts, T, n, &mut out);
                std::hint::black_box(out.last());
            }),
        );
        push(
            "ucb1_argmax_fused",
            measure(fast, || {
                std::hint::black_box(kernels::ucb1_argmax(&means, &counts, T));
            }),
        );
        push(
            "ucb_tuned_argmax_fused",
            measure(fast, || {
                std::hint::black_box(kernels::ucb_tuned_argmax(&means, &counts, &sum_sq, T));
            }),
        );
        push(
            "cucb_scores_chunked",
            measure(fast, || {
                kernels::cucb_scores_into(&means, &counts, T, &mut out);
                std::hint::black_box(out.last());
            }),
        );
        push(
            "llr_scores_chunked",
            measure(fast, || {
                kernels::llr_scores_into(&means, &counts, 3, T, &mut out);
                std::hint::black_box(out.last());
            }),
        );
    }
    rows
}

fn run_oracles(fast: bool) -> Vec<OracleRow> {
    let mut rows = Vec::new();

    // The enumerated-family argmax workload of `bench_primitives`: a fixed
    // independent-set bank scanned with a precomputed per-arm score table.
    let mut rng = StdRng::seed_from_u64(8);
    let graph = generators::erdos_renyi(18, 0.35, &mut rng);
    let bank = StrategyFamily::independent_sets(3)
        .enumerate(&graph)
        .expect("bench family is enumerable");
    let explicit = StrategyFamily::explicit(bank);
    let weights: Vec<f64> = (0..18).map(|i| ((i * 7919) % 100) as f64 / 100.0).collect();
    rows.push(OracleRow {
        name: "enumerated_oracle_scan",
        ns_per_call: measure(fast, || {
            std::hint::black_box(
                explicit
                    .argmax_by_arm_weights(&weights, &graph)
                    .expect("non-empty family")
                    .len(),
            );
        }),
    });

    // The neighbourhood-objective oracle (mark-table union per row).
    let mut rng = StdRng::seed_from_u64(3);
    let graph = generators::erdos_renyi(20, 0.3, &mut rng);
    let family = StrategyFamily::at_most_m(20, 3);
    let weights: Vec<f64> = (0..20).map(|i| (i as f64) / 20.0).collect();
    rows.push(OracleRow {
        name: "oracle_argmax_neighborhood",
        ns_per_call: measure(fast, || {
            std::hint::black_box(
                family
                    .argmax_by_neighborhood_weights(&weights, &graph)
                    .expect("non-empty family")
                    .len(),
            );
        }),
    });
    rows
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn write_json(kernels: &[KernelRow], oracles: &[OracleRow]) {
    let kernel_rows: Vec<String> = kernels
        .iter()
        .map(|r| {
            format!(
                "    {{ \"kernel\": \"{}\", \"arms\": {}, \"ns_per_call\": {:.1}, \
                 \"ns_per_arm\": {:.3} }}",
                r.kernel,
                r.arms,
                r.ns_per_call,
                r.ns_per_call / r.arms as f64
            )
        })
        .collect();
    let oracle_rows: Vec<String> = oracles
        .iter()
        .map(|r| {
            format!(
                "    {{ \"name\": \"{}\", \"ns_per_call\": {:.1} }}",
                r.name, r.ns_per_call
            )
        })
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"score_kernels\",\n  \"t\": {T},\n  \
         \"available_parallelism\": {cores},\n  \"kernels\": [\n{}\n  ],\n  \
         \"oracles\": [\n{}\n  ]\n}}\n",
        kernel_rows.join(",\n"),
        oracle_rows.join(",\n")
    );
    let path = workspace_root().join("BENCH_kernels.json");
    std::fs::write(&path, json).expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());
}

fn main() {
    let fast = std::env::var_os("NETBAND_BENCH_FAST").is_some();
    println!(
        "score kernels: sizes {SIZES:?}, t = {T}{}",
        if fast { " (fast smoke)" } else { "" }
    );

    let kernel_rows = run_kernels(fast);
    println!(
        "{:>24} {:>6} {:>12} {:>10}",
        "kernel", "arms", "ns/call", "ns/arm"
    );
    for r in &kernel_rows {
        println!(
            "{:>24} {:>6} {:>12.1} {:>10.3}",
            r.kernel,
            r.arms,
            r.ns_per_call,
            r.ns_per_call / r.arms as f64
        );
    }
    let oracle_rows = run_oracles(fast);
    for r in &oracle_rows {
        println!("{:>24} {:>12.1} ns/call", r.name, r.ns_per_call);
    }

    if fast {
        for r in kernel_rows.iter().filter(|r| r.arms == 1024) {
            let ns_per_arm = r.ns_per_call / r.arms as f64;
            assert!(
                ns_per_arm <= FLOOR_NS_PER_ARM,
                "kernel regression: {} ran at {ns_per_arm:.1} ns/arm at 1024 arms, \
                 above the {FLOOR_NS_PER_ARM} ns/arm ceiling",
                r.kernel
            );
        }
        let by_name = |name: &str| {
            oracle_rows
                .iter()
                .find(|r| r.name == name)
                .expect("oracle row")
                .ns_per_call
        };
        assert!(
            by_name("enumerated_oracle_scan") <= FLOOR_ENUMERATED_SCAN_NS,
            "enumerated oracle scan regressed past {FLOOR_ENUMERATED_SCAN_NS} ns"
        );
        assert!(
            by_name("oracle_argmax_neighborhood") <= FLOOR_NEIGHBORHOOD_NS,
            "neighborhood oracle regressed past {FLOOR_NEIGHBORHOOD_NS} ns"
        );
        println!("smoke ceilings ok");
    } else {
        write_json(&kernel_rows, &oracle_rows);
    }
}
