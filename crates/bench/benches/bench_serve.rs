//! Serving-engine throughput bench: decides/sec across shard counts, feedback
//! batch sizes, and client APIs (per-call vs batched).
//!
//! Unlike the figure benches this is a hand-rolled harness (`harness = false`
//! with a custom `main`): the quantity of interest is sustained multi-client
//! throughput through the shard command channels, which needs concurrent
//! client threads and wall-clock measurement rather than Criterion's
//! single-threaded sampling.
//!
//! Every run sweeps the shard counts {1, 4, 16} against feedback batch sizes
//! {1, 32, 1024} over 64 single-play tenants driven by 16 client threads with
//! delayed, out-of-order feedback — through the per-call
//! `ServeEngine::decide`/`feedback` API, the batched
//! `ServeClient::decide_many`/`feedback_many` API (one channel round-trip per
//! window), and the mixed fan-out `ServeClient::decide_many_mixed` (each
//! client batches all its tenants into one request that fans across every
//! target shard concurrently) — prints a table, and writes the results to
//! `BENCH_serve.json` at the workspace root — the checked-in serving perf
//! trajectory (per-shard scaling curves per API, plus the recorded
//! `available_parallelism` to judge them against).
//!
//! Set `NETBAND_BENCH_FAST=1` for a smoke run (CI) that skips the JSON write
//! and **fails** if any cell's throughput drops below [`FLOOR_DECIDES_PER_SEC`]
//! — a conservative floor that catches pathological hot-path regressions
//! without judging machine-dependent shard scaling — or if the batched API at
//! window size 1 falls below [`BATCH_1_PARITY`] of the per-call API (the
//! batch-1 degradation gate: the batched client must route 1-element windows
//! through the per-call commands instead of paying the buffer round-trip).

use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netband_core::DflSso;
use netband_env::{ArmSet, NetworkedBandit};
use netband_graph::generators;
use netband_serve::{EngineConfig, FlushPolicy, ServeEngine, TenantSpec};
use netband_sim::SingleScenario;

const TENANTS: usize = 64;
const CLIENTS: usize = 16;
const NUM_ARMS: usize = 10;
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const BATCH_SIZES: [usize; 3] = [1, 32, 1024];

/// Smoke-mode throughput floor (decides/sec) — far below any healthy run
/// (hundreds of thousands per second on one shard), far above a pathological
/// regression such as an accidental per-decide lock or channel storm.
const FLOOR_DECIDES_PER_SEC: f64 = 50_000.0;

/// Smoke-mode floor on `batched / per_call` throughput at window size 1 on
/// one shard. With the batch-1 fast path the ratio sits near (slightly
/// above) 1.0; the regression this pins — batch-1 windows paying the full
/// buffer round-trip — showed up as ~0.85. Kept conservative because smoke
/// runs are short and the container is small.
const BATCH_1_PARITY: f64 = 0.6;

/// Which client API a cell drives the engine through.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Api {
    /// `ServeEngine::decide` / `feedback`: one command + fresh reply channel
    /// per decision.
    PerCall,
    /// `ServeClient::decide_many` / `feedback_many`: one command round-trip
    /// per window, pooled reply channels, recycled buffers.
    Batched,
    /// `ServeClient::decide_many_mixed`: each client thread serves **all** its
    /// tenants per window through one mixed batch fanned out to every target
    /// shard before any reply is collected.
    Mixed,
}

impl Api {
    fn name(self) -> &'static str {
        match self {
            Api::PerCall => "per_call",
            Api::Batched => "batched",
            Api::Mixed => "mixed",
        }
    }
}

struct Cell {
    api: Api,
    shards: usize,
    batch: usize,
    decides: u64,
    elapsed_secs: f64,
}

impl Cell {
    fn decides_per_sec(&self) -> f64 {
        self.decides as f64 / self.elapsed_secs
    }
}

fn tenant_spec(index: usize, batch: usize) -> TenantSpec {
    let mut rng = StdRng::seed_from_u64(100 + index as u64);
    let graph = generators::erdos_renyi(NUM_ARMS, 0.4, &mut rng);
    let arms = ArmSet::random_bernoulli(NUM_ARMS, &mut rng);
    let bandit = NetworkedBandit::new(graph, arms).expect("bench instance is well-formed");
    TenantSpec::single(
        format!("bench-{index:02}"),
        bandit.clone(),
        DflSso::new(bandit.graph().clone()),
        SingleScenario::SideObservation,
        9000 + index as u64,
    )
    .with_flush(FlushPolicy::batched(batch))
}

/// One client session against one tenant through the per-call API: decide
/// every round, deliver each window of `batch` revealed events in reverse
/// round order.
fn drive_per_call(engine: &ServeEngine, id: &str, rounds: usize, batch: usize) {
    let mut held = Vec::with_capacity(batch);
    for _ in 0..rounds {
        let reply = engine.decide(id).expect("decide");
        held.push((reply.round, reply.feedback.expect("echo")));
        if held.len() >= batch {
            for (round, event) in held.drain(..).rev() {
                engine.feedback(id, round, event).expect("feedback");
            }
        }
    }
    for (round, event) in held.drain(..).rev() {
        engine.feedback(id, round, event).expect("feedback");
    }
}

/// The same session through the batched API: one `decide_many` round-trip per
/// window, then one `feedback_many` command with the window reversed.
fn drive_batched(
    client: &mut netband_serve::ServeClient<'_>,
    id: &str,
    rounds: usize,
    batch: usize,
) {
    let mut replies = Vec::new();
    let mut remaining = rounds;
    while remaining > 0 {
        let chunk = remaining.min(batch);
        client
            .decide_many(id, chunk, &mut replies)
            .expect("decide_many");
        let window = replies.iter_mut().rev().map(|slot| {
            let reply = slot.as_mut().expect("decide");
            (reply.round, reply.feedback.take().expect("echo"))
        });
        client.feedback_many(id, window).expect("feedback_many");
        remaining -= chunk;
    }
}

/// One client thread's whole tenant set through the mixed fan-out API: every
/// window is a single `decide_many_mixed` across all the thread's tenants
/// (partitioned over the shards and served concurrently), then one
/// `feedback_many` per tenant with its window reversed.
fn drive_mixed(
    client: &mut netband_serve::ServeClient<'_>,
    ids: &[String],
    rounds: usize,
    batch: usize,
) {
    let mut replies = Vec::new();
    let mut remaining = rounds;
    while remaining > 0 {
        let chunk = remaining.min(batch);
        client
            .decide_many_mixed(ids.iter().map(|id| (id.as_str(), chunk)), &mut replies)
            .expect("decide_many_mixed");
        // Replies come back in request order: tenant `i` owns the contiguous
        // slot range [i * chunk, (i + 1) * chunk).
        for (i, id) in ids.iter().enumerate() {
            let window = replies[i * chunk..(i + 1) * chunk]
                .iter_mut()
                .rev()
                .map(|slot| {
                    let reply = slot.as_mut().expect("decide");
                    (reply.round, reply.feedback.take().expect("echo"))
                });
            client.feedback_many(id, window).expect("feedback_many");
        }
        remaining -= chunk;
    }
}

/// One sweep cell: an engine with `shards` workers serving `TENANTS` tenants,
/// `CLIENTS` client threads looping decide → (windowed, reversed) feedback
/// through the cell's API.
fn run_cell(api: Api, shards: usize, batch: usize, rounds: usize) -> Cell {
    let engine = ServeEngine::start(EngineConfig::new(shards).with_queue_capacity(256));
    for index in 0..TENANTS {
        engine
            .create_tenant(tenant_spec(index, batch))
            .expect("create bench tenant");
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let engine = &engine;
            scope.spawn(move || {
                let ids: Vec<String> = (client..TENANTS)
                    .step_by(CLIENTS)
                    .map(|index| format!("bench-{index:02}"))
                    .collect();
                match api {
                    Api::PerCall => {
                        for id in &ids {
                            drive_per_call(engine, id, rounds, batch);
                        }
                    }
                    Api::Batched => {
                        let mut c = engine.client();
                        for id in &ids {
                            drive_batched(&mut c, id, rounds, batch);
                        }
                    }
                    Api::Mixed => {
                        let mut c = engine.client();
                        drive_mixed(&mut c, &ids, rounds, batch);
                    }
                }
            });
        }
    });
    engine.drain().expect("drain");
    let elapsed_secs = start.elapsed().as_secs_f64();
    let report = engine.metrics().expect("metrics");
    let decides = report.total_decides();
    assert_eq!(decides, (TENANTS * rounds) as u64);
    assert_eq!(report.total_feedback_events(), decides);
    engine.shutdown();
    Cell {
        api,
        shards,
        batch,
        decides,
        elapsed_secs,
    }
}

fn workspace_root() -> PathBuf {
    // crates/bench → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn write_json(cells: &[Cell], rounds: usize) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"api\": \"{}\", \"shards\": {}, \"feedback_batch\": {}, \
                 \"decides\": {}, \"elapsed_secs\": {:.4}, \"decides_per_sec\": {:.0} }}",
                c.api.name(),
                c.shards,
                c.batch,
                c.decides,
                c.elapsed_secs,
                c.decides_per_sec()
            )
        })
        .collect();
    // Shard scaling is machine-dependent (a 1-core container cannot run
    // shards in parallel at all); record the available parallelism so the
    // checked-in trajectory stays interpretable across machines.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"tenants\": {TENANTS},\n  \
         \"clients\": {CLIENTS},\n  \"num_arms\": {NUM_ARMS},\n  \
         \"rounds_per_tenant\": {rounds},\n  \"available_parallelism\": {cores},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = workspace_root().join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}

fn main() {
    // `cargo bench` forwards harness flags (`--bench`, filters); none apply to
    // this hand-rolled harness.
    let fast = std::env::var_os("NETBAND_BENCH_FAST").is_some();
    let rounds = if fast { 40 } else { 1_500 };

    println!(
        "serve throughput: {TENANTS} tenants x {rounds} rounds, {CLIENTS} clients{}",
        if fast { " (fast smoke)" } else { "" }
    );
    println!(
        "{:>9} {:>7} {:>7} {:>12} {:>10} {:>14}",
        "api", "shards", "batch", "decides", "secs", "decides/sec"
    );
    let mut cells = Vec::new();
    for api in [Api::PerCall, Api::Batched, Api::Mixed] {
        for &shards in &SHARD_COUNTS {
            for &batch in &BATCH_SIZES {
                let cell = run_cell(api, shards, batch, rounds);
                println!(
                    "{:>9} {:>7} {:>7} {:>12} {:>10.3} {:>14.0}",
                    cell.api.name(),
                    cell.shards,
                    cell.batch,
                    cell.decides,
                    cell.elapsed_secs,
                    cell.decides_per_sec()
                );
                cells.push(cell);
            }
        }
    }

    // The headline trajectory number: what batching buys on one shard at the
    // middle window size. Printed, not asserted — absolute numbers are
    // machine-dependent; the committed BENCH_serve.json records them together
    // with available_parallelism.
    let pick = |api: Api, shards: usize| {
        cells
            .iter()
            .find(|c| c.api == api && c.shards == shards && c.batch == 32)
            .unwrap()
    };
    let per_call = pick(Api::PerCall, 1);
    let batched = pick(Api::Batched, 1);
    println!(
        "batching win, 1 shard (batch 32): {:.0} -> {:.0} decides/sec ({:.2}x)",
        per_call.decides_per_sec(),
        batched.decides_per_sec(),
        batched.decides_per_sec() / per_call.decides_per_sec()
    );
    let four = pick(Api::Batched, 4);
    println!(
        "scaling 1 -> 4 shards (batched, batch 32): {:.0} -> {:.0} decides/sec ({:.2}x; \
         judge against available_parallelism)",
        batched.decides_per_sec(),
        four.decides_per_sec(),
        four.decides_per_sec() / batched.decides_per_sec()
    );
    let mixed = pick(Api::Mixed, 4);
    println!(
        "mixed fan-out, 4 shards (batch 32): {:.0} decides/sec ({:.2}x vs batched)",
        mixed.decides_per_sec(),
        mixed.decides_per_sec() / four.decides_per_sec()
    );

    if fast {
        // CI smoke gate: any cell below the conservative floor is a
        // pathological hot-path regression, independent of core count.
        for cell in &cells {
            assert!(
                cell.decides_per_sec() >= FLOOR_DECIDES_PER_SEC,
                "serve throughput regression: {} api, {} shards, batch {} ran at {:.0} \
                 decides/sec, below the {FLOOR_DECIDES_PER_SEC:.0}/sec floor",
                cell.api.name(),
                cell.shards,
                cell.batch,
                cell.decides_per_sec()
            );
        }
        println!("smoke floor ok: every cell >= {FLOOR_DECIDES_PER_SEC:.0} decides/sec");
        // The batch-1 degradation gate.
        let one = |api: Api| {
            cells
                .iter()
                .find(|c| c.api == api && c.shards == 1 && c.batch == 1)
                .unwrap()
                .decides_per_sec()
        };
        let ratio = one(Api::Batched) / one(Api::PerCall);
        assert!(
            ratio >= BATCH_1_PARITY,
            "batch-1 regression: batched ran at {ratio:.2}x per_call (floor {BATCH_1_PARITY})"
        );
        println!("batch-1 parity ok: batched = {ratio:.2}x per_call at window size 1");
    } else {
        write_json(&cells, rounds);
    }
}
