//! Figure 3 bench: MOSS vs DFL-SSO on the paper's random workload.

use criterion::{criterion_group, criterion_main, Criterion};
use netband_bench::bench_scale;
use netband_experiments::fig3::{run, Fig3Config};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    let config = Fig3Config {
        num_arms: 50,
        scale: bench_scale(),
        ..Fig3Config::default()
    };
    group.bench_function("moss_vs_dfl_sso", |b| {
        b.iter(|| {
            let result = run(&config);
            std::hint::black_box(result.dfl_sso.final_regret_mean());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
