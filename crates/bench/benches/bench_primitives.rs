//! Micro-benchmarks of the core primitives: the MOSS index, clique covers,
//! strategy-graph construction, the combinatorial oracles, and environment
//! pulls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netband_core::estimator::moss_index;
use netband_core::kernels;
use netband_core::{DflSso, DflSsr, SinglePlayPolicy};
use netband_env::feasible::FeasibleSet;
use netband_env::{ArmSet, NetworkedBandit, PullBuffer, StrategyFamily};
use netband_graph::{generators, greedy_clique_cover, StrategyRelationGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_index(c: &mut Criterion) {
    c.bench_function("moss_index", |b| {
        b.iter(|| std::hint::black_box(moss_index(0.42, 17, 9_999, 100)))
    });
}

fn bench_score_kernels(c: &mut Criterion) {
    // Chunked score sweeps vs their scalar references, and the fused
    // score+argmax pass, at the batch sizes the policies actually see. The
    // same workloads (plus 1024-arm cells and JSON output) live in the
    // hand-rolled `bench_kernels` harness.
    for &n in &[8usize, 64] {
        let means: Vec<f64> = (0..n).map(|i| ((i * 31) % 100) as f64 / 100.0).collect();
        let counts: Vec<u64> = (0..n).map(|i| ((i * 7) % 37) as u64).collect();
        let name = format!("score_kernels_{n}_arms");
        let mut group = c.benchmark_group(&name);
        group.bench_function("moss_scalar", |b| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                kernels::moss_scores_scalar(&means, &counts, 9_999, n, &mut out);
                std::hint::black_box(out.last().copied())
            })
        });
        group.bench_function("moss_chunked", |b| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                kernels::moss_scores_into(&means, &counts, 9_999, n, &mut out);
                std::hint::black_box(out.last().copied())
            })
        });
        group.bench_function("moss_argmax_fused", |b| {
            b.iter(|| std::hint::black_box(kernels::moss_argmax(&means, &counts, 9_999, n)))
        });
        group.finish();
    }
}

fn bench_clique_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_clique_cover");
    for &(n, p) in &[(100usize, 0.3f64), (100, 0.6), (200, 0.3)] {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = generators::erdos_renyi(n, p, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("er", format!("n{n}_p{p}")),
            &graph,
            |b, g| b.iter(|| std::hint::black_box(greedy_clique_cover(g).len())),
        );
    }
    group.finish();
}

fn bench_strategy_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = generators::erdos_renyi(14, 0.3, &mut rng);
    let family = StrategyFamily::independent_sets(2);
    let strategies = family.enumerate(&graph).unwrap();
    c.bench_function("strategy_relation_graph_build", |b| {
        b.iter(|| {
            std::hint::black_box(
                StrategyRelationGraph::build(&graph, strategies.clone()).num_strategies(),
            )
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let graph = generators::erdos_renyi(20, 0.3, &mut rng);
    let family = StrategyFamily::at_most_m(20, 3);
    let weights: Vec<f64> = (0..20).map(|i| (i as f64) / 20.0).collect();
    c.bench_function("oracle_argmax_neighborhood", |b| {
        b.iter(|| {
            std::hint::black_box(
                family
                    .argmax_by_neighborhood_weights(&weights, &graph)
                    .unwrap()
                    .len(),
            )
        })
    });
}

fn bench_oracle_scan(c: &mut Criterion) {
    // The enumerated-family argmax: the legacy nested `Vec<Vec<ArmId>>` scan,
    // reproduced verbatim (one heap row — and one pointer chase — per
    // candidate, with `max_by` re-evaluating the running maximum's weight on
    // every comparison), vs the flat StrategyBank scan the oracles run now
    // (contiguous rows, each weight summed once). Same candidates, same
    // tie-breaking, same result; the speedup combines the layout change with
    // the single-evaluation argmax.
    let mut rng = StdRng::seed_from_u64(8);
    let graph = generators::erdos_renyi(18, 0.35, &mut rng);
    let bank = StrategyFamily::independent_sets(3)
        .enumerate(&graph)
        .expect("bench family is enumerable");
    let nested: Vec<Vec<usize>> = bank.to_rows();
    let explicit = StrategyFamily::explicit(bank.clone());
    let weights: Vec<f64> = (0..18).map(|i| ((i * 7919) % 100) as f64 / 100.0).collect();
    let strategy_weight = |s: &[usize]| s.iter().map(|&i| weights[i]).sum::<f64>();

    let mut group = c.benchmark_group("enumerated_oracle_scan");
    group.bench_function("nested_vecs", |b| {
        b.iter(|| {
            let best = nested
                .iter()
                .max_by(|a, b| {
                    strategy_weight(a)
                        .partial_cmp(&strategy_weight(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .cloned();
            std::hint::black_box(best.unwrap().len())
        })
    });
    group.bench_function("strategy_bank", |b| {
        b.iter(|| {
            std::hint::black_box(
                explicit
                    .argmax_by_arm_weights(&weights, &graph)
                    .unwrap()
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_policy_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let graph = generators::erdos_renyi(100, 0.3, &mut rng);
    let bandit =
        NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(100, &mut rng)).unwrap();
    c.bench_function("dfl_sso_select_pull_update", |b| {
        let mut policy = DflSso::new(graph.clone());
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            std::hint::black_box(arm)
        })
    });
}

fn bench_neighborhood_layout(c: &mut Criterion) {
    // Allocating Vec-per-query neighbourhoods vs borrowed CSR rows.
    let mut rng = StdRng::seed_from_u64(5);
    let graph = generators::erdos_renyi(200, 0.3, &mut rng);
    let csr = graph.to_csr();
    let mut group = c.benchmark_group("closed_neighborhood_sweep");
    group.bench_function("relation_graph", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in graph.vertices() {
                total += graph.closed_neighborhood(v).len();
            }
            std::hint::black_box(total)
        })
    });
    group.bench_function("csr_graph", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in csr.vertices() {
                total += csr.closed_neighborhood(v).len();
            }
            std::hint::black_box(total)
        })
    });
    group.finish();
}

fn bench_pull_path(c: &mut Criterion) {
    // Per-round environment pull: allocating API vs reused PullBuffer, and the
    // batched pull_many form.
    let mut rng = StdRng::seed_from_u64(6);
    let graph = generators::erdos_renyi(100, 0.3, &mut rng);
    let bandit =
        NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(100, &mut rng)).unwrap();
    let mut group = c.benchmark_group("env_pull_single");
    group.bench_function("alloc_per_round", |b| {
        b.iter(|| std::hint::black_box(bandit.pull_single(17, &mut rng).side_reward))
    });
    group.bench_function("pull_buffer", |b| {
        let mut buf = PullBuffer::new();
        b.iter(|| std::hint::black_box(buf.pull_single(&bandit, 17, &mut rng).side_reward))
    });
    group.bench_function("pull_many_64", |b| {
        let arms: Vec<usize> = (0..64).map(|i| i % 100).collect();
        let mut buf = PullBuffer::new();
        b.iter(|| {
            let mut total = 0.0;
            bandit.pull_many(&arms, &mut rng, &mut buf, |_, fb| total += fb.direct_reward);
            std::hint::black_box(total)
        })
    });
    group.finish();
}

fn bench_ssr_select(c: &mut Criterion) {
    // DFL-SSR's argmax is the heaviest single-play selection: every index scans
    // a whole closed neighbourhood (counts + means) of the CSR snapshot.
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::erdos_renyi(100, 0.3, &mut rng);
    let bandit =
        NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(100, &mut rng)).unwrap();
    c.bench_function("dfl_ssr_select_pull_update", |b| {
        let mut policy = DflSsr::new(graph.clone());
        let mut buf = PullBuffer::new();
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            let arm = policy.select_arm(t);
            let fb = buf.pull_single(&bandit, arm, &mut rng);
            policy.update(t, fb);
            std::hint::black_box(arm)
        })
    });
}

criterion_group!(
    benches,
    bench_index,
    bench_score_kernels,
    bench_clique_cover,
    bench_strategy_graph,
    bench_oracle,
    bench_oracle_scan,
    bench_policy_step,
    bench_neighborhood_layout,
    bench_pull_path,
    bench_ssr_select
);
criterion_main!(benches);
