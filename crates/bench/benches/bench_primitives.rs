//! Micro-benchmarks of the core primitives: the MOSS index, clique covers,
//! strategy-graph construction, the combinatorial oracles, and environment
//! pulls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netband_core::estimator::moss_index;
use netband_core::{DflSso, SinglePlayPolicy};
use netband_env::feasible::FeasibleSet;
use netband_env::{ArmSet, NetworkedBandit, StrategyFamily};
use netband_graph::{generators, greedy_clique_cover, StrategyRelationGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_index(c: &mut Criterion) {
    c.bench_function("moss_index", |b| {
        b.iter(|| std::hint::black_box(moss_index(0.42, 17, 9_999, 100)))
    });
}

fn bench_clique_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_clique_cover");
    for &(n, p) in &[(100usize, 0.3f64), (100, 0.6), (200, 0.3)] {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = generators::erdos_renyi(n, p, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("er", format!("n{n}_p{p}")),
            &graph,
            |b, g| b.iter(|| std::hint::black_box(greedy_clique_cover(g).len())),
        );
    }
    group.finish();
}

fn bench_strategy_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = generators::erdos_renyi(14, 0.3, &mut rng);
    let family = StrategyFamily::independent_sets(2);
    let strategies = family.enumerate(&graph).unwrap();
    c.bench_function("strategy_relation_graph_build", |b| {
        b.iter(|| {
            std::hint::black_box(
                StrategyRelationGraph::build(&graph, strategies.clone()).num_strategies(),
            )
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let graph = generators::erdos_renyi(20, 0.3, &mut rng);
    let family = StrategyFamily::at_most_m(20, 3);
    let weights: Vec<f64> = (0..20).map(|i| (i as f64) / 20.0).collect();
    c.bench_function("oracle_argmax_neighborhood", |b| {
        b.iter(|| {
            std::hint::black_box(
                family
                    .argmax_by_neighborhood_weights(&weights, &graph)
                    .unwrap()
                    .len(),
            )
        })
    });
}

fn bench_policy_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let graph = generators::erdos_renyi(100, 0.3, &mut rng);
    let bandit =
        NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(100, &mut rng)).unwrap();
    c.bench_function("dfl_sso_select_pull_update", |b| {
        let mut policy = DflSso::new(graph.clone());
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            std::hint::black_box(arm)
        })
    });
}

criterion_group!(
    benches,
    bench_index,
    bench_clique_cover,
    bench_strategy_graph,
    bench_oracle,
    bench_policy_step
);
criterion_main!(benches);
