//! Figure 6 bench: DFL-CSR with the at-most-M oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use netband_bench::bench_scale;
use netband_experiments::fig6::{run, Fig6Config};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let config = Fig6Config {
        num_arms: 12,
        max_strategy_size: 2,
        include_baselines: false,
        scale: bench_scale(),
        ..Fig6Config::default()
    };
    group.bench_function("dfl_csr", |b| {
        b.iter(|| {
            let result = run(&config);
            std::hint::black_box(result.dfl_csr.final_regret_mean());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
