//! # netband-net — a real network front end for `netband-serve`
//!
//! `netband-serve` hosts multi-tenant bandit policies behind an in-process
//! API; this crate puts a socket in front of it. Everything is `std::net` +
//! `std::thread` — no async runtime, no protocol library, no new
//! dependencies — because the whole protocol is two small pieces:
//!
//! * **Framing** ([`frame`]): 4-byte big-endian length prefix + UTF-8 JSON
//!   payload, with a hard size cap enforced before buffering.
//! * **Documents** (`netband_spec::wire`): strict request/response JSON
//!   through the same hand-rolled codec as the scenario specs, so rewards
//!   cross the wire bit-exactly and typos fail loudly.
//!
//! ```text
//!  NetClient ──frame──► TCP ──► NetServer ── one thread per connection
//!                                   │  try_decide_many / try_feedback_many
//!                                   ▼            (admission control)
//!                              ServeEngine ── bounded shard queues
//! ```
//!
//! One request frame maps to one response frame, in order. A `decide_many`
//! frame is served by **one** batched engine command (the zero-allocation
//! path), and a full shard queue surfaces as an `overloaded` error frame —
//! the remote client owns the retry, the server never parks a connection on
//! a saturated queue.
//!
//! Binaries: `netband_server` (serve a fleet over TCP) and `netband_loadgen`
//! (multi-connection throughput/latency benchmark emitting `BENCH_net.json`).
//! The golden-trace equivalence suite (`tests/net_equivalence.rs` at the
//! workspace root) pins a TCP client's decisions and regret to the committed
//! DFL traces **f64-bit-exactly**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod obs;
pub mod proto;
pub mod server;

pub use client::{NetClient, NetError};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use obs::{render_metrics, NetStats, ObsServer};
pub use server::{NetServer, ServerConfig};
