//! Conversions between `netband-serve` engine types and the
//! `netband_spec::wire` documents.
//!
//! `netband-spec` cannot depend on `netband-serve` (serve builds tenants
//! *from* specs), so the wire model mirrors the serve types instead of
//! naming them, and the orphan rule keeps these conversions free functions
//! here rather than `From` impls on either side. They are all structural —
//! no recoding of rewards, so `f64` bit-exactness is preserved end to end.

use netband_serve::api::{DecideReply, Decision, FeedbackEvent, ServeError};
use netband_serve::{LatencyHistogram, MetricsReport, TenantTelemetry};
use netband_spec::{
    WireArmStat, WireDecision, WireErrorCode, WireEvent, WireLatency, WireMetrics, WireReply,
    WireTelemetry,
};

/// Serve decision → wire decision.
pub fn decision_to_wire(decision: &Decision) -> WireDecision {
    match decision {
        Decision::Arm(arm) => WireDecision::Arm(*arm),
        Decision::Strategy(arms) => WireDecision::Strategy(arms.clone()),
    }
}

/// Serve feedback event → wire event (both wrap the same `netband-env`
/// payload structs, so this is a clone, not a re-encoding).
pub fn event_to_wire(event: &FeedbackEvent) -> WireEvent {
    match event {
        FeedbackEvent::Single(f) => WireEvent::Single(f.clone()),
        FeedbackEvent::Combinatorial(f) => WireEvent::Combinatorial(f.clone()),
    }
}

/// Wire event → serve feedback event.
pub fn event_from_wire(event: WireEvent) -> FeedbackEvent {
    match event {
        WireEvent::Single(f) => FeedbackEvent::Single(f),
        WireEvent::Combinatorial(f) => FeedbackEvent::Combinatorial(f),
    }
}

/// Serve decide reply → wire reply.
pub fn reply_to_wire(reply: &DecideReply) -> WireReply {
    WireReply {
        round: reply.round,
        decision: decision_to_wire(&reply.decision),
        reward: reply.reward,
        feedback: reply.feedback.as_ref().map(event_to_wire),
    }
}

/// Serve error → wire error code + human-readable message.
///
/// [`ServeError::Overloaded`] is the admission-control signal: the request
/// was not enqueued and the client owns the retry.
pub fn error_to_wire(error: &ServeError) -> (WireErrorCode, String) {
    let code = match error {
        ServeError::UnknownTenant(_) => WireErrorCode::UnknownTenant,
        ServeError::DuplicateTenant(_) => WireErrorCode::DuplicateTenant,
        ServeError::Spec(_) => WireErrorCode::Spec,
        ServeError::Overloaded => WireErrorCode::Overloaded,
        ServeError::EngineDown => WireErrorCode::EngineDown,
        ServeError::Env(_)
        | ServeError::FeedbackKindMismatch(_)
        | ServeError::InvalidRound { .. }
        | ServeError::InvalidFlushPolicy { .. }
        | ServeError::Store(_)
        | ServeError::NotPersistable(_) => WireErrorCode::Invalid,
    };
    (code, error.to_string())
}

fn latency_to_wire(histogram: &LatencyHistogram) -> WireLatency {
    let (p50, p50_exact) = histogram.quantile_bound(0.5);
    let (p99, p99_exact) = histogram.quantile_bound(0.99);
    WireLatency {
        p50_ns: p50.as_nanos().min(u64::MAX as u128) as u64,
        p50_exact,
        p99_ns: p99.as_nanos().min(u64::MAX as u128) as u64,
        p99_exact,
    }
}

/// Engine metrics report → flat wire snapshot. The SLO quantiles come from
/// the shards' fixed-bucket histograms, merged across shards — no new
/// measurement machinery on the wire path.
pub fn metrics_to_wire(report: &MetricsReport) -> WireMetrics {
    WireMetrics {
        shards: report.shards.len() as u64,
        tenants: report.tenants.len() as u64,
        total_decides: report.total_decides(),
        total_feedback_events: report.total_feedback_events(),
        rejected: report.shards.iter().map(|s| s.rejected).sum(),
        overload_rejections: report.overload_rejections,
        decide_latency: latency_to_wire(&report.decide_latency()),
        feedback_latency: latency_to_wire(&report.feedback_latency()),
    }
}

/// Engine tenant telemetry → flat wire snapshot. Structural — rewards and
/// means cross unchanged, so they stay bit-exact on the wire.
pub fn telemetry_to_wire(telemetry: &TenantTelemetry) -> WireTelemetry {
    WireTelemetry {
        tenant: telemetry.id.clone(),
        policy: telemetry.policy.clone(),
        round: telemetry.round,
        pending_feedback: telemetry.pending_feedback,
        decides: telemetry.metrics.decides,
        feedback_events: telemetry.metrics.feedback_events,
        total_reward: telemetry.total_reward,
        optimal_reward: telemetry.optimal_reward,
        regret: telemetry.regret(),
        arms: telemetry
            .arm_pulls
            .iter()
            .zip(&telemetry.arm_means)
            .enumerate()
            .map(|(arm, (&pulls, &mean))| WireArmStat { arm, pulls, mean })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::SinglePlayFeedback;

    #[test]
    fn every_serve_error_maps_to_a_wire_code() {
        let cases: Vec<(ServeError, WireErrorCode)> = vec![
            (
                ServeError::UnknownTenant("t".into()),
                WireErrorCode::UnknownTenant,
            ),
            (
                ServeError::DuplicateTenant("t".into()),
                WireErrorCode::DuplicateTenant,
            ),
            (ServeError::Overloaded, WireErrorCode::Overloaded),
            (ServeError::EngineDown, WireErrorCode::EngineDown),
            (
                ServeError::FeedbackKindMismatch("t".into()),
                WireErrorCode::Invalid,
            ),
            (
                ServeError::InvalidRound {
                    tenant: "t".into(),
                    round: 9,
                    served: 3,
                },
                WireErrorCode::Invalid,
            ),
            (
                ServeError::InvalidFlushPolicy { max_pending: 0 },
                WireErrorCode::Invalid,
            ),
        ];
        for (error, expected) in cases {
            let (code, message) = error_to_wire(&error);
            assert_eq!(code, expected, "{error}");
            assert!(!message.is_empty());
        }
    }

    #[test]
    fn replies_convert_structurally() {
        let reply = DecideReply {
            round: 7,
            decision: Decision::Strategy(vec![1, 4]),
            reward: 0.1 + 0.2,
            feedback: Some(FeedbackEvent::Single(SinglePlayFeedback {
                arm: 1,
                direct_reward: 1.0,
                side_reward: 0.5,
                observations: vec![(0, 1.0)],
            })),
        };
        let wire = reply_to_wire(&reply);
        assert_eq!(wire.round, 7);
        assert_eq!(wire.decision, WireDecision::Strategy(vec![1, 4]));
        assert_eq!(wire.reward.to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(matches!(wire.feedback, Some(WireEvent::Single(_))));
    }

    #[test]
    fn telemetry_converts_structurally_and_bit_exactly() {
        let metrics = netband_serve::TenantMetrics {
            decides: 42,
            feedback_events: 40,
            ..Default::default()
        };
        let telemetry = TenantTelemetry {
            id: "t".into(),
            policy: "DFL-SSO".into(),
            round: 42,
            pending_feedback: 2,
            total_reward: 0.1 + 0.2,
            optimal_reward: 30.0,
            metrics,
            arm_pulls: vec![30, 12],
            arm_means: vec![0.1 + 0.2, 0.25],
        };
        let wire = telemetry_to_wire(&telemetry);
        assert_eq!(wire.tenant, "t");
        assert_eq!(wire.decides, 42);
        assert_eq!(wire.feedback_events, 40);
        assert_eq!(wire.total_reward.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(wire.regret.to_bits(), telemetry.regret().to_bits());
        assert_eq!(wire.arms.len(), 2);
        assert_eq!(wire.arms[0].arm, 0);
        assert_eq!(wire.arms[0].pulls, 30);
        assert_eq!(wire.arms[0].mean.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(wire.arms[1].arm, 1);
    }
}
