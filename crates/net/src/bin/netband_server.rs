//! Serve a `netband` fleet over TCP.
//!
//! ```text
//! netband_server [--addr 127.0.0.1:7171] [--shards N] [--queue-capacity N]
//!                [--max-batch N] [--fleet fleet.json] [--obs-addr HOST:PORT]
//! ```
//!
//! Boots a `ServeEngine`, optionally registers every tenant of a `FleetSpec`
//! JSON document, binds the framed wire protocol, prints one
//! `listening on <addr>` line, and serves until killed. With `--obs-addr`
//! it also binds an HTTP scrape endpoint serving the Prometheus-style text
//! exposition (engine metrics, per-tenant bandit telemetry, transport
//! counters) and prints one `observability on <addr>` line. Exit code 2 on
//! bad usage, 1 on runtime failure.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use netband_net::{NetServer, ObsServer, ServerConfig};
use netband_serve::{EngineConfig, ServeEngine};
use netband_spec::FleetSpec;

struct Args {
    addr: String,
    shards: usize,
    queue_capacity: usize,
    max_batch: u32,
    fleet: Option<String>,
    obs_addr: Option<String>,
}

const USAGE: &str = "usage: netband_server [--addr HOST:PORT] [--shards N] \
                     [--queue-capacity N] [--max-batch N] [--fleet FLEET.json] \
                     [--obs-addr HOST:PORT]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".into(),
        shards: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8),
        queue_capacity: 1024,
        max_batch: 4096,
        fleet: None,
        obs_addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--queue-capacity" => {
                args.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--fleet" => args.fleet = Some(value("--fleet")?),
            "--obs-addr" => args.obs_addr = Some(value("--obs-addr")?),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    let engine = Arc::new(ServeEngine::start(
        EngineConfig::new(args.shards).with_queue_capacity(args.queue_capacity),
    ));
    if let Some(path) = &args.fleet {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let fleet = FleetSpec::from_json_text(&text).map_err(|e| format!("parse {path}: {e}"))?;
        engine
            .register_fleet(&fleet)
            .map_err(|e| format!("register fleet {path}: {e}"))?;
        println!(
            "registered fleet {:?} ({} tenants)",
            fleet.name,
            fleet.tenants.len()
        );
    }
    let config = ServerConfig {
        max_batch: args.max_batch,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&engine), args.addr.as_str(), config)
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    // The smoke test greps for this exact line to learn the ephemeral port.
    println!("listening on {}", server.local_addr());
    // Keep the scrape endpoint alive for the server's lifetime.
    let _obs = match &args.obs_addr {
        Some(addr) => {
            let obs = ObsServer::bind(
                Arc::clone(&engine),
                Arc::clone(server.stats()),
                addr.as_str(),
            )
            .map_err(|e| format!("bind obs {addr}: {e}"))?;
            // The smoke test greps for this exact line too.
            println!("observability on {}", obs.local_addr());
            Some(obs)
        }
        None => None,
    };
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("netband_server: {message}");
            ExitCode::FAILURE
        }
    }
}
