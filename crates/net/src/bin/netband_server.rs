//! Serve a `netband` fleet over TCP.
//!
//! ```text
//! netband_server [--addr 127.0.0.1:7171] [--shards N] [--queue-capacity N]
//!                [--max-batch N] [--fleet fleet.json] [--obs-addr HOST:PORT]
//!                [--data-dir DIR] [--resident-cap N] [--sync-every N]
//! ```
//!
//! Boots a `ServeEngine`, optionally registers every tenant of a `FleetSpec`
//! JSON document, binds the framed wire protocol, prints one
//! `listening on <addr>` line, and serves until killed. With `--obs-addr`
//! it also binds an HTTP scrape endpoint serving the Prometheus-style text
//! exposition (engine metrics, per-tenant bandit telemetry, transport
//! counters) and prints one `observability on <addr>` line. Exit code 2 on
//! bad usage, 1 on runtime failure.
//!
//! With `--data-dir` every shard keeps a write-ahead log and compacted
//! snapshots under the directory, so a `kill -9` resumes bit-exactly on the
//! next boot from the same directory; tenants of a `--fleet` document that
//! were already recovered from disk are kept (not re-registered from
//! scratch). `--resident-cap` additionally bounds the tenants each shard
//! keeps in RAM, spilling idle ones to the disk eviction tier, and
//! `--sync-every` batches WAL fsyncs (default 1: every acknowledged mutation
//! is on disk before the reply; larger values trade the *machine*-crash
//! window for throughput — a killed process alone loses nothing either way,
//! since every record is written out before its command acknowledges).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use netband_net::{NetServer, ObsServer, ServerConfig};
use netband_serve::{EngineConfig, ServeEngine, ServeError, StoreConfig};
use netband_spec::FleetSpec;

struct Args {
    addr: String,
    shards: usize,
    queue_capacity: usize,
    max_batch: u32,
    fleet: Option<String>,
    obs_addr: Option<String>,
    data_dir: Option<String>,
    resident_cap: Option<usize>,
    sync_every: Option<usize>,
}

const USAGE: &str = "usage: netband_server [--addr HOST:PORT] [--shards N] \
                     [--queue-capacity N] [--max-batch N] [--fleet FLEET.json] \
                     [--obs-addr HOST:PORT] [--data-dir DIR] [--resident-cap N] \
                     [--sync-every N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".into(),
        shards: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8),
        queue_capacity: 1024,
        max_batch: 4096,
        fleet: None,
        obs_addr: None,
        data_dir: None,
        resident_cap: None,
        sync_every: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--queue-capacity" => {
                args.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--fleet" => args.fleet = Some(value("--fleet")?),
            "--obs-addr" => args.obs_addr = Some(value("--obs-addr")?),
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--resident-cap" => {
                args.resident_cap = Some(
                    value("--resident-cap")?
                        .parse()
                        .map_err(|e| format!("--resident-cap: {e}"))?,
                )
            }
            "--sync-every" => {
                args.sync_every = Some(
                    value("--sync-every")?
                        .parse()
                        .map_err(|e| format!("--sync-every: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    if args.resident_cap.is_some() && args.data_dir.is_none() {
        return Err(format!("--resident-cap requires --data-dir\n{USAGE}"));
    }
    if args.sync_every.is_some() && args.data_dir.is_none() {
        return Err(format!("--sync-every requires --data-dir\n{USAGE}"));
    }
    if args.sync_every == Some(0) {
        return Err(format!("--sync-every must be at least 1\n{USAGE}"));
    }
    let mut config = EngineConfig::new(args.shards).with_queue_capacity(args.queue_capacity);
    let durable = args.data_dir.is_some();
    if let Some(dir) = &args.data_dir {
        let mut store = StoreConfig::new(dir);
        if let Some(cap) = args.resident_cap {
            store = store.with_resident_cap(cap);
        }
        if let Some(every) = args.sync_every {
            store = store.with_sync_every(every);
        }
        config = config.with_store(store);
    }
    let engine = Arc::new(
        ServeEngine::try_start(config).map_err(|e| format!("recover durable state: {e}"))?,
    );
    if let Some(path) = &args.fleet {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let fleet = FleetSpec::from_json_text(&text).map_err(|e| format!("parse {path}: {e}"))?;
        fleet
            .validate()
            .map_err(|e| format!("validate fleet {path}: {e}"))?;
        // On a durable reboot, tenants of the document that already came back
        // from disk keep their recovered learning state — re-registering them
        // from scratch would reset it.
        let mut registered = 0usize;
        let mut recovered = 0usize;
        for tenant in &fleet.tenants {
            let request =
                netband_serve::RegisterTenantSpec::new(tenant.id.clone(), tenant.scenario.clone());
            match engine.register_tenant_spec(&request) {
                Ok(()) => registered += 1,
                Err(ServeError::DuplicateTenant(_)) if durable => recovered += 1,
                Err(e) => return Err(format!("register fleet {path}: {e}")),
            }
        }
        println!(
            "registered fleet {:?} ({registered} tenants, {recovered} recovered from disk)",
            fleet.name
        );
    }
    let config = ServerConfig {
        max_batch: args.max_batch,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&engine), args.addr.as_str(), config)
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    // The smoke test greps for this exact line to learn the ephemeral port.
    println!("listening on {}", server.local_addr());
    // Keep the scrape endpoint alive for the server's lifetime.
    let _obs = match &args.obs_addr {
        Some(addr) => {
            let obs = ObsServer::bind(
                Arc::clone(&engine),
                Arc::clone(server.stats()),
                addr.as_str(),
            )
            .map_err(|e| format!("bind obs {addr}: {e}"))?;
            // The smoke test greps for this exact line too.
            println!("observability on {}", obs.local_addr());
            Some(obs)
        }
        None => None,
    };
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("netband_server: {message}");
            ExitCode::FAILURE
        }
    }
}
