//! Multi-connection load generator for the netband wire protocol.
//!
//! ```text
//! netband_loadgen [--addr HOST:PORT] [--connections 1,2,4,8] [--batches 1,8,32,128]
//!                 [--tenants 8] [--decides-per-cell 32768] [--shards N] [--out PATH]
//! ```
//!
//! Without `--addr` an in-process server is spawned on an ephemeral loopback
//! port, so the binary doubles as a self-contained benchmark. For every
//! (connections × batch) cell it drives the target number of decisions
//! through real TCP connections — each `decide_many` answered with a
//! `feedback_many` window, overload frames retried after a backoff — and
//! reports throughput plus exact p50/p99 request latencies (measured
//! client-side, sorted, not bucketed).
//!
//! `NETBAND_BENCH_FAST=1` shrinks the matrix to one small cell and turns the
//! run into a smoke test: it asserts a minimum decides/sec floor and zero
//! protocol errors, exiting non-zero on violation (the CI hook). The full
//! run writes `BENCH_net.json` (or `--out`).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use netband_net::{NetClient, NetServer, ServerConfig};
use netband_serve::{EngineConfig, ServeEngine};
use netband_spec::json::Json;
use netband_spec::wire::{WireRequest, WireResponse};
use netband_spec::{
    ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus, WireFeedback,
    WorkloadSpec, SPEC_VERSION,
};

/// Throughput floor asserted in fast (CI smoke) mode, decides per second.
/// Loopback batched serving runs orders of magnitude above this; the floor
/// only exists to catch a protocol-level stall, not to benchmark CI hosts.
const FAST_MODE_FLOOR: f64 = 5_000.0;

struct Args {
    addr: Option<String>,
    connections: Vec<usize>,
    batches: Vec<u32>,
    tenants: usize,
    decides_per_cell: usize,
    shards: usize,
    out: String,
}

const USAGE: &str = "usage: netband_loadgen [--addr HOST:PORT] [--connections LIST] \
                     [--batches LIST] [--tenants N] [--decides-per-cell N] [--shards N] [--out PATH]";

fn parse_list<T: std::str::FromStr>(text: &str, flag: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<T>()
                .map_err(|e| format!("{flag}: bad entry {part:?}: {e}"))
        })
        .collect()
}

fn parse_args(fast: bool) -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        connections: if fast { vec![2] } else { vec![1, 2, 4, 8] },
        batches: if fast { vec![16] } else { vec![1, 8, 32, 128] },
        tenants: 8,
        decides_per_cell: if fast { 4_096 } else { 32_768 },
        shards: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(4),
        out: "BENCH_net.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--connections" => {
                args.connections = parse_list(&value("--connections")?, "--connections")?
            }
            "--batches" => args.batches = parse_list(&value("--batches")?, "--batches")?,
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?
            }
            "--decides-per-cell" => {
                args.decides_per_cell = value("--decides-per-cell")?
                    .parse()
                    .map_err(|e| format!("--decides-per-cell: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.tenants == 0 || args.connections.is_empty() || args.batches.is_empty() {
        return Err("need at least one tenant, connection count, and batch size".into());
    }
    Ok(args)
}

/// The scenario every load-generator tenant hosts: a 10-arm Erdős–Rényi
/// side-observation workload under DFL-SSO — small enough that the engine,
/// not the policy, dominates the cost being measured.
fn loadgen_scenario(index: usize) -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name: format!("loadgen-{index}"),
        workload: WorkloadSpec {
            graph: GraphSpec::ErdosRenyi {
                num_arms: 10,
                edge_prob: 0.3,
            },
            arms: ArmsSpec::UniformMeanBernoulli { num_arms: 10 },
            family: None,
            drift: None,
            seed: 9_000 + index as u64,
        },
        policy: PolicySpec::DflSso,
        side_bonus: SideBonus::Observation,
        horizon: 1_000,
        replications: 1,
        seed: 100 + index as u64,
        feedback: FeedbackSpec::Batched { max_pending: 256 },
    }
}

/// Per-cell counters aggregated across a cell's worker threads.
#[derive(Default)]
struct CellStats {
    decides: usize,
    latencies_ns: Vec<u64>,
    overload_rejections: u64,
    protocol_errors: u64,
}

fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One worker: a real TCP connection serving its disjoint tenant slice.
fn run_worker(
    addr: SocketAddr,
    tenants: Vec<String>,
    target: usize,
    batch: u32,
) -> Result<CellStats, String> {
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut stats = CellStats::default();
    let mut tenant_cursor = 0usize;
    while stats.decides < target {
        let tenant = &tenants[tenant_cursor % tenants.len()];
        tenant_cursor += 1;
        let n = (target - stats.decides).min(batch as usize) as u32;
        // Decide: retry overload frames after a backoff; anything else is a
        // protocol error and aborts the worker (the smoke floor catches it).
        let replies = loop {
            let start = Instant::now();
            match client.decide_many(tenant, n) {
                Ok(replies) => {
                    stats.latencies_ns.push(start.elapsed().as_nanos() as u64);
                    break replies;
                }
                Err(e) if e.is_overloaded() => {
                    stats.overload_rejections += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => {
                    stats.protocol_errors += 1;
                    return Err(format!("decide_many({tenant}, {n}): {e}"));
                }
            }
        };
        stats.decides += replies.len();
        // Route the echoed feedback back in one window, also with overload
        // retry. Built as a raw request so a rejected window can be resent
        // without cloning the events.
        let events: Vec<WireFeedback> = replies
            .into_iter()
            .filter_map(|r| {
                r.feedback.map(|event| WireFeedback {
                    round: r.round,
                    event,
                })
            })
            .collect();
        if events.is_empty() {
            continue;
        }
        let request = WireRequest::FeedbackMany {
            tenant: tenant.clone(),
            events,
        };
        loop {
            match client.call(&request) {
                Ok(WireResponse::Accepted { .. }) => break,
                Ok(WireResponse::Error {
                    code: netband_spec::WireErrorCode::Overloaded,
                    ..
                }) => {
                    stats.overload_rejections += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Ok(other) => {
                    stats.protocol_errors += 1;
                    return Err(format!(
                        "feedback_many({tenant}): unexpected {}",
                        other.to_json_text()
                    ));
                }
                Err(e) => {
                    stats.protocol_errors += 1;
                    return Err(format!("feedback_many({tenant}): {e}"));
                }
            }
        }
    }
    Ok(stats)
}

struct CellResult {
    connections: usize,
    batch: u32,
    decides: usize,
    elapsed_secs: f64,
    decides_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    overload_rejections: u64,
    protocol_errors: u64,
}

fn run_cell(
    addr: SocketAddr,
    tenant_ids: &[String],
    connections: usize,
    batch: u32,
    decides_per_cell: usize,
) -> CellResult {
    let per_conn = decides_per_cell.div_ceil(connections);
    let start = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            // Disjoint tenant ownership: no two connections interleave
            // rounds of the same tenant, so feedback windows stay valid.
            let owned: Vec<String> = tenant_ids
                .iter()
                .enumerate()
                .filter(|(t, _)| t % connections == c)
                .map(|(_, id)| id.clone())
                .collect();
            let owned = if owned.is_empty() {
                vec![tenant_ids[c % tenant_ids.len()].clone()]
            } else {
                owned
            };
            std::thread::spawn(move || run_worker(addr, owned, per_conn, batch))
        })
        .collect();
    let mut stats = CellStats::default();
    for worker in workers {
        match worker.join().expect("worker thread panicked") {
            Ok(s) => {
                stats.decides += s.decides;
                stats.latencies_ns.extend(s.latencies_ns);
                stats.overload_rejections += s.overload_rejections;
                stats.protocol_errors += s.protocol_errors;
            }
            Err(message) => {
                eprintln!("netband_loadgen: worker failed: {message}");
                stats.protocol_errors += 1;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    stats.latencies_ns.sort_unstable();
    CellResult {
        connections,
        batch,
        decides: stats.decides,
        elapsed_secs: elapsed,
        decides_per_sec: stats.decides as f64 / elapsed.max(1e-9),
        p50_us: quantile_ns(&stats.latencies_ns, 0.50) as f64 / 1_000.0,
        p99_us: quantile_ns(&stats.latencies_ns, 0.99) as f64 / 1_000.0,
        overload_rejections: stats.overload_rejections,
        protocol_errors: stats.protocol_errors,
    }
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

fn report_json(args: &Args, results: &[CellResult]) -> Json {
    Json::Object(vec![
        ("bench".into(), Json::String("net_loadgen".into())),
        ("protocol".into(), Json::String("framed-json/tcp".into())),
        ("tenants".into(), Json::from_u64(args.tenants as u64)),
        ("shards".into(), Json::from_u64(args.shards as u64)),
        (
            "decides_per_cell".into(),
            Json::from_u64(args.decides_per_cell as u64),
        ),
        (
            "available_parallelism".into(),
            Json::from_u64(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        (
            "results".into(),
            Json::Array(
                results
                    .iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("connections".into(), Json::from_u64(r.connections as u64)),
                            ("batch".into(), Json::from_u64(u64::from(r.batch))),
                            ("decides".into(), Json::from_u64(r.decides as u64)),
                            (
                                "elapsed_secs".into(),
                                Json::from_f64(round4(r.elapsed_secs)),
                            ),
                            (
                                "decides_per_sec".into(),
                                Json::from_u64(r.decides_per_sec as u64),
                            ),
                            ("decide_p50_us".into(), Json::from_f64(round4(r.p50_us))),
                            ("decide_p99_us".into(), Json::from_f64(round4(r.p99_us))),
                            (
                                "overload_rejections".into(),
                                Json::from_u64(r.overload_rejections),
                            ),
                            ("protocol_errors".into(), Json::from_u64(r.protocol_errors)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run(args: &Args, fast: bool) -> Result<(), String> {
    // In-process server unless pointed at a live one.
    let local = if args.addr.is_none() {
        let engine = Arc::new(ServeEngine::start(
            EngineConfig::new(args.shards).with_queue_capacity(1024),
        ));
        let server = NetServer::bind(engine, "127.0.0.1:0", ServerConfig::default())
            .map_err(|e| format!("bind in-process server: {e}"))?;
        Some(server)
    } else {
        None
    };
    let addr: SocketAddr = match (&args.addr, &local) {
        (Some(text), _) => text.parse().map_err(|e| format!("--addr {text}: {e}"))?,
        (None, Some(server)) => server.local_addr(),
        (None, None) => unreachable!(),
    };

    // Register the tenant fleet over the wire (idempotence not needed: a
    // duplicate registration on an external server is a hard error we want
    // to see).
    let tenant_ids: Vec<String> = (0..args.tenants).map(|t| format!("lg-{t}")).collect();
    let mut setup = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    for (index, id) in tenant_ids.iter().enumerate() {
        setup
            .register_tenant(id.clone(), loadgen_scenario(index))
            .map_err(|e| format!("register {id}: {e}"))?;
    }

    let mut results = Vec::new();
    for &connections in &args.connections {
        for &batch in &args.batches {
            let cell = run_cell(addr, &tenant_ids, connections, batch, args.decides_per_cell);
            println!(
                "connections={:2} batch={:4}  {:>8} decides in {:6.3}s  {:>9.0}/s  p50={:7.1}us p99={:7.1}us  overloads={} protocol_errors={}",
                cell.connections,
                cell.batch,
                cell.decides,
                cell.elapsed_secs,
                cell.decides_per_sec,
                cell.p50_us,
                cell.p99_us,
                cell.overload_rejections,
                cell.protocol_errors,
            );
            results.push(cell);
        }
    }

    // Cross-check against the server's own accounting.
    let expected: u64 = results.iter().map(|r| r.decides as u64).sum();
    let metrics = setup.metrics().map_err(|e| format!("metrics: {e}"))?;
    if metrics.total_decides < expected {
        return Err(format!(
            "server reports {} decides, loadgen counted {expected}",
            metrics.total_decides
        ));
    }
    println!(
        "server metrics: {} decides, {} feedback events, p99 decide {}{}us",
        metrics.total_decides,
        metrics.total_feedback_events,
        if metrics.decide_latency.p99_exact {
            "<="
        } else {
            ">"
        },
        metrics.decide_latency.p99_ns / 1_000,
    );

    if fast {
        for cell in &results {
            if cell.protocol_errors > 0 {
                return Err(format!(
                    "smoke: {} protocol errors at connections={} batch={}",
                    cell.protocol_errors, cell.connections, cell.batch
                ));
            }
            if cell.decides_per_sec < FAST_MODE_FLOOR {
                return Err(format!(
                    "smoke: {:.0} decides/s below the {FAST_MODE_FLOOR:.0}/s floor at connections={} batch={}",
                    cell.decides_per_sec, cell.connections, cell.batch
                ));
            }
        }
        println!("smoke: all cells above {FAST_MODE_FLOOR:.0} decides/s with zero protocol errors");
    } else {
        let text = report_json(args, &results).to_text_pretty();
        std::fs::write(&args.out, text).map_err(|e| format!("write {}: {e}", args.out))?;
        println!("wrote {}", args.out);
    }
    if let Some(server) = local {
        server.shutdown();
    }
    Ok(())
}

fn main() -> ExitCode {
    let fast = std::env::var("NETBAND_BENCH_FAST").is_ok_and(|v| v == "1");
    let args = match parse_args(fast) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args, fast) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("netband_loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}
