//! Length-prefixed framing over any `Read`/`Write` pair.
//!
//! A frame is a 4-byte **big-endian** `u32` length followed by exactly that
//! many bytes of UTF-8 JSON. That is the entire grammar — no magic numbers,
//! no version bytes, no compression flags. The JSON payloads carry their own
//! `"type"` tags (see `netband_spec::wire`), and the codec's strictness does
//! the validation a fancier envelope would.
//!
//! The length prefix is what makes the protocol safe to serve: a reader knows
//! the full size of a frame **before** buffering it, so a configured
//! [`read_frame`] `max` cap rejects oversized frames in constant memory
//! instead of feeding an unbounded `Vec`.

use std::fmt;
use std::io::{self, Read, Write};

/// Default maximum frame payload size (8 MiB) — far above any sane batch,
/// far below anything that could hurt a host.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes timeouts and truncated frames,
    /// surfaced as `UnexpectedEof`).
    Io(io::Error),
    /// The peer announced a frame larger than the configured cap. The frame
    /// was **not** read; the stream is out of sync and should be closed.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The payload was not valid UTF-8.
    Utf8(std::string::FromUtf8Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Utf8(e) => write!(f, "frame payload is not UTF-8: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge {
        len: payload.len(),
        max: u32::MAX as usize,
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, enforcing the `max` payload cap *before* buffering.
///
/// Returns `Ok(None)` on a clean end of stream (the peer closed between
/// frames). End of stream **inside** a frame — mid-prefix or mid-payload —
/// is a truncated frame and surfaces as an `UnexpectedEof` i/o error.
pub fn read_frame(reader: &mut impl Read, max: usize) -> Result<Option<String>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None), // clean EOF between frames
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(FrameError::Utf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"type":"metrics"}"#).unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "π😀").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some(r#"{"type":"metrics"}"#)
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some("")
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some("π😀")
        );
        assert!(read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_before_buffering() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes()); // 4 GiB announcement
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        match err {
            FrameError::TooLarge { len, max } => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_clean_eof() {
        // Cut inside the prefix.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err:?}");
        // Cut inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err:?}");
    }

    #[test]
    fn non_utf8_payloads_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Utf8(_)), "{err:?}");
    }
}
