//! A blocking TCP client for the framed wire protocol.

use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use netband_spec::wire::{
    WireErrorCode, WireMetrics, WireReply, WireRequest, WireResponse, WireTelemetry,
};
use netband_spec::{ScenarioSpec, SpecError, WireFeedback};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (i/o, framing, UTF-8).
    Frame(FrameError),
    /// The response document failed to decode.
    Decode(SpecError),
    /// The server answered with an error frame. `Overloaded` means the
    /// request was not applied and a backoff-retry is safe.
    Server {
        /// Machine-readable code.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server closed the connection instead of answering.
    ConnectionClosed,
    /// The server answered with a response of the wrong kind (e.g. `ok` to a
    /// `decide_many`) — a protocol bug on one side or the other.
    UnexpectedResponse(WireResponse),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "transport error: {e}"),
            NetError::Decode(e) => write!(f, "undecodable response: {e}"),
            NetError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            NetError::ConnectionClosed => f.write_str("server closed the connection"),
            NetError::UnexpectedResponse(r) => {
                write!(f, "response of unexpected kind: {}", r.to_json_text())
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl NetError {
    /// `true` when the request was rejected by admission control and was not
    /// applied — retrying after a backoff is safe and expected.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            NetError::Server {
                code: WireErrorCode::Overloaded,
                ..
            }
        )
    }
}

/// A synchronous connection to a netband server: one in-flight request at a
/// time, responses matched to requests by order.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: usize,
}

impl NetClient {
    /// Connects to `addr` (`TCP_NODELAY` on — request/response traffic).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader_stream = stream.try_clone()?;
        Ok(NetClient {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
            max_frame_bytes: MAX_FRAME_BYTES,
        })
    }

    /// Sends one request frame and reads the one response frame. Error
    /// *frames* come back as `Ok(WireResponse::Error { .. })`; the typed
    /// convenience wrappers below turn them into [`NetError::Server`].
    pub fn call(&mut self, request: &WireRequest) -> Result<WireResponse, NetError> {
        write_frame(&mut self.writer, &request.to_json_text())?;
        let text = read_frame(&mut self.reader, self.max_frame_bytes)?
            .ok_or(NetError::ConnectionClosed)?;
        WireResponse::from_json_text(&text).map_err(NetError::Decode)
    }

    fn expect<T>(
        &mut self,
        request: &WireRequest,
        select: impl FnOnce(WireResponse) -> Result<T, WireResponse>,
    ) -> Result<T, NetError> {
        match self.call(request)? {
            WireResponse::Error { code, message } => Err(NetError::Server { code, message }),
            other => select(other).map_err(NetError::UnexpectedResponse),
        }
    }

    /// Registers a tenant from a scenario document.
    pub fn register_tenant(
        &mut self,
        id: impl Into<String>,
        scenario: ScenarioSpec,
    ) -> Result<(), NetError> {
        self.expect(
            &WireRequest::RegisterTenant {
                id: id.into(),
                scenario: Box::new(scenario),
            },
            |r| match r {
                WireResponse::Ok => Ok(()),
                other => Err(other),
            },
        )
    }

    /// Serves `count` decisions for `tenant` in one frame.
    pub fn decide_many(&mut self, tenant: &str, count: u32) -> Result<Vec<WireReply>, NetError> {
        self.expect(
            &WireRequest::DecideMany {
                tenant: tenant.to_owned(),
                count,
            },
            |r| match r {
                WireResponse::Decisions { replies, .. } => Ok(replies),
                other => Err(other),
            },
        )
    }

    /// Delivers a feedback window for `tenant` in one frame; returns the
    /// number of accepted events.
    pub fn feedback_many(
        &mut self,
        tenant: &str,
        events: Vec<WireFeedback>,
    ) -> Result<u64, NetError> {
        self.expect(
            &WireRequest::FeedbackMany {
                tenant: tenant.to_owned(),
                events,
            },
            |r| match r {
                WireResponse::Accepted { count } => Ok(count),
                other => Err(other),
            },
        )
    }

    /// Fetches the engine-wide metrics snapshot.
    pub fn metrics(&mut self) -> Result<WireMetrics, NetError> {
        self.expect(&WireRequest::Metrics, |r| match r {
            WireResponse::Metrics(m) => Ok(m),
            other => Err(other),
        })
    }

    /// Fetches one tenant's learning-telemetry snapshot (per-arm pulls and
    /// means, cumulative reward, regret proxy). Read-only on the server side:
    /// no flush is triggered.
    pub fn telemetry(&mut self, tenant: &str) -> Result<WireTelemetry, NetError> {
        self.expect(
            &WireRequest::Telemetry {
                tenant: tenant.to_owned(),
            },
            |r| match r {
                WireResponse::Telemetry(t) => Ok(*t),
                other => Err(other),
            },
        )
    }
}
