//! Server-side observability: transport counters and the text-exposition
//! scrape endpoint.
//!
//! Two pieces live here:
//!
//! * [`NetStats`] — the TCP front end's own counters (connections, frames,
//!   bytes, decode errors, overload rejections), plain relaxed atomics
//!   bumped by the accept loop and the connection handlers. These are the
//!   *transport* numbers the engine cannot see.
//! * [`ObsServer`] — a minimal HTTP endpoint that, per scrape, gathers the
//!   engine's [`MetricsReport`](netband_serve::MetricsReport), every
//!   tenant's [`TenantTelemetry`](netband_serve::TenantTelemetry), and the
//!   [`NetStats`] counters into a fresh [`Registry`], and answers with
//!   [`Registry::render_text`]. The registry is rebuilt from scratch on every
//!   scrape — nothing observability-related is shared with or touched by the
//!   hot path.
//!
//! The exposition is plain Prometheus text format: every line round-trips
//! through [`netband_obs::parse_exposition`], which CI runs against a live
//! scrape.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use netband_obs::Registry;
use netband_serve::{ServeEngine, DECIDE_STAGES};

/// Transport counters of the TCP front end. All relaxed atomics: each is an
/// independent monotonic count (or a live gauge), never read transactionally.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted since boot.
    pub connections_accepted: AtomicU64,
    /// Currently live connections.
    pub connections_active: AtomicU64,
    /// Request frames decoded off the wire.
    pub frames_in: AtomicU64,
    /// Response frames written to the wire.
    pub frames_out: AtomicU64,
    /// Payload bytes read (excluding the 4-byte length prefixes).
    pub bytes_in: AtomicU64,
    /// Payload bytes written (excluding the 4-byte length prefixes).
    pub bytes_out: AtomicU64,
    /// Frames that were not a valid request document (`protocol` errors).
    pub decode_errors: AtomicU64,
    /// Requests answered with an `overloaded` error frame — the server-side
    /// count of admission-control rejections, connection-independent.
    pub overload_rejections: AtomicU64,
}

impl NetStats {
    /// A zeroed counter block.
    pub fn new() -> Self {
        NetStats::default()
    }
}

/// Builds the full scrape document: engine metrics, per-stage and end-to-end
/// latency histograms, per-tenant learning telemetry, and the transport
/// counters. Pure assembly — errors talking to the engine surface as `Err`,
/// never as a partial document.
pub fn render_metrics(
    engine: &ServeEngine,
    stats: &NetStats,
) -> Result<String, netband_serve::api::ServeError> {
    let report = engine.metrics()?;
    let telemetry = engine.telemetry_all()?;
    let mut reg = Registry::new();

    reg.set_counter(
        "netband_decides_total",
        "Decisions served across all tenants",
        &[],
        report.total_decides(),
    );
    reg.set_counter(
        "netband_feedback_events_total",
        "Feedback events accepted across all tenants",
        &[],
        report.total_feedback_events(),
    );
    reg.set_counter(
        "netband_overload_rejections_total",
        "Commands refused because a shard queue was full",
        &[],
        report.overload_rejections,
    );
    for (shard, metrics) in report.shards.iter().enumerate() {
        let shard_label = shard.to_string();
        let labels = [("shard", shard_label.as_str())];
        reg.set_counter(
            "netband_shard_commands_total",
            "Commands processed by each shard's loop",
            &labels,
            metrics.commands,
        );
        reg.set_counter(
            "netband_shard_rejected_total",
            "Commands each shard rejected (unknown tenant, bad feedback)",
            &labels,
            metrics.rejected,
        );
    }
    reg.set_histogram(
        "netband_decide_latency_seconds",
        "End-to-end decide handling latency",
        &[],
        &report.decide_latency(),
    );
    reg.set_histogram(
        "netband_feedback_latency_seconds",
        "Feedback ingestion latency",
        &[],
        &report.feedback_latency(),
    );
    let stages = report.stage_timings();
    for stage in DECIDE_STAGES {
        reg.set_histogram(
            "netband_stage_latency_seconds",
            "Sampled per-stage decide latency (route, select, pull, score, reply)",
            &[("stage", stage.name())],
            stages.get(stage),
        );
    }

    for t in &telemetry {
        let labels = [("tenant", t.id.as_str())];
        reg.set_counter(
            "netband_tenant_rounds_total",
            "Rounds served per tenant",
            &labels,
            t.round,
        );
        reg.set_gauge(
            "netband_tenant_pending_feedback",
            "Feedback events queued but not yet flushed, per tenant",
            &labels,
            t.pending_feedback as f64,
        );
        reg.set_gauge(
            "netband_tenant_reward_total",
            "Cumulative realised reward per tenant",
            &labels,
            t.total_reward,
        );
        reg.set_gauge(
            "netband_tenant_regret",
            "Dynamic-oracle regret proxy per tenant",
            &labels,
            t.regret(),
        );
        for (arm, (&pulls, &mean)) in t.arm_pulls.iter().zip(&t.arm_means).enumerate() {
            let arm_label = arm.to_string();
            let arm_labels = [("tenant", t.id.as_str()), ("arm", arm_label.as_str())];
            reg.set_counter(
                "netband_tenant_arm_pulls_total",
                "Estimator updates per tenant and arm",
                &arm_labels,
                pulls,
            );
            reg.set_gauge(
                "netband_tenant_arm_mean",
                "Empirical mean reward per tenant and arm",
                &arm_labels,
                mean,
            );
        }
    }

    reg.set_counter(
        "netband_net_connections_accepted_total",
        "TCP connections accepted",
        &[],
        stats.connections_accepted.load(Ordering::Relaxed),
    );
    reg.set_gauge(
        "netband_net_connections_active",
        "Currently live TCP connections",
        &[],
        stats.connections_active.load(Ordering::Relaxed) as f64,
    );
    reg.set_counter(
        "netband_net_frames_in_total",
        "Request frames read",
        &[],
        stats.frames_in.load(Ordering::Relaxed),
    );
    reg.set_counter(
        "netband_net_frames_out_total",
        "Response frames written",
        &[],
        stats.frames_out.load(Ordering::Relaxed),
    );
    reg.set_counter(
        "netband_net_bytes_in_total",
        "Request payload bytes read",
        &[],
        stats.bytes_in.load(Ordering::Relaxed),
    );
    reg.set_counter(
        "netband_net_bytes_out_total",
        "Response payload bytes written",
        &[],
        stats.bytes_out.load(Ordering::Relaxed),
    );
    reg.set_counter(
        "netband_net_decode_errors_total",
        "Frames that were not a valid request document",
        &[],
        stats.decode_errors.load(Ordering::Relaxed),
    );
    reg.set_counter(
        "netband_net_overload_rejections_total",
        "Requests answered with an overloaded error frame",
        &[],
        stats.overload_rejections.load(Ordering::Relaxed),
    );

    // Durable-store counters only exist when the engine was started with a
    // `StoreConfig`; an in-memory engine scrapes without any netband_store_*
    // families at all, so dashboards can tell "no persistence" from "idle".
    if let Some(store) = engine.store_metrics()? {
        reg.set_counter(
            "netband_store_wal_appends_total",
            "Records appended to the write-ahead logs",
            &[],
            store.appends,
        );
        reg.set_counter(
            "netband_store_fsyncs_total",
            "fsync barriers issued by the write-ahead logs",
            &[],
            store.fsyncs,
        );
        reg.set_gauge(
            "netband_store_wal_bytes",
            "Live write-ahead log bytes not yet covered by a snapshot",
            &[],
            store.wal_bytes as f64,
        );
        reg.set_counter(
            "netband_store_compactions_total",
            "Snapshot compactions that truncated a WAL prefix",
            &[],
            store.compactions,
        );
        reg.set_counter(
            "netband_store_evictions_total",
            "Tenants spilled from RAM to the disk eviction tier",
            &[],
            store.evictions,
        );
        reg.set_counter(
            "netband_store_rehydrations_total",
            "Tenants loaded back from the disk eviction tier",
            &[],
            store.rehydrations,
        );
        reg.set_counter(
            "netband_store_recovered_records_total",
            "WAL records replayed during the last recovery",
            &[],
            store.recovered_records,
        );
        reg.set_counter(
            "netband_store_recovered_tenants_total",
            "Tenants restored from snapshots during the last recovery",
            &[],
            store.recovered_tenants,
        );
    }

    Ok(reg.render_text())
}

/// A minimal HTTP/1.1 scrape endpoint serving [`render_metrics`] on every
/// request (any method, any path). One short-lived thread per scrape; scrape
/// traffic is a human or a collector on a multi-second period, so there is
/// nothing to pool.
pub struct ObsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` and starts answering scrapes against `engine` + `stats`.
    pub fn bind(
        engine: Arc<ServeEngine>,
        stats: Arc<NetStats>,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("netband-obs-accept".into())
                .spawn(move || obs_accept_loop(listener, engine, stats, stop))
                .expect("spawn obs accept thread")
        };
        Ok(ObsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the endpoint. Dropping does the same implicitly.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn obs_accept_loop(
    listener: TcpListener,
    engine: Arc<ServeEngine>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: a scrape is one engine round trip plus one
                // write, and the accept loop has nothing better to do.
                let _ = serve_scrape(stream, &engine, &stats);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_scrape(
    mut stream: std::net::TcpStream,
    engine: &ServeEngine,
    stats: &NetStats,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request headers (or the buffer fills); the
    // request itself is ignored — every path serves the same document.
    let mut buf = [0u8; 4096];
    let mut read = 0;
    while read < buf.len() {
        match stream.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => {
                read += n;
                if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let (status, body) = match render_metrics(engine, stats) {
        Ok(body) => ("200 OK", body),
        Err(e) => ("503 Service Unavailable", format!("engine error: {e}\n")),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_obs::{parse_exposition, ExpositionLine};
    use netband_serve::EngineConfig;

    #[test]
    fn rendered_scrape_parses_and_counts_decides() {
        let engine = ServeEngine::start(EngineConfig::new(2));
        let mut scenario = netband_spec::presets::paper_simulation(8, 0.4, 11);
        scenario.horizon = 50;
        engine
            .register_tenant_spec(&netband_serve::api::RegisterTenantSpec::new(
                "obs-t0", scenario,
            ))
            .unwrap();
        for _ in 0..5 {
            engine.decide("obs-t0").unwrap();
        }
        let stats = NetStats::new();
        stats.frames_in.fetch_add(3, Ordering::Relaxed);
        let text = render_metrics(&engine, &stats).unwrap();
        let lines = parse_exposition(&text).expect("scrape must parse strictly");
        let find = |wanted: &str| {
            lines.iter().find_map(|l| match l {
                ExpositionLine::Sample { name, value, .. } if name == wanted => Some(*value),
                _ => None,
            })
        };
        assert_eq!(find("netband_decides_total"), Some(5.0));
        assert_eq!(find("netband_net_frames_in_total"), Some(3.0));
        // Per-tenant telemetry made it in, with per-arm samples.
        assert!(lines.iter().any(|l| matches!(l,
            ExpositionLine::Sample { name, labels, .. }
                if name == "netband_tenant_arm_pulls_total"
                && labels.iter().any(|(k, v)| k == "tenant" && v == "obs-t0"))));
        engine.shutdown();
    }

    #[test]
    fn obs_server_answers_an_http_scrape() {
        let engine = Arc::new(ServeEngine::start(EngineConfig::new(1)));
        let stats = Arc::new(NetStats::new());
        let obs = ObsServer::bind(Arc::clone(&engine), Arc::clone(&stats), "127.0.0.1:0").unwrap();
        let mut stream = std::net::TcpStream::connect(obs.local_addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .expect("response has a body");
        parse_exposition(body).expect("scrape body must parse strictly");
        obs.shutdown();
    }
}
