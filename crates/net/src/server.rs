//! The TCP server: accept loop, per-connection handler threads, admission
//! control.
//!
//! One connection = one OS thread running a strict request/response loop (no
//! pipelining: the `n`-th response answers the `n`-th request). The handler
//! owns a [`ServeClient`], so every [`WireRequest::DecideMany`] frame is
//! **one** batched `decide_many` on the engine — the zero-allocation
//! steady-state path — never `count` per-call round trips.
//!
//! ## Overload semantics
//!
//! The handler uses the client's *non-blocking* admission paths
//! (`try_decide_many` / `try_feedback_many`). When the tenant's shard queue
//! is full the engine returns [`ServeError::Overloaded`] without enqueueing
//! anything, and the connection answers with an
//! [`WireErrorCode::Overloaded`] error frame instead of parking the thread on
//! a full queue. A slow engine therefore degrades into explicit, bounded
//! rejections the remote client can retry — not into an unbounded pile of
//! blocked connections. Because each connection handles one frame at a time,
//! per-connection inflight is structurally bounded at one request.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
// Relaxed counter bumps only — ordering is irrelevant for monotonic stats.
use std::sync::atomic::Ordering::Relaxed;
use std::thread;
use std::time::Duration;

use netband_serve::api::RegisterTenantSpec;
use netband_serve::api::{DecideReply, ServeError};
use netband_serve::{ServeClient, ServeEngine};
use netband_spec::json::parse;
use netband_spec::wire::{request_from_json, WireErrorCode, WireRequest, WireResponse};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
use crate::obs::NetStats;
use crate::proto::{
    error_to_wire, event_from_wire, metrics_to_wire, reply_to_wire, telemetry_to_wire,
};

/// Server knobs. The defaults are deliberate: frames are capped well below
/// anything that could exhaust memory, batches well below anything that could
/// monopolise a shard.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum frame payload size in bytes (default [`MAX_FRAME_BYTES`]).
    /// Oversized frames draw a `too_large` error and close the connection
    /// (the stream is out of sync once a frame is refused unread).
    pub max_frame_bytes: usize,
    /// Maximum `count` of a decide batch and maximum events per feedback
    /// window (default 4096). Larger requests draw a `too_large` error but
    /// keep the connection open — the frame itself was well-formed.
    pub max_batch: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame_bytes: MAX_FRAME_BYTES,
            max_batch: 4096,
        }
    }
}

/// A running TCP front end over a shared [`ServeEngine`].
///
/// Dropping the server (or calling [`NetServer::shutdown`]) stops the accept
/// loop and closes live connections; the engine itself is left running —
/// it belongs to whoever holds the other `Arc` clones.
pub struct NetServer {
    engine: Arc<ServeEngine>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
    shared: Arc<ConnectionRegistry>,
    stats: Arc<NetStats>,
}

/// Live-connection registry shared with the accept loop: streams so shutdown
/// can unblock reads, handles so shutdown can join the handler threads.
#[derive(Default)]
struct ConnectionRegistry {
    streams: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `engine`.
    pub fn bind(
        engine: Arc<ServeEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept polled on a coarse tick: shutdown needs to stop
        // the loop without a self-connect trick, and accept latency in the
        // tens of milliseconds is irrelevant next to connection lifetimes.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ConnectionRegistry::default());
        let stats = Arc::new(NetStats::new());
        let accept_handle = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            thread::Builder::new()
                .name("netband-net-accept".into())
                .spawn(move || accept_loop(listener, engine, config, stop, shared, stats))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            engine,
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            shared,
            stats,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// The server's transport counters (shared with the scrape endpoint).
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Stops accepting, closes live connections, joins all handler threads.
    /// The engine keeps running.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(streams) = self.shared.streams.lock() {
            for stream in streams.iter() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handlers = {
            let mut guard = self.shared.handlers.lock().expect("handler registry");
            std::mem::take(&mut *guard)
        };
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<ServeEngine>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    shared: Arc<ConnectionRegistry>,
    stats: Arc<NetStats>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                stats.connections_accepted.fetch_add(1, Relaxed);
                if let Ok(mut streams) = shared.streams.lock() {
                    if let Ok(clone) = stream.try_clone() {
                        streams.push(clone);
                    }
                }
                let engine = Arc::clone(&engine);
                let config = config.clone();
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let handle = thread::Builder::new()
                    .name("netband-net-conn".into())
                    .spawn(move || connection_loop(stream, &engine, &config, &stop, &stats))
                    .expect("spawn connection thread");
                if let Ok(mut handlers) = shared.handlers.lock() {
                    handlers.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn connection_loop(
    stream: TcpStream,
    engine: &ServeEngine,
    config: &ServerConfig,
    stop: &AtomicBool,
    stats: &NetStats,
) {
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    stats.connections_active.fetch_add(1, Relaxed);
    // Decrement on every exit path, including panics in the handler.
    let _active = DecrementOnDrop(&stats.connections_active);
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    let mut client = engine.client();
    let mut scratch: Vec<Result<DecideReply, ServeError>> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let text = match read_frame(&mut reader, config.max_frame_bytes) {
            Ok(Some(text)) => text,
            Ok(None) => return, // peer closed cleanly
            Err(FrameError::TooLarge { len, max }) => {
                // The refused payload is still in the pipe — the stream is
                // unrecoverable. Explain, then close.
                let response = WireResponse::Error {
                    code: WireErrorCode::TooLarge,
                    message: format!("frame of {len} bytes exceeds the {max}-byte cap"),
                };
                let _ = write_frame(&mut writer, &response.to_json_text());
                return;
            }
            Err(_) => return, // reset, truncated frame, or shutdown kick
        };
        stats.frames_in.fetch_add(1, Relaxed);
        stats.bytes_in.fetch_add(text.len() as u64, Relaxed);
        let response = handle_request(engine, &mut client, &mut scratch, config, &text);
        match &response {
            WireResponse::Error {
                code: WireErrorCode::Protocol,
                ..
            } => {
                stats.decode_errors.fetch_add(1, Relaxed);
            }
            WireResponse::Error {
                code: WireErrorCode::Overloaded,
                ..
            } => {
                stats.overload_rejections.fetch_add(1, Relaxed);
            }
            _ => {}
        }
        let reply_text = response.to_json_text();
        if write_frame(&mut writer, &reply_text).is_err() {
            return;
        }
        stats.frames_out.fetch_add(1, Relaxed);
        stats.bytes_out.fetch_add(reply_text.len() as u64, Relaxed);
    }
}

/// Decrements the wrapped gauge when dropped (connection-active tracking).
struct DecrementOnDrop<'a>(&'a std::sync::atomic::AtomicU64);

impl Drop for DecrementOnDrop<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Relaxed);
    }
}

/// Serves one request document. Infallible by construction: every failure
/// mode becomes an error *response*.
fn handle_request(
    engine: &ServeEngine,
    client: &mut ServeClient<'_>,
    scratch: &mut Vec<Result<DecideReply, ServeError>>,
    config: &ServerConfig,
    text: &str,
) -> WireResponse {
    let request = match parse(text).and_then(|v| request_from_json(&v)) {
        Ok(request) => request,
        Err(e) => {
            return WireResponse::Error {
                code: WireErrorCode::Protocol,
                message: format!("invalid request document: {e}"),
            }
        }
    };
    match request {
        WireRequest::DecideMany { tenant, count } => {
            if count == 0 {
                return WireResponse::Error {
                    code: WireErrorCode::Invalid,
                    message: "decide_many count must be at least 1".into(),
                };
            }
            if count > config.max_batch {
                return WireResponse::Error {
                    code: WireErrorCode::TooLarge,
                    message: format!(
                        "decide_many count {count} exceeds the server's max_batch {}",
                        config.max_batch
                    ),
                };
            }
            if let Err(e) = client.try_decide_many(&tenant, count as usize, scratch) {
                let (code, message) = error_to_wire(&e);
                return WireResponse::Error { code, message };
            }
            let mut replies = Vec::with_capacity(scratch.len());
            for entry in scratch.iter() {
                match entry {
                    Ok(reply) => replies.push(reply_to_wire(reply)),
                    Err(e) => {
                        let (code, message) = error_to_wire(e);
                        return WireResponse::Error { code, message };
                    }
                }
            }
            WireResponse::Decisions { tenant, replies }
        }
        WireRequest::FeedbackMany { tenant, events } => {
            if events.len() as u64 > u64::from(config.max_batch) {
                return WireResponse::Error {
                    code: WireErrorCode::TooLarge,
                    message: format!(
                        "feedback window of {} events exceeds the server's max_batch {}",
                        events.len(),
                        config.max_batch
                    ),
                };
            }
            let window = events
                .into_iter()
                .map(|f| (f.round, event_from_wire(f.event)));
            match client.try_feedback_many(&tenant, window) {
                Ok(count) => WireResponse::Accepted {
                    count: count as u64,
                },
                Err(e) => {
                    let (code, message) = error_to_wire(&e);
                    WireResponse::Error { code, message }
                }
            }
        }
        WireRequest::RegisterTenant { id, scenario } => {
            match engine.register_tenant_spec(&RegisterTenantSpec::new(id, *scenario)) {
                Ok(()) => WireResponse::Ok,
                Err(e) => {
                    let (code, message) = error_to_wire(&e);
                    WireResponse::Error { code, message }
                }
            }
        }
        WireRequest::Metrics => match engine.metrics() {
            Ok(report) => WireResponse::Metrics(metrics_to_wire(&report)),
            Err(e) => {
                let (code, message) = error_to_wire(&e);
                WireResponse::Error { code, message }
            }
        },
        WireRequest::Telemetry { tenant } => match engine.telemetry(&tenant) {
            Ok(telemetry) => WireResponse::Telemetry(Box::new(telemetry_to_wire(&telemetry))),
            Err(e) => {
                let (code, message) = error_to_wire(&e);
                WireResponse::Error { code, message }
            }
        },
    }
}
