//! Smoke tests for the shipped binaries: `netband_server` must boot, announce
//! its (possibly ephemeral) address on stdout, and serve a real client;
//! `netband_loadgen` must drive a full (tiny) matrix end to end and emit a
//! well-formed benchmark report.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use netband_net::NetClient;
use netband_spec::{
    ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus, WireFeedback,
    WorkloadSpec, SPEC_VERSION,
};

/// Kills the child on drop so a failing assertion doesn't leak a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn smoke_scenario() -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name: "bin-smoke".into(),
        workload: WorkloadSpec {
            graph: GraphSpec::ErdosRenyi {
                num_arms: 8,
                edge_prob: 0.3,
            },
            arms: ArmsSpec::UniformMeanBernoulli { num_arms: 8 },
            family: None,
            drift: None,
            seed: 1,
        },
        policy: PolicySpec::DflSso,
        side_bonus: SideBonus::Observation,
        horizon: 1_000,
        replications: 1,
        seed: 2,
        feedback: FeedbackSpec::Immediate,
    }
}

/// Boots the server binary on an ephemeral port, reads the announced address
/// off stdout, and serves a register → decide → feedback → metrics round trip
/// through a real client.
#[test]
fn server_binary_boots_announces_and_serves() {
    let child = Command::new(env!("CARGO_BIN_EXE_netband_server"))
        .args(["--addr", "127.0.0.1:0", "--shards", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn netband_server");
    let mut child = Reaper(child);
    let stdout = child.0.stdout.take().expect("piped stdout");

    // The binary prints exactly one `listening on <addr>` line once bound.
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_owned();
        }
    };

    let mut client = NetClient::connect(addr.as_str()).expect("connect to announced address");
    client
        .register_tenant("smoke", smoke_scenario())
        .expect("register over the wire");
    for _ in 0..4 {
        let replies = client.decide_many("smoke", 8).expect("decide");
        assert_eq!(replies.len(), 8);
        let window: Vec<WireFeedback> = replies
            .into_iter()
            .filter_map(|r| {
                r.feedback.map(|event| WireFeedback {
                    round: r.round,
                    event,
                })
            })
            .collect();
        let accepted = client.feedback_many("smoke", window).expect("feedback");
        assert_eq!(accepted, 8);
    }
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.shards, 1);
    assert_eq!(metrics.tenants, 1);
    assert!(metrics.total_decides >= 32, "{}", metrics.total_decides);
}

/// Runs the load generator in full mode with a tiny matrix against its own
/// in-process server and checks the emitted report: every cell completed its
/// decides with zero protocol errors.
#[test]
fn loadgen_binary_emits_a_well_formed_report() {
    let out =
        std::env::temp_dir().join(format!("netband_loadgen_smoke_{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_netband_loadgen"))
        .args([
            "--connections",
            "1,2",
            "--batches",
            "16",
            "--tenants",
            "4",
            "--decides-per-cell",
            "512",
            "--shards",
            "1",
            "--out",
            out.to_str().expect("utf-8 temp path"),
        ])
        .env_remove("NETBAND_BENCH_FAST")
        .status()
        .expect("spawn netband_loadgen");
    assert!(status.success(), "loadgen exited with {status}");

    let text = std::fs::read_to_string(&out).expect("read loadgen report");
    let _ = std::fs::remove_file(&out);
    let report = netband_spec::json::parse(&text).expect("report is strict JSON");
    let object = report.as_object().expect("report is an object");
    let field = |name: &str| {
        object
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value)
            .unwrap_or_else(|| panic!("report lacks {name:?}:\n{text}"))
    };
    assert_eq!(field("bench").as_str(), Some("net_loadgen"));
    assert_eq!(field("protocol").as_str(), Some("framed-json/tcp"));
    let results = field("results").as_array().expect("results array");
    assert_eq!(results.len(), 2, "one result per matrix cell");
    for cell in results {
        let cell = cell.as_object().expect("cell is an object");
        let get = |name: &str| {
            cell.iter()
                .find(|(key, _)| key == name)
                .and_then(|(_, value)| value.as_u64())
                .unwrap_or_else(|| panic!("cell lacks u64 {name:?}:\n{text}"))
        };
        assert!(get("decides") >= 512);
        assert_eq!(get("protocol_errors"), 0);
        assert!(get("decides_per_sec") > 0);
    }
}
