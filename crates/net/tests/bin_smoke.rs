//! Smoke tests for the shipped binaries: `netband_server` must boot, announce
//! its (possibly ephemeral) address on stdout, and serve a real client;
//! `netband_loadgen` must drive a full (tiny) matrix end to end and emit a
//! well-formed benchmark report.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use netband_net::NetClient;
use netband_spec::{
    ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus, WireFeedback,
    WorkloadSpec, SPEC_VERSION,
};

/// Kills the child on drop so a failing assertion doesn't leak a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn smoke_scenario() -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name: "bin-smoke".into(),
        workload: WorkloadSpec {
            graph: GraphSpec::ErdosRenyi {
                num_arms: 8,
                edge_prob: 0.3,
            },
            arms: ArmsSpec::UniformMeanBernoulli { num_arms: 8 },
            family: None,
            drift: None,
            seed: 1,
        },
        policy: PolicySpec::DflSso,
        side_bonus: SideBonus::Observation,
        horizon: 1_000,
        replications: 1,
        seed: 2,
        feedback: FeedbackSpec::Immediate,
    }
}

/// Boots the server binary on an ephemeral port, reads the announced address
/// off stdout, and serves a register → decide → feedback → metrics round trip
/// through a real client.
#[test]
fn server_binary_boots_announces_and_serves() {
    let child = Command::new(env!("CARGO_BIN_EXE_netband_server"))
        .args(["--addr", "127.0.0.1:0", "--shards", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn netband_server");
    let mut child = Reaper(child);
    let stdout = child.0.stdout.take().expect("piped stdout");

    // The binary prints exactly one `listening on <addr>` line once bound.
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_owned();
        }
    };

    let mut client = NetClient::connect(addr.as_str()).expect("connect to announced address");
    client
        .register_tenant("smoke", smoke_scenario())
        .expect("register over the wire");
    for _ in 0..4 {
        let replies = client.decide_many("smoke", 8).expect("decide");
        assert_eq!(replies.len(), 8);
        let window: Vec<WireFeedback> = replies
            .into_iter()
            .filter_map(|r| {
                r.feedback.map(|event| WireFeedback {
                    round: r.round,
                    event,
                })
            })
            .collect();
        let accepted = client.feedback_many("smoke", window).expect("feedback");
        assert_eq!(accepted, 8);
    }
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.shards, 1);
    assert_eq!(metrics.tenants, 1);
    assert!(metrics.total_decides >= 32, "{}", metrics.total_decides);
}

/// Boots the server binary with `--obs-addr`, drives a little traffic, and
/// scrapes the announced observability endpoint over raw HTTP: every line of
/// the body must parse under the strict exposition grammar and the decide
/// counter must reflect the traffic just served.
#[test]
fn server_binary_serves_a_parseable_scrape() {
    let child = Command::new(env!("CARGO_BIN_EXE_netband_server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "1",
            "--obs-addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn netband_server");
    let mut child = Reaper(child);
    let stdout = child.0.stdout.take().expect("piped stdout");

    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    let mut obs_addr = None;
    while addr.is_none() || obs_addr.is_none() {
        let line = lines
            .next()
            .expect("server exited before announcing both addresses")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.to_owned());
        } else if let Some(rest) = line.strip_prefix("observability on ") {
            obs_addr = Some(rest.to_owned());
        }
    }
    let (addr, obs_addr) = (addr.unwrap(), obs_addr.unwrap());

    let mut client = NetClient::connect(addr.as_str()).expect("connect to announced address");
    client
        .register_tenant("smoke", smoke_scenario())
        .expect("register over the wire");
    let replies = client.decide_many("smoke", 16).expect("decide");
    assert_eq!(replies.len(), 16);

    let body = scrape(&obs_addr);
    let parsed = netband_obs::parse_exposition(&body).expect("every scrape line parses");
    let sample = |name: &str| {
        parsed
            .iter()
            .find_map(|line| match line {
                netband_obs::ExpositionLine::Sample { name: n, value, .. } if n == name => {
                    Some(*value)
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("scrape lacks sample {name:?}:\n{body}"))
    };
    assert_eq!(sample("netband_decides_total"), 16.0);
    assert!(sample("netband_net_frames_in_total") >= 2.0);
    assert_eq!(sample("netband_overload_rejections_total"), 0.0);
}

/// One blocking HTTP/1.1 GET against the scrape endpoint, returning the body.
fn scrape(addr: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape endpoint");
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("send scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "scrape status line: {head}"
    );
    body.to_owned()
}

/// Runs the load generator in full mode with a tiny matrix against its own
/// in-process server and checks the emitted report: every cell completed its
/// decides with zero protocol errors.
#[test]
fn loadgen_binary_emits_a_well_formed_report() {
    let out =
        std::env::temp_dir().join(format!("netband_loadgen_smoke_{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_netband_loadgen"))
        .args([
            "--connections",
            "1,2",
            "--batches",
            "16",
            "--tenants",
            "4",
            "--decides-per-cell",
            "512",
            "--shards",
            "1",
            "--out",
            out.to_str().expect("utf-8 temp path"),
        ])
        .env_remove("NETBAND_BENCH_FAST")
        .status()
        .expect("spawn netband_loadgen");
    assert!(status.success(), "loadgen exited with {status}");

    let text = std::fs::read_to_string(&out).expect("read loadgen report");
    let _ = std::fs::remove_file(&out);
    let report = netband_spec::json::parse(&text).expect("report is strict JSON");
    let object = report.as_object().expect("report is an object");
    let field = |name: &str| {
        object
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value)
            .unwrap_or_else(|| panic!("report lacks {name:?}:\n{text}"))
    };
    assert_eq!(field("bench").as_str(), Some("net_loadgen"));
    assert_eq!(field("protocol").as_str(), Some("framed-json/tcp"));
    let results = field("results").as_array().expect("results array");
    assert_eq!(results.len(), 2, "one result per matrix cell");
    for cell in results {
        let cell = cell.as_object().expect("cell is an object");
        let get = |name: &str| {
            cell.iter()
                .find(|(key, _)| key == name)
                .and_then(|(_, value)| value.as_u64())
                .unwrap_or_else(|| panic!("cell lacks u64 {name:?}:\n{text}"))
        };
        assert!(get("decides") >= 512);
        assert_eq!(get("protocol_errors"), 0);
        assert!(get("decides_per_sec") > 0);
    }
}
