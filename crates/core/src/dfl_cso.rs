//! DFL-CSO — Distribution-Free Learning for Combinatorial-play with Side
//! Observation (Algorithm 2 of the paper).
//!
//! The combinatorial problem is converted to a single-play problem over
//! "com-arms": every feasible strategy `s_x ∈ F` becomes a vertex of the
//! **strategy relation graph** `SG(F, L)` (see
//! [`netband_graph::StrategyRelationGraph`]), and Algorithm 1's machinery is
//! applied to it. Playing `s_x` reveals the reward of every arm in
//! `Y_x = ∪_{i ∈ s_x} N_i`, hence the realised reward of every strategy whose
//! component arms are contained in `Y_x` — exactly the neighbours of `s_x` in
//! `SG` — so their estimates are updated too.
//!
//! Rewards of a com-arm live in `[0, M]` (a strategy has at most `M` arms), so
//! the policy normalises them by `M` internally to keep the MOSS index on the
//! `[0, 1]` scale assumed by the analysis; the normalisation is an
//! implementation detail invisible to callers.

use netband_env::CombinatorialFeedback;
use netband_graph::strategy::StrategyId;
use netband_graph::StrategyRelationGraph;

use crate::estimator::{moss_index, ArmEstimators};
use crate::kernels;
use crate::policy::CombinatorialPolicy;
use crate::state::{
    load_opt_index, save_opt_index, PolicyState, PolicyStateError, PolicyStateReader,
};
use crate::ArmId;

/// The DFL-CSO policy (Algorithm 2), operating on an explicitly enumerated
/// feasible strategy set.
#[derive(Debug, Clone)]
pub struct DflCso {
    strategy_graph: StrategyRelationGraph,
    /// Flat per-com-arm observation counts and (normalised) means, keyed by
    /// dense strategy id.
    estimates: ArmEstimators,
    /// Normalisation constant: the largest strategy size in `F` (at least 1).
    scale: f64,
    /// Index of the com-arm pulled at the current time slot; used to attribute
    /// feedback to the correct strategy when updating.
    last_selected: Option<StrategyId>,
    /// One-past-the-largest arm id appearing in any observation set; sizes the
    /// dense per-round scratch below.
    arm_bound: usize,
    /// Scratch: revealed sample per arm id (valid only where `observed_scratch`
    /// is set); reused across rounds so `update` performs no allocation.
    sample_scratch: Vec<f64>,
    /// Scratch: which arms the current feedback revealed; cleared before
    /// `update` returns.
    observed_scratch: Vec<bool>,
}

impl DflCso {
    /// Creates the policy from a pre-built strategy relation graph.
    pub fn new(strategy_graph: StrategyRelationGraph) -> Self {
        let num = strategy_graph.num_strategies();
        let scale = strategy_graph.strategies().max_row_len().max(1) as f64;
        let arm_bound = strategy_graph
            .strategies()
            .arms()
            .iter()
            .chain(strategy_graph.observation_sets().arms())
            .max()
            .map(|&a| a + 1)
            .unwrap_or(0);
        DflCso {
            strategy_graph,
            estimates: ArmEstimators::new(num),
            scale,
            last_selected: None,
            arm_bound,
            sample_scratch: vec![0.0; arm_bound],
            observed_scratch: vec![false; arm_bound],
        }
    }

    /// Convenience constructor: builds the strategy relation graph from an arm
    /// relation graph and an explicit feasible set (a flat
    /// [`StrategyBank`](netband_graph::StrategyBank) or anything convertible
    /// into one, such as the nested `Vec<Vec<ArmId>>` layout).
    pub fn from_strategies(
        arm_graph: &netband_graph::RelationGraph,
        strategies: impl Into<netband_graph::StrategyBank>,
    ) -> Self {
        DflCso::new(StrategyRelationGraph::build(arm_graph, strategies))
    }

    /// Number of com-arms `|F|`.
    pub fn num_strategies(&self) -> usize {
        self.estimates.len()
    }

    /// The underlying strategy relation graph.
    pub fn strategy_graph(&self) -> &StrategyRelationGraph {
        &self.strategy_graph
    }

    /// Observation count `O_x` of a com-arm.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn observation_count(&self, x: StrategyId) -> u64 {
        self.estimates.count(x)
    }

    /// Empirical mean reward of a com-arm (denormalised back to the `[0, M]`
    /// scale).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn empirical_mean(&self, x: StrategyId) -> f64 {
        self.estimates.mean(x) * self.scale
    }

    /// The index value (Equation 42) of com-arm `x` at time `t`, on the
    /// normalised `[0, 1]` reward scale.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn index(&self, x: StrategyId, t: usize) -> f64 {
        moss_index(
            self.estimates.mean(x),
            self.estimates.count(x),
            t,
            self.num_strategies(),
        )
    }

    /// The com-arm that would be selected at time `t` (without mutating state).
    /// One fused score+argmax sweep over the flat com-arm estimates,
    /// bit-identical to `argmax_last` over [`DflCso::index`].
    pub fn best_strategy_index(&self, t: usize) -> Option<StrategyId> {
        kernels::moss_argmax(
            self.estimates.means(),
            self.estimates.counts(),
            t,
            self.num_strategies(),
        )
    }
}

impl CombinatorialPolicy for DflCso {
    fn name(&self) -> &'static str {
        "DFL-CSO"
    }

    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        let mut out = Vec::new();
        self.select_strategy_into(t, &mut out);
        out
    }

    fn select_strategy_into(&mut self, t: usize, out: &mut Vec<ArmId>) {
        let x = self
            .best_strategy_index(t)
            .expect("DFL-CSO requires a non-empty feasible strategy set");
        self.last_selected = Some(x);
        out.clear();
        out.extend_from_slice(self.strategy_graph.strategy(x));
    }

    fn update(&mut self, _t: usize, feedback: &CombinatorialFeedback) {
        // Scatter the revealed samples into the dense scratch, then update
        // every com-arm whose component arms are fully observed (the pulled
        // com-arm and its SG neighbours). Arms at or beyond `arm_bound` cannot
        // belong to any strategy, so skipping them preserves the subset test.
        for &(arm, reward) in &feedback.observations {
            if arm < self.arm_bound {
                self.sample_scratch[arm] = reward;
                self.observed_scratch[arm] = true;
            }
        }
        for x in 0..self.strategy_graph.num_strategies() {
            let strategy: &[ArmId] = self.strategy_graph.strategy(x);
            if !strategy.iter().all(|&a| self.observed_scratch[a]) {
                continue;
            }
            let reward: f64 = strategy.iter().map(|&a| self.sample_scratch[a]).sum();
            self.estimates.update(x, reward / self.scale);
        }
        for &(arm, _) in &feedback.observations {
            if arm < self.arm_bound {
                self.observed_scratch[arm] = false;
            }
        }
        self.last_selected = None;
    }

    fn reset(&mut self) {
        self.estimates.reset();
        self.last_selected = None;
    }

    // DFL-CSO estimates dense *strategy* ids (com-arms), so index `i` here is
    // the i-th enumerated strategy, not base arm `i`.
    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.estimates)
    }

    // Durable state: com-arm estimates plus the `last_selected` register (live
    // when a decide's feedback is still pending across the capture). The
    // scratch buffers are per-round and always clean between updates.
    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.estimates.save_state(&mut state);
        save_opt_index(self.last_selected, &mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.estimates.load_state(&mut reader)?;
        let last = load_opt_index(&mut reader)?;
        if let Some(x) = last {
            if x >= self.num_strategies() {
                return Err(reader.mismatch(format!(
                    "last_selected {x} out of range for {} strategies",
                    self.num_strategies()
                )));
            }
        }
        reader.finish()?;
        self.last_selected = last;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, FeasibleSet, NetworkedBandit, StrategyFamily};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The Fig. 2 instance: path 0-1-2-3, independent sets of size ≤ 2.
    fn fig2_policy_and_bandit(means: &[f64]) -> (DflCso, NetworkedBandit) {
        let graph = generators::path(4);
        let family = StrategyFamily::independent_sets(2);
        let strategies = family.enumerate(&graph).unwrap();
        let policy = DflCso::from_strategies(&graph, strategies);
        let bandit = NetworkedBandit::new(graph, ArmSet::bernoulli(means)).unwrap();
        (policy, bandit)
    }

    fn run(policy: &mut DflCso, bandit: &NetworkedBandit, n: usize, seed: u64) -> Vec<Vec<ArmId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let s = policy.select_strategy(t);
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
            pulls.push(s);
        }
        pulls
    }

    #[test]
    fn fig2_has_seven_com_arms() {
        let (policy, _) = fig2_policy_and_bandit(&[0.2, 0.5, 0.3, 0.6]);
        assert_eq!(policy.num_strategies(), 7);
        assert_eq!(policy.name(), "DFL-CSO");
    }

    #[test]
    fn unobserved_com_arms_are_explored_first() {
        let (mut policy, bandit) = fig2_policy_and_bandit(&[0.2, 0.5, 0.3, 0.6]);
        // Pull once: every com-arm whose component arms lie inside the
        // observation set gets its estimate updated; the rest keep infinite
        // index and must be chosen next.
        let mut rng = StdRng::seed_from_u64(2);
        let s = policy.select_strategy(1);
        let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
        policy.update(1, &fb);
        let next = policy.best_strategy_index(2).unwrap();
        assert_eq!(policy.observation_count(next), 0);
    }

    #[test]
    fn side_observation_updates_neighbouring_com_arms() {
        let (mut policy, bandit) = fig2_policy_and_bandit(&[0.2, 0.5, 0.3, 0.6]);
        let mut rng = StdRng::seed_from_u64(3);
        // Strategy {1} (com-arm index 3 in the enumeration order of
        // independent_sets_up_to: [{0},{0,2},{0,3},{1},{1,3},{2},{3}]).
        let fb = bandit.pull_strategy(&[1], &mut rng).unwrap();
        policy.update(1, &fb);
        // Y_{1} = {0,1,2}; observable com-arms: {0}, {0,2}, {1}, {2}.
        assert_eq!(policy.observation_count(0), 1); // {0}
        assert_eq!(policy.observation_count(1), 1); // {0,2}
        assert_eq!(policy.observation_count(2), 0); // {0,3} needs arm 3
        assert_eq!(policy.observation_count(3), 1); // {1}
        assert_eq!(policy.observation_count(4), 0); // {1,3}
        assert_eq!(policy.observation_count(5), 1); // {2}
        assert_eq!(policy.observation_count(6), 0); // {3}
    }

    #[test]
    fn converges_to_the_best_strategy() {
        // Means chosen so the unique best independent set of size ≤ 2 is {1,3}
        // with expected reward 1.5.
        let (mut policy, bandit) = fig2_policy_and_bandit(&[0.2, 0.9, 0.3, 0.6]);
        let pulls = run(&mut policy, &bandit, 4000, 9);
        let best_count = pulls[3000..]
            .iter()
            .filter(|s| s.as_slice() == [1, 3])
            .count();
        assert!(
            best_count > 900,
            "best strategy pulled only {best_count}/1000 times in the tail"
        );
    }

    #[test]
    fn empirical_means_are_denormalised() {
        let (mut policy, bandit) = fig2_policy_and_bandit(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(4);
        // All rewards are deterministically 1 (Bernoulli(1)), so the two-arm
        // strategy {1,3} has reward exactly 2.
        let fb = bandit.pull_strategy(&[1, 3], &mut rng).unwrap();
        policy.update(1, &fb);
        assert!((policy.empirical_mean(4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_all_estimates() {
        let (mut policy, bandit) = fig2_policy_and_bandit(&[0.2, 0.5, 0.3, 0.6]);
        run(&mut policy, &bandit, 20, 5);
        policy.reset();
        for x in 0..policy.num_strategies() {
            assert_eq!(policy.observation_count(x), 0);
        }
    }

    #[test]
    fn works_on_dense_graphs_where_everything_is_observed() {
        let graph = generators::complete(5);
        let family = StrategyFamily::at_most_m(5, 2);
        let strategies = family.enumerate(&graph).unwrap();
        let mut policy = DflCso::from_strategies(&graph, strategies);
        let bandit =
            NetworkedBandit::new(graph, ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9])).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let s = policy.select_strategy(1);
        let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
        policy.update(1, &fb);
        // On a complete graph a single pull observes every arm, hence every
        // com-arm.
        for x in 0..policy.num_strategies() {
            assert_eq!(policy.observation_count(x), 1, "com-arm {x}");
        }
    }
}
