//! The neighbourhood-exploitation heuristics sketched in the paper's conclusion
//! (Section IX, "future works").
//!
//! The paper proposes: *"at each time slot, instead of playing the selected
//! arm/strategy with maximum index value (Equation (5), (42)), we will play the
//! arm/strategy that has maximum experimental average observation among the
//! neighbors of `I_t`. Therefore, we ensure that the received reward is better
//! than the one with maximum index value."*
//!
//! [`DflSsoGreedyNeighbor`] implements that idea for the single-play /
//! side-observation case: the MOSS-style index still decides *which
//! neighbourhood to explore* (so the exploration guarantees of Algorithm 1 keep
//! driving the observation counters), but the arm actually pulled is the member
//! of that closed neighbourhood with the highest empirical mean — the pull is
//! "redirected" to the empirically best neighbour. Because side observation
//! reveals the whole neighbourhood either way, the information collected is
//! identical; only the collected reward changes.
//!
//! [`DflSsrGreedyNeighbor`] applies the same redirection to the side-reward
//! case, using the neighbourhood-sum estimates of Algorithm 3.
//!
//! The `ablation_heuristic` experiment in `netband-experiments` measures how
//! much the redirection helps in practice.

use netband_env::SinglePlayFeedback;
use netband_graph::{CsrGraph, RelationGraph};

use crate::dfl_sso::DflSso;
use crate::dfl_ssr::DflSsr;
use crate::policy::SinglePlayPolicy;
use crate::state::{PolicyState, PolicyStateError};
use crate::ArmId;

/// DFL-SSO with the Section IX redirection: explore by index, pull the
/// empirically best arm of the selected neighbourhood.
#[derive(Debug, Clone)]
pub struct DflSsoGreedyNeighbor {
    inner: DflSso,
    csr: CsrGraph,
}

impl DflSsoGreedyNeighbor {
    /// Creates the heuristic policy for the given relation graph.
    pub fn new(graph: RelationGraph) -> Self {
        let csr = graph.to_csr();
        DflSsoGreedyNeighbor {
            inner: DflSso::new(graph),
            csr,
        }
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.inner.num_arms()
    }

    /// The underlying DFL-SSO state (estimates and counters).
    pub fn inner(&self) -> &DflSso {
        &self.inner
    }

    /// Redirects an index-selected arm to the empirically best member of its
    /// closed neighbourhood.
    ///
    /// The redirection only fires when every arm in the selected neighbourhood
    /// has been observed at least once: if the index picked this arm *because*
    /// some neighbour is still unexplored, redirecting away would defeat that
    /// exploration (and can deadlock the side-reward variant), so the original
    /// selection is kept in that case.
    fn redirect(&self, selected: ArmId) -> ArmId {
        let neighborhood = self.csr.closed_neighborhood(selected);
        if neighborhood
            .iter()
            .any(|&candidate| self.inner.observation_count(candidate) == 0)
        {
            return selected;
        }
        let mut best = selected;
        let mut best_mean = f64::NEG_INFINITY;
        for &candidate in neighborhood {
            let mean = self.inner.empirical_mean(candidate);
            if mean > best_mean {
                best_mean = mean;
                best = candidate;
            }
        }
        best
    }
}

impl SinglePlayPolicy for DflSsoGreedyNeighbor {
    fn name(&self) -> &'static str {
        "DFL-SSO+GN"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        let selected = self.inner.select_arm(t);
        self.redirect(selected)
    }

    fn update(&mut self, t: usize, feedback: &SinglePlayFeedback) {
        self.inner.update(t, feedback);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    // The redirection is stateless; the durable state is the inner policy's.
    fn save_state(&self) -> Option<PolicyState> {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        self.inner.load_state(state)
    }
}

/// DFL-SSR with the Section IX redirection: explore by the side-reward index,
/// pull the neighbour whose *own* neighbourhood-sum estimate is largest.
#[derive(Debug, Clone)]
pub struct DflSsrGreedyNeighbor {
    inner: DflSsr,
    csr: CsrGraph,
}

impl DflSsrGreedyNeighbor {
    /// Creates the heuristic policy for the given relation graph.
    pub fn new(graph: RelationGraph) -> Self {
        let csr = graph.to_csr();
        DflSsrGreedyNeighbor {
            inner: DflSsr::new(graph),
            csr,
        }
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.inner.num_arms()
    }

    /// The underlying DFL-SSR state.
    pub fn inner(&self) -> &DflSsr {
        &self.inner
    }

    /// Same guard as the SSO variant, plus a starvation guard specific to the
    /// side-reward case: the index's exploration bonus for the selected arm is
    /// driven by the *least-sampled* member of its neighbourhood, and a
    /// redirect target whose own neighbourhood misses that member would leave
    /// its estimate (and the bonus) frozen — the index would re-select the
    /// same arm and the redirection would deadlock on a stale neighbour. Only
    /// candidates that still refresh the scarcest member are eligible.
    fn redirect(&self, selected: ArmId) -> ArmId {
        let neighborhood = self.csr.closed_neighborhood(selected);
        if neighborhood
            .iter()
            .any(|&candidate| self.inner.observation_count(candidate) == 0)
        {
            return selected;
        }
        let scarcest = neighborhood
            .iter()
            .copied()
            .min_by_key(|&j| self.inner.observation_count(j))
            .unwrap_or(selected);
        let mut best = selected;
        let mut best_estimate = f64::NEG_INFINITY;
        for &candidate in neighborhood {
            if !self.csr.closed_neighborhood(candidate).contains(&scarcest) {
                continue;
            }
            let estimate = self.inner.side_reward_estimate(candidate);
            if estimate > best_estimate {
                best_estimate = estimate;
                best = candidate;
            }
        }
        best
    }
}

impl SinglePlayPolicy for DflSsrGreedyNeighbor {
    fn name(&self) -> &'static str {
        "DFL-SSR+GN"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        let selected = self.inner.select_arm(t);
        self.redirect(selected)
    }

    fn update(&mut self, t: usize, feedback: &SinglePlayFeedback) {
        self.inner.update(t, feedback);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    // The redirection is stateless; the durable state is the inner policy's.
    fn save_state(&self) -> Option<PolicyState> {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        self.inner.load_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run<P: SinglePlayPolicy>(
        policy: &mut P,
        bandit: &NetworkedBandit,
        n: usize,
        seed: u64,
    ) -> Vec<ArmId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            pulls.push(arm);
        }
        pulls
    }

    #[test]
    fn redirection_prefers_the_observed_best_neighbour() {
        // Star graph: pulling the hub observes everyone; afterwards, whenever the
        // index selects the hub, the heuristic should redirect to the best leaf.
        let graph = generators::star(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.95]);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflSsoGreedyNeighbor::new(graph);
        let pulls = run(&mut policy, &bandit, 500, 1);
        let best_tail = pulls[300..].iter().filter(|&&a| a == 4).count();
        assert!(
            best_tail > 150,
            "arm 4 pulled only {best_tail}/200 in the tail"
        );
    }

    #[test]
    fn redirection_keeps_unobserved_selections() {
        let graph = generators::edgeless(3);
        let mut policy = DflSsoGreedyNeighbor::new(graph);
        // Nothing observed yet: the first selection must be left untouched (it is
        // the forced-exploration pick of the base algorithm).
        let first = policy.select_arm(1);
        assert!(first < 3);
    }

    #[test]
    fn heuristic_never_does_much_worse_than_the_base_policy() {
        // On a random workload the redirected policy's realised reward should be
        // at least comparable to plain DFL-SSO (the paper argues it should be
        // better; at minimum it must not collapse).
        let mut rng = StdRng::seed_from_u64(5);
        let graph = generators::erdos_renyi(20, 0.4, &mut rng);
        let arms = ArmSet::random_bernoulli(20, &mut rng);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut base = DflSso::new(graph.clone());
        let mut heuristic = DflSsoGreedyNeighbor::new(graph);
        let base_pulls = run(&mut base, &bandit, 2000, 9);
        let heur_pulls = run(&mut heuristic, &bandit, 2000, 9);
        let value =
            |pulls: &[ArmId]| -> f64 { pulls[500..].iter().map(|&a| bandit.means()[a]).sum() };
        assert!(
            value(&heur_pulls) >= 0.95 * value(&base_pulls),
            "heuristic tail value {} vs base {}",
            value(&heur_pulls),
            value(&base_pulls)
        );
    }

    #[test]
    fn ssr_variant_targets_the_best_neighbourhood() {
        let graph = generators::path(4);
        let arms = ArmSet::bernoulli(&[0.2, 0.9, 0.4, 0.6]);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        assert_eq!(bandit.best_single_side_arm(), Some(2));
        let mut policy = DflSsrGreedyNeighbor::new(graph);
        let pulls = run(&mut policy, &bandit, 3000, 3);
        let tail_best = pulls[2000..].iter().filter(|&&a| a == 2).count();
        assert!(
            tail_best > 700,
            "arm 2 pulled only {tail_best}/1000 in the tail"
        );
    }

    #[test]
    fn reset_and_accessors() {
        let graph = generators::complete(4);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
        let mut sso = DflSsoGreedyNeighbor::new(graph.clone());
        let mut ssr = DflSsrGreedyNeighbor::new(graph);
        assert_eq!(sso.name(), "DFL-SSO+GN");
        assert_eq!(ssr.name(), "DFL-SSR+GN");
        assert_eq!(sso.num_arms(), 4);
        assert_eq!(ssr.num_arms(), 4);
        run(&mut sso, &bandit, 20, 2);
        run(&mut ssr, &bandit, 20, 2);
        assert!(sso.inner().observation_count(0) > 0);
        sso.reset();
        ssr.reset();
        assert_eq!(sso.inner().observation_count(0), 0);
        assert_eq!(ssr.inner().observation_count(0), 0);
    }
}
