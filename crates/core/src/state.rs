//! Durable learned-state capture for policies.
//!
//! The serving layer persists tenants across process crashes; the part of a
//! tenant that lives inside the policy (estimator arrays, auxiliary buffers,
//! a policy-owned RNG) is captured into a [`PolicyState`] — a flat bag of
//! plain arrays with no policy-specific schema, so the on-disk codec never
//! needs to know about concrete policy types. Structure (graph, strategy
//! family, hyperparameters) is **not** captured: durable tenants are rebuilt
//! from their scenario document first, then [`load_state`] fills in what was
//! learned. The contract is exactness: for any policy,
//! `load_state(save_state())` onto a freshly built twin resumes the decision
//! stream f64-bit-identically.
//!
//! Each policy appends its arrays in a fixed, documented order (its
//! `save_state` impl) and reads them back in the same order through a
//! [`PolicyStateReader`] cursor, which checks lengths and rejects leftover or
//! missing arrays — a state saved by one policy shape fails loudly when
//! loaded into another.
//!
//! [`load_state`]: crate::SinglePlayPolicy::load_state

use std::fmt;

/// A policy's learned state as flat arrays, in the order the policy's
/// `save_state` appended them.
///
/// * `counts` — integer arrays (pull counts, auxiliary integer registers);
/// * `floats` — `f64` arrays (means, weights, probabilities, sums);
/// * `windows` — variable-length `f64` arrays (sliding-window observation
///   rings, oldest first), one entry per ring;
/// * `rng` — the policy-owned generator's raw state, for policies that
///   randomise (`None` for deterministic index policies).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyState {
    /// Integer-valued state arrays.
    pub counts: Vec<Vec<u64>>,
    /// Real-valued state arrays.
    pub floats: Vec<Vec<f64>>,
    /// Sliding-window rings (oldest observation first).
    pub windows: Vec<Vec<f64>>,
    /// Raw xoshiro256++ state of the policy's RNG, when it owns one.
    pub rng: Option<[u64; 4]>,
}

impl PolicyState {
    /// An empty state bag, ready for a policy's `save_state` to fill.
    pub fn new() -> Self {
        PolicyState::default()
    }
}

/// Why saving or loading a [`PolicyState`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyStateError {
    /// The policy does not implement durable state capture.
    Unsupported {
        /// Name of the policy.
        policy: &'static str,
    },
    /// The state bag does not match the policy's shape (wrong array count,
    /// wrong array length, missing RNG, …).
    Mismatch {
        /// Name of the policy that rejected the state.
        policy: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for PolicyStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyStateError::Unsupported { policy } => {
                write!(f, "policy {policy} does not support durable state")
            }
            PolicyStateError::Mismatch { policy, detail } => {
                write!(f, "policy state does not fit {policy}: {detail}")
            }
        }
    }
}

impl std::error::Error for PolicyStateError {}

/// Cursor over a [`PolicyState`], consuming arrays in the order `save_state`
/// appended them. [`PolicyStateReader::finish`] rejects leftovers, so a load
/// that silently ignored half the saved state cannot pass.
pub struct PolicyStateReader<'a> {
    policy: &'static str,
    state: &'a PolicyState,
    counts: usize,
    floats: usize,
    windows: usize,
}

impl<'a> PolicyStateReader<'a> {
    /// A cursor at the start of `state`, reporting errors as `policy`'s.
    pub fn new(policy: &'static str, state: &'a PolicyState) -> Self {
        PolicyStateReader {
            policy,
            state,
            counts: 0,
            floats: 0,
            windows: 0,
        }
    }

    /// A [`PolicyStateError::Mismatch`] attributed to this reader's policy,
    /// for callers with shape checks of their own (e.g. window capacities).
    pub fn mismatch(&self, detail: String) -> PolicyStateError {
        PolicyStateError::Mismatch {
            policy: self.policy,
            detail,
        }
    }

    /// The next integer array, which must have exactly `len` entries.
    pub fn counts(&mut self, len: usize) -> Result<&'a [u64], PolicyStateError> {
        let arr = self
            .state
            .counts
            .get(self.counts)
            .ok_or_else(|| self.mismatch(format!("missing count array {}", self.counts)))?;
        if arr.len() != len {
            return Err(self.mismatch(format!(
                "count array {} has {} entries, expected {len}",
                self.counts,
                arr.len()
            )));
        }
        self.counts += 1;
        Ok(arr)
    }

    /// The next real-valued array, which must have exactly `len` entries.
    pub fn floats(&mut self, len: usize) -> Result<&'a [f64], PolicyStateError> {
        let arr = self
            .state
            .floats
            .get(self.floats)
            .ok_or_else(|| self.mismatch(format!("missing float array {}", self.floats)))?;
        if arr.len() != len {
            return Err(self.mismatch(format!(
                "float array {} has {} entries, expected {len}",
                self.floats,
                arr.len()
            )));
        }
        self.floats += 1;
        Ok(arr)
    }

    /// The next window ring (variable length — occupancy is data, not shape).
    pub fn window(&mut self) -> Result<&'a [f64], PolicyStateError> {
        let arr = self
            .state
            .windows
            .get(self.windows)
            .ok_or_else(|| self.mismatch(format!("missing window ring {}", self.windows)))?;
        self.windows += 1;
        Ok(arr)
    }

    /// The saved RNG state; an error if the policy expected one and the bag
    /// has none.
    pub fn rng(&mut self) -> Result<[u64; 4], PolicyStateError> {
        self.state
            .rng
            .ok_or_else(|| self.mismatch("missing RNG state".into()))
    }

    /// Asserts every array (and any RNG state) was consumed.
    pub fn finish(self) -> Result<(), PolicyStateError> {
        if self.counts != self.state.counts.len()
            || self.floats != self.state.floats.len()
            || self.windows != self.state.windows.len()
        {
            return Err(self.mismatch(format!(
                "unconsumed state: read {}/{} count, {}/{} float, {}/{} window arrays",
                self.counts,
                self.state.counts.len(),
                self.floats,
                self.state.floats.len(),
                self.windows,
                self.state.windows.len()
            )));
        }
        Ok(())
    }
}

/// Encodes an `Option<usize>` register (e.g. a "last selected" memory) as a
/// 2-entry count array for [`PolicyState`].
pub fn save_opt_index(slot: Option<usize>, out: &mut PolicyState) {
    match slot {
        Some(i) => out.counts.push(vec![1, i as u64]),
        None => out.counts.push(vec![0, 0]),
    }
}

/// Decodes a register saved by [`save_opt_index`].
pub fn load_opt_index(
    reader: &mut PolicyStateReader<'_>,
) -> Result<Option<usize>, PolicyStateError> {
    let arr = reader.counts(2)?;
    Ok(if arr[0] == 0 {
        None
    } else {
        Some(arr[1] as usize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_consumes_in_order_and_checks_lengths() {
        let state = PolicyState {
            counts: vec![vec![1, 2, 3]],
            floats: vec![vec![0.5], vec![0.25, 0.75]],
            windows: vec![vec![0.1, 0.2]],
            rng: Some([1, 2, 3, 4]),
        };
        let mut r = PolicyStateReader::new("T", &state);
        assert_eq!(r.counts(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.floats(1).unwrap(), &[0.5]);
        assert_eq!(r.floats(2).unwrap(), &[0.25, 0.75]);
        assert_eq!(r.window().unwrap(), &[0.1, 0.2]);
        assert_eq!(r.rng().unwrap(), [1, 2, 3, 4]);
        r.finish().unwrap();
    }

    #[test]
    fn wrong_lengths_and_leftovers_are_rejected() {
        let state = PolicyState {
            counts: vec![vec![1, 2]],
            floats: vec![vec![0.5]],
            ..PolicyState::default()
        };
        let mut r = PolicyStateReader::new("T", &state);
        assert!(matches!(
            r.counts(3),
            Err(PolicyStateError::Mismatch { policy: "T", .. })
        ));
        // Leftover arrays fail `finish`.
        let mut r = PolicyStateReader::new("T", &state);
        r.counts(2).unwrap();
        assert!(r.finish().is_err());
        // Missing RNG fails.
        let mut r = PolicyStateReader::new("T", &state);
        assert!(r.rng().is_err());
        // Missing arrays fail.
        let mut r = PolicyStateReader::new("T", &state);
        r.counts(2).unwrap();
        assert!(r.counts(2).is_err());
        assert!(r.window().is_err());
    }

    #[test]
    fn opt_index_round_trips() {
        for slot in [None, Some(0), Some(17)] {
            let mut state = PolicyState::new();
            save_opt_index(slot, &mut state);
            let mut r = PolicyStateReader::new("T", &state);
            assert_eq!(load_opt_index(&mut r).unwrap(), slot);
            r.finish().unwrap();
        }
    }

    #[test]
    fn errors_render_their_context() {
        let unsupported = PolicyStateError::Unsupported { policy: "X" }.to_string();
        assert!(unsupported.contains('X'));
        let mismatch = PolicyStateError::Mismatch {
            policy: "Y",
            detail: "wrong".into(),
        }
        .to_string();
        assert!(mismatch.contains('Y') && mismatch.contains("wrong"));
    }
}
