//! DFL-SSR — Distribution-Free Learning for Single-play with Side Reward
//! (Algorithm 3 of the paper).
//!
//! Under side reward, pulling arm `i` collects `B_{i,t} = Σ_{j ∈ N_i} X_{j,t}`,
//! so the quantity to learn is the *neighbourhood sum* of every arm, not its
//! direct reward. Observations of the component arms arrive asynchronously
//! (different neighbours are refreshed by different pulls), so the paper tracks,
//! per arm, a dedicated side-reward observation counter `Ob_i` that only
//! advances when the *least frequently observed* member of `N_i` is refreshed —
//! i.e. `Ob_i = min_{j ∈ N_i} O_j` — and an estimate `B̄_i` of the neighbourhood
//! sum.
//!
//! The update lines of Algorithm 3 in the arXiv text contain typos (they are
//! no-ops read literally); per DESIGN.md we implement the estimate the analysis
//! uses: `B̄_i = Σ_{j ∈ N_i} X̄_j`, i.e. the sum of the per-arm running means,
//! with `Ob_i = min_{j ∈ N_i} O_j` as the effective sample count. Because
//! `B_{i,t} ∈ [0, K]`, the index normalises the estimate by `K` to stay on the
//! `[0, 1]` scale assumed by the MOSS analysis (Theorem 3 rescales the bound by
//! `K` for the same reason).

use netband_env::SinglePlayFeedback;
use netband_graph::{CsrGraph, RelationGraph};

use crate::estimator::{moss_index, ArmEstimators};
use crate::kernels;
use crate::policy::SinglePlayPolicy;
use crate::state::{PolicyState, PolicyStateError, PolicyStateReader};
use crate::ArmId;

/// The DFL-SSR policy (Algorithm 3).
#[derive(Debug, Clone)]
pub struct DflSsr {
    graph: RelationGraph,
    /// Flat snapshot of the graph; the per-round index computation walks its
    /// packed closed-neighbourhood rows.
    csr: CsrGraph,
    /// Flat per-arm direct-observation counts and means (`O_i`, `X̄_i`).
    arm_estimates: ArmEstimators,
}

impl DflSsr {
    /// Creates the policy for the given relation graph.
    pub fn new(graph: RelationGraph) -> Self {
        let csr = graph.to_csr();
        let k = graph.num_vertices();
        DflSsr {
            graph,
            csr,
            arm_estimates: ArmEstimators::new(k),
        }
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.arm_estimates.len()
    }

    /// The relation graph this policy was built for.
    pub fn graph(&self) -> &RelationGraph {
        &self.graph
    }

    /// Direct-observation count `O_i` of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn observation_count(&self, arm: ArmId) -> u64 {
        self.arm_estimates.count(arm)
    }

    /// Side-reward observation count `Ob_i = min_{j ∈ N_i} O_j`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn side_observation_count(&self, arm: ArmId) -> u64 {
        self.csr
            .closed_neighborhood(arm)
            .iter()
            .map(|&j| self.arm_estimates.count(j))
            .min()
            .unwrap_or(0)
    }

    /// Side-reward estimate `B̄_i = Σ_{j ∈ N_i} X̄_j` (on the raw `[0, K]` scale).
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn side_reward_estimate(&self, arm: ArmId) -> f64 {
        self.csr
            .closed_neighborhood(arm)
            .iter()
            .map(|&j| self.arm_estimates.mean(j))
            .sum()
    }

    /// The index value (Equation 45) of an arm at time `t`, on the normalised
    /// `[0, 1]` reward scale.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn index(&self, arm: ArmId, t: usize) -> f64 {
        let k = self.num_arms().max(1);
        let count = self.side_observation_count(arm);
        let normalised_mean = self.side_reward_estimate(arm) / k as f64;
        moss_index(normalised_mean, count, t, k)
    }
}

impl SinglePlayPolicy for DflSsr {
    fn name(&self) -> &'static str {
        "DFL-SSR"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        debug_assert!(self.num_arms() > 0, "cannot select from zero arms");
        // Fused kernel: one sweep over the packed closed-neighbourhood rows
        // computing `Ob_i`, `B̄_i`, and the MOSS index per arm, with the round
        // invariants hoisted; reproduces `index` + `argmax_last` bit for bit.
        kernels::ssr_argmax(
            &self.csr,
            self.arm_estimates.counts(),
            self.arm_estimates.means(),
            t,
        )
        .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        for &(arm, reward) in &feedback.observations {
            if arm < self.arm_estimates.len() {
                self.arm_estimates.update(arm, reward);
            }
        }
    }

    fn reset(&mut self) {
        self.arm_estimates.reset();
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.arm_estimates)
    }

    // `Ob_i` and `B̄_i` are derived from the per-arm estimates on demand, so
    // the estimator arrays are the whole durable state (the CSR snapshot is
    // structure, rebuilt from the scenario document).
    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.arm_estimates.save_state(&mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.arm_estimates.load_state(&mut reader)?;
        reader.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(policy: &mut DflSsr, bandit: &NetworkedBandit, n: usize, seed: u64) -> Vec<ArmId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            pulls.push(arm);
        }
        pulls
    }

    #[test]
    fn side_observation_counter_tracks_least_observed_neighbour() {
        // Path 0-1-2: pulling arm 0 observes {0,1}; Ob_1 stays 0 until arm 2 is
        // also observed.
        let graph = generators::path(3);
        let bandit =
            NetworkedBandit::new(graph.clone(), ArmSet::bernoulli(&[0.5, 0.5, 0.5])).unwrap();
        let mut policy = DflSsr::new(graph);
        let mut rng = StdRng::seed_from_u64(1);
        let fb = bandit.pull_single(0, &mut rng);
        policy.update(1, &fb);
        assert_eq!(policy.observation_count(0), 1);
        assert_eq!(policy.observation_count(1), 1);
        assert_eq!(policy.observation_count(2), 0);
        assert_eq!(policy.side_observation_count(0), 1); // N_0 = {0,1} both seen
        assert_eq!(policy.side_observation_count(1), 0); // N_1 = {0,1,2}, arm 2 unseen
        assert_eq!(policy.side_observation_count(2), 0);
        // Observing arm 2 completes N_1.
        let fb2 = bandit.pull_single(2, &mut rng);
        policy.update(2, &fb2);
        assert_eq!(policy.side_observation_count(1), 1);
    }

    #[test]
    fn side_reward_estimate_is_sum_of_means() {
        let graph = generators::path(3);
        let bandit =
            NetworkedBandit::new(graph.clone(), ArmSet::bernoulli(&[1.0, 1.0, 1.0])).unwrap();
        let mut policy = DflSsr::new(graph);
        let mut rng = StdRng::seed_from_u64(2);
        let fb = bandit.pull_single(1, &mut rng); // observes all three arms
        policy.update(1, &fb);
        assert!((policy.side_reward_estimate(1) - 3.0).abs() < 1e-12);
        assert!((policy.side_reward_estimate(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn selects_the_arm_with_best_neighbourhood_not_best_mean() {
        // Arm 1 has the best direct mean, but arm 2's neighbourhood {1,2,3} has
        // the best total mean — DFL-SSR must converge to arm 2.
        let graph = generators::path(4);
        let arms = ArmSet::bernoulli(&[0.2, 0.9, 0.4, 0.6]);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        assert_eq!(bandit.best_single_side_arm(), Some(2));
        let mut policy = DflSsr::new(graph);
        let pulls = run(&mut policy, &bandit, 4000, 3);
        let tail_best = pulls[3000..].iter().filter(|&&a| a == 2).count();
        assert!(
            tail_best > 850,
            "arm 2 pulled only {tail_best}/1000 in the tail"
        );
    }

    #[test]
    fn unobserved_neighbourhoods_have_infinite_index() {
        let graph = generators::path(3);
        let policy = DflSsr::new(graph);
        assert_eq!(policy.index(0, 5), f64::INFINITY);
    }

    #[test]
    fn reset_restores_initial_state() {
        let graph = generators::complete(4);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
        let mut policy = DflSsr::new(graph);
        run(&mut policy, &bandit, 30, 4);
        policy.reset();
        for arm in 0..4 {
            assert_eq!(policy.observation_count(arm), 0);
            assert_eq!(policy.side_observation_count(arm), 0);
            assert_eq!(policy.side_reward_estimate(arm), 0.0);
        }
    }

    #[test]
    fn edgeless_graph_reduces_to_learning_direct_rewards() {
        // With no edges, B_i = X_i, so DFL-SSR should find the best direct arm.
        let graph = generators::edgeless(5);
        let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.9]);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflSsr::new(graph);
        let pulls = run(&mut policy, &bandit, 3000, 5);
        let tail_best = pulls[2000..].iter().filter(|&&a| a == 4).count();
        assert!(
            tail_best > 850,
            "arm 4 pulled only {tail_best}/1000 in the tail"
        );
    }

    #[test]
    fn name_and_accessors() {
        let graph = generators::star(4);
        let policy = DflSsr::new(graph.clone());
        assert_eq!(policy.name(), "DFL-SSR");
        assert_eq!(policy.num_arms(), 4);
        assert_eq!(policy.graph(), &graph);
    }
}
